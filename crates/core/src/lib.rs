//! # ocelot-core
//!
//! The paper's primary contribution: from `Fresh(x)` / `Consistent(x, n)`
//! annotations to correct-by-construction atomic-region placement.
//!
//! * [`policy`] — policy declarations built from annotations + taint
//!   provenance (the paper's `PD`).
//! * [`infer`] — Algorithm 1: candidate-function selection, call-chain
//!   hoisting, closest-common-(post)dominator placement, truncation.
//! * [`region`] — region extents and undo-log checkpoint sets `ω`.
//! * [`check`] — the §5.2 / Appendix D+E sanity checks behind Theorem 1,
//!   doubling as checker mode (§8) for manually-placed regions.
//! * [`transform`] — the end-to-end pipeline of Figure 3.
//!
//! ## Examples
//!
//! ```
//! use ocelot_core::transform::ocelot_transform;
//!
//! let program = ocelot_ir::compile(r#"
//!     sensor temp;
//!     fn main() {
//!         let t = in(temp);
//!         fresh(t);
//!         if t > 30 { out(alarm, t); }
//!     }
//! "#)?;
//! let compiled = ocelot_transform(program).unwrap();
//! assert_eq!(compiled.regions.len(), 1);
//! assert!(compiled.check.passes());
//! # Ok::<(), ocelot_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod check;
pub mod error;
pub mod infer;
pub mod policy;
pub mod region;
pub mod rules;
pub mod transform;

pub use check::{check_regions, CheckReport, Violation};
pub use error::CoreError;
pub use infer::{infer_atomics, Inference};
pub use policy::{build_policies, Policy, PolicyId, PolicyKind, PolicyMap, PolicySet};
pub use region::{collect_regions, covered_refs, RegionInfo};
pub use rules::{check_declarations, Derivation, RuleId};
pub use transform::{
    ocelot_check, ocelot_check_with, ocelot_transform, ocelot_transform_with, Compiled,
};
