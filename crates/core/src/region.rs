//! Atomic-region extents: locating `startatom`/`endatom` pairs, computing
//! the program points between them, and the region's non-volatile
//! checkpoint set `ω`.
//!
//! Used for regions Ocelot infers *and* regions the programmer placed
//! manually with `atomic { ... }` (§8) — both execute identically and
//! both need `ω` for undo logging.

use crate::error::CoreError;
use ocelot_analysis::dom::{DomTree, Point};
use ocelot_analysis::war::{region_effects, RegionEffects};
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{BlockId, CallGraph, FuncId, InstrRef, Op, Program, RegionId};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Metadata for one atomic region.
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// The region's id.
    pub id: RegionId,
    /// The function hosting the `startatom`/`endatom` pair.
    pub func: FuncId,
    /// The `startatom` instruction.
    pub start: InstrRef,
    /// The `endatom` instruction.
    pub end: InstrRef,
    /// Non-volatile read/write footprint between start and end
    /// (including transitive callees).
    pub effects: RegionEffects,
    /// Undo-log size in words for `ω` (arrays cost their length).
    pub omega_words: usize,
}

/// Finds every region in the program and computes its extent and `ω`.
///
/// # Errors
///
/// Returns [`CoreError::Region`] if a region's start/end pair cannot be
/// located, or if the end does not post-dominate the start (e.g. a
/// `return` escapes a manual `atomic { }` block).
pub fn collect_regions(p: &Program) -> Result<Vec<RegionInfo>, CoreError> {
    let mut out = Vec::new();
    for f in &p.funcs {
        let mut starts: HashMap<RegionId, InstrRef> = HashMap::new();
        let mut ends: HashMap<RegionId, InstrRef> = HashMap::new();
        for (_, inst) in f.iter_insts() {
            match inst.op {
                Op::AtomStart { region } => {
                    starts.insert(
                        region,
                        InstrRef {
                            func: f.id,
                            label: inst.label,
                        },
                    );
                }
                Op::AtomEnd { region } => {
                    ends.insert(
                        region,
                        InstrRef {
                            func: f.id,
                            label: inst.label,
                        },
                    );
                }
                _ => {}
            }
        }
        if starts.is_empty() {
            continue;
        }
        let cfg = Cfg::new(f);
        let pdom = DomTree::post_dominators(f, &cfg);
        for (rid, start) in starts {
            let end = *ends.get(&rid).ok_or_else(|| {
                CoreError::region(format!(
                    "region r{} has a start but no end in `{}`",
                    rid.0, f.name
                ))
            })?;
            let (sb, si) = f.find_label(start.label).expect("start label exists");
            let (eb, ei) = f.find_label(end.label).expect("end label exists");
            if !point_post_dominates_region(&pdom, eb, ei, sb, si) {
                return Err(CoreError::region(format!(
                    "region r{} end does not post-dominate its start in `{}` \
                     (a return or branch escapes the region)",
                    rid.0, f.name
                )));
            }
            let points = extent_points(f, &cfg, Point::new(sb, si), Point::new(eb, ei));
            let effects = region_effects(p, f.id, &points);
            let omega_words = effects.omega_words(p);
            out.push(RegionInfo {
                id: rid,
                func: f.id,
                start,
                end,
                effects,
                omega_words,
            });
        }
    }
    out.sort_by_key(|r| r.id);
    Ok(out)
}

fn point_post_dominates_region(
    pdom: &DomTree,
    eb: BlockId,
    ei: usize,
    sb: BlockId,
    si: usize,
) -> bool {
    if eb == sb {
        ei >= si
    } else {
        pdom.strictly_dominates(eb, sb)
    }
}

/// The instruction points strictly between a region's start and end
/// (exclusive of the `startatom`/`endatom` markers themselves).
///
/// Walks forward from the start block, not expanding past the end block;
/// because the end post-dominates the start, every path is eventually cut
/// off at the end block.
pub fn extent_points(f: &ocelot_ir::Function, cfg: &Cfg, start: Point, end: Point) -> Vec<Point> {
    let mut points = Vec::new();
    if start.block == end.block {
        for i in (start.index + 1)..end.index {
            points.push(Point::new(start.block, i));
        }
        return points;
    }
    // Start block: everything after the marker, including the terminator.
    let sb = f.block(start.block);
    for i in (start.index + 1)..=sb.instrs.len() {
        points.push(Point::new(start.block, i));
    }
    // Middle blocks.
    let mut seen = BTreeSet::from([start.block, end.block]);
    let mut queue: VecDeque<BlockId> = cfg.succs(start.block).iter().copied().collect();
    while let Some(b) = queue.pop_front() {
        if !seen.insert(b) {
            continue;
        }
        let blk = f.block(b);
        for i in 0..=blk.instrs.len() {
            points.push(Point::new(b, i));
        }
        for s in cfg.succs(b) {
            queue.push_back(*s);
        }
    }
    // End block: everything before the marker.
    for i in 0..end.index {
        points.push(Point::new(end.block, i));
    }
    points
}

/// The set of instructions statically covered by a region: every point in
/// its extent, plus — for each call inside the extent — every instruction
/// of the transitively-called functions (a callee's whole body executes
/// within the region).
pub fn covered_refs(p: &Program, info: &RegionInfo) -> BTreeSet<InstrRef> {
    let f = p.func(info.func);
    let cfg = Cfg::new(f);
    let (sb, si) = f.find_label(info.start.label).expect("start exists");
    let (eb, ei) = f.find_label(info.end.label).expect("end exists");
    let points = extent_points(f, &cfg, Point::new(sb, si), Point::new(eb, ei));

    let cg = CallGraph::new(p);
    let mut out = BTreeSet::new();
    let mut callee_funcs: BTreeSet<FuncId> = BTreeSet::new();
    for pt in &points {
        let blk = f.block(pt.block);
        if pt.index < blk.instrs.len() {
            let inst = &blk.instrs[pt.index];
            out.insert(InstrRef {
                func: f.id,
                label: inst.label,
            });
            if let Op::Call { callee, .. } = &inst.op {
                callee_funcs.extend(cg.reachable_from(*callee));
            }
        } else {
            out.insert(InstrRef {
                func: f.id,
                label: blk.term_label,
            });
        }
    }
    for cf in callee_funcs {
        let cfn = p.func(cf);
        for b in &cfn.blocks {
            for inst in &b.instrs {
                out.insert(InstrRef {
                    func: cf,
                    label: inst.label,
                });
            }
            out.insert(InstrRef {
                func: cf,
                label: b.term_label,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile;

    #[test]
    fn manual_region_extent_and_omega() {
        let p = compile(
            r#"
            sensor s;
            nv g = 0;
            fn main() {
                let a = 1;
                atomic {
                    let v = in(s);
                    g = g + v;
                }
                let b = 2;
            }
            "#,
        )
        .unwrap();
        let regions = collect_regions(&p).unwrap();
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert!(r.effects.war.contains("g"));
        assert_eq!(r.omega_words, 1);
    }

    #[test]
    fn region_spanning_branch_covers_both_arms() {
        let p = compile(
            r#"
            sensor s;
            nv g = 0;
            nv h = 0;
            fn main() {
                atomic {
                    let v = in(s);
                    if v > 0 { g = 1; } else { h = 2; }
                }
            }
            "#,
        )
        .unwrap();
        let regions = collect_regions(&p).unwrap();
        let r = &regions[0];
        assert!(r.effects.omega().contains("g"));
        assert!(r.effects.omega().contains("h"));
    }

    #[test]
    fn covered_refs_include_callee_bodies() {
        let p = compile(
            r#"
            sensor s;
            fn grab() { let v = in(s); return v; }
            fn main() {
                atomic {
                    let x = grab();
                    out(log, x);
                }
            }
            "#,
        )
        .unwrap();
        let regions = collect_regions(&p).unwrap();
        let cov = covered_refs(&p, &regions[0]);
        let grab = p.func_by_name("grab").unwrap();
        let (input_ref, _) = p.input_ops()[0].clone();
        assert_eq!(input_ref.func, grab);
        assert!(cov.contains(&input_ref), "callee input op is covered");
    }

    #[test]
    fn instructions_outside_region_not_covered() {
        let p = compile(
            r#"
            sensor s;
            fn main() {
                let before = 1;
                atomic { let v = in(s); }
                out(log, before);
            }
            "#,
        )
        .unwrap();
        let regions = collect_regions(&p).unwrap();
        let cov = covered_refs(&p, &regions[0]);
        let f = p.func(p.main);
        // The `let before = 1` bind is outside.
        let before_ref = f
            .iter_insts()
            .find_map(|(_, i)| match &i.op {
                Op::Bind { var, .. } if var == "before" => Some(InstrRef {
                    func: f.id,
                    label: i.label,
                }),
                _ => None,
            })
            .unwrap();
        assert!(!cov.contains(&before_ref));
        // The input inside is covered.
        let (input_ref, _) = p.input_ops()[0].clone();
        assert!(cov.contains(&input_ref));
    }

    #[test]
    fn escaping_return_is_rejected() {
        let p = compile(
            r#"
            sensor s;
            fn main() {
                atomic {
                    let v = in(s);
                    if v > 0 { return 1; }
                }
            }
            "#,
        )
        .unwrap();
        let err = collect_regions(&p).unwrap_err();
        assert!(err.to_string().contains("post-dominate"));
    }

    #[test]
    fn no_regions_yields_empty() {
        let p = compile("fn main() { let x = 1; }").unwrap();
        assert!(collect_regions(&p).unwrap().is_empty());
    }
}
