//! The §5.2 sanity checks: programs that pass satisfy their policies
//! (Theorem 1).
//!
//! Two judgments are implemented:
//!
//! * **Policy-declaration checking** (Appendix E): every input an
//!   annotated variable depends on, and every use of a fresh variable,
//!   must appear in the policy declaration. Since this crate *derives*
//!   policies from the taint analysis, the check re-derives them
//!   independently and verifies containment — usable as a validation
//!   tool for externally-supplied policy declarations.
//! * **Atomic-region checking** (Appendix D): all operations of each
//!   policy must appear within a single atomic region, following call
//!   chains. This is the check that makes *checker mode* (§8) possible:
//!   run it on a program with manually-placed `atomic { }` regions to
//!   learn whether the placement enforces the annotations.

use crate::policy::{build_policies, Policy, PolicyId, PolicySet};
use crate::region::{collect_regions, covered_refs};
use ocelot_analysis::taint::TaintAnalysis;
use ocelot_ir::{InstrRef, Program, RegionId};
use std::collections::BTreeSet;
use std::fmt;

/// A policy whose operations are not enclosed by any single region.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated policy.
    pub policy: PolicyId,
    /// Human-readable description of the policy.
    pub describe: String,
    /// Operations not covered by the best candidate region.
    pub missing: Vec<InstrRef>,
    /// The region that came closest, if any.
    pub best_region: Option<RegionId>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "policy {} ({}) is not enclosed by any single atomic region; \
             {} operation(s) uncovered",
            self.policy.0,
            self.describe,
            self.missing.len()
        )
    }
}

/// Result of checking a program against its policies.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Violations found (empty means the program passes).
    pub violations: Vec<Violation>,
    /// Policies that were vacuous (no input dependence) and hence
    /// trivially satisfied.
    pub vacuous: Vec<PolicyId>,
    /// For each satisfied policy, the region that encloses it.
    pub enforced_by: Vec<(PolicyId, RegionId)>,
}

impl CheckReport {
    /// True when every policy is enforced.
    pub fn passes(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks that every policy's operations sit inside a single atomic
/// region (Appendix D). Works for inferred and manually-placed regions
/// alike — this is Ocelot's checker mode (§8).
///
/// # Errors
///
/// Returns [`crate::error::CoreError`] if region structure is malformed
/// (unmatched or escaping regions).
pub fn check_regions(
    p: &Program,
    policies: &PolicySet,
) -> Result<CheckReport, crate::error::CoreError> {
    let regions = collect_regions(p)?;
    let coverage: Vec<(RegionId, BTreeSet<InstrRef>)> =
        regions.iter().map(|r| (r.id, covered_refs(p, r))).collect();

    let mut report = CheckReport::default();
    for pol in policies.iter() {
        if pol.is_vacuous() {
            report.vacuous.push(pol.id);
            continue;
        }
        let required = required_ops(p, pol);
        let mut best: Option<(RegionId, Vec<InstrRef>)> = None;
        for (rid, cov) in &coverage {
            let missing: Vec<InstrRef> = required
                .iter()
                .filter(|r| !cov.contains(r))
                .copied()
                .collect();
            if missing.is_empty() {
                best = Some((*rid, missing));
                break;
            }
            match &best {
                Some((_, m)) if m.len() <= missing.len() => {}
                _ => best = Some((*rid, missing)),
            }
        }
        match best {
            Some((rid, missing)) if missing.is_empty() => {
                report.enforced_by.push((pol.id, rid));
            }
            Some((rid, missing)) => report.violations.push(Violation {
                policy: pol.id,
                describe: format!("{:?}", pol.kind),
                missing,
                best_region: Some(rid),
            }),
            None => report.violations.push(Violation {
                policy: pol.id,
                describe: format!("{:?}", pol.kind),
                missing: required.into_iter().collect(),
                best_region: None,
            }),
        }
    }
    Ok(report)
}

/// The operations a region must cover for a policy: input operations
/// (via their chains — the deepest element suffices, since
/// [`covered_refs`] includes callee bodies reached from covered call
/// sites), declarations that carry inputs, and uses. Annotation sites
/// that were erased by the transform are skipped (their variable's
/// constraint is represented by the inputs and uses).
fn required_ops(p: &Program, pol: &Policy) -> BTreeSet<InstrRef> {
    let mut out = BTreeSet::new();
    for chain in &pol.inputs {
        if let Some(tail) = chain.last() {
            out.insert(*tail);
        }
    }
    for d in &pol.decls {
        if !d.inputs.is_empty() && resolves(p, d.at) {
            out.insert(d.at);
        }
    }
    for u in &pol.uses {
        if resolves(p, *u) {
            out.insert(*u);
        }
    }
    out
}

fn resolves(p: &Program, r: InstrRef) -> bool {
    p.funcs
        .get(r.func.0 as usize)
        .is_some_and(|f| f.find_label(r.label).is_some())
}

/// Re-derives policies from scratch and verifies that `claimed` covers
/// them: every recomputed input chain and use must appear in the claimed
/// policy with the same annotation site (the Appendix E containment
/// direction). Returns the list of discrepancies, empty when `claimed`
/// is adequate.
pub fn verify_policy_declarations(p: &Program, claimed: &PolicySet) -> Vec<String> {
    let taint = TaintAnalysis::run(p);
    let fresh = build_policies(p, &taint);
    let mut problems = Vec::new();
    for want in fresh.iter() {
        let Some(have) = claimed.iter().find(|c| {
            c.kind == want.kind
                && c.decls.iter().map(|d| d.at).collect::<BTreeSet<_>>()
                    == want.decls.iter().map(|d| d.at).collect::<BTreeSet<_>>()
        }) else {
            problems.push(format!(
                "no claimed policy matches {:?} declared at {:?}",
                want.kind,
                want.decls.iter().map(|d| d.at).collect::<Vec<_>>()
            ));
            continue;
        };
        for chain in &want.inputs {
            if !have.inputs.contains(chain) {
                problems.push(format!(
                    "claimed {:?} policy is missing input chain {:?}",
                    want.kind, chain
                ));
            }
        }
        for u in &want.uses {
            if !have.uses.contains(u) {
                problems.push(format!("claimed {:?} policy is missing use {u}", want.kind));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::build_policies;
    use ocelot_analysis::taint::TaintAnalysis;
    use ocelot_ir::compile;

    fn setup(src: &str) -> (Program, PolicySet) {
        let p = compile(src).unwrap();
        ocelot_ir::validate(&p).unwrap();
        let t = TaintAnalysis::run(&p);
        let ps = build_policies(&p, &t);
        (p, ps)
    }

    #[test]
    fn manual_region_covering_policy_passes() {
        let (p, ps) = setup(
            r#"
            sensor s;
            fn main() {
                atomic {
                    let x = in(s);
                    fresh(x);
                    out(log, x);
                }
            }
            "#,
        );
        let report = check_regions(&p, &ps).unwrap();
        assert!(report.passes(), "{:?}", report.violations);
        assert_eq!(report.enforced_by.len(), 1);
    }

    #[test]
    fn missing_region_is_a_violation() {
        let (p, ps) = setup("sensor s; fn main() { let x = in(s); fresh(x); out(log, x); }");
        let report = check_regions(&p, &ps).unwrap();
        assert!(!report.passes());
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].best_region.is_none());
    }

    #[test]
    fn region_too_small_is_a_violation() {
        // The use escapes the manual region.
        let (p, ps) = setup(
            r#"
            sensor s;
            fn main() {
                atomic {
                    let x = in(s);
                    fresh(x);
                }
                out(log, x);
            }
            "#,
        );
        let report = check_regions(&p, &ps).unwrap();
        assert!(!report.passes());
        let v = &report.violations[0];
        assert_eq!(v.missing.len(), 1, "exactly the escaped use");
        assert!(v.best_region.is_some());
    }

    #[test]
    fn consistent_pair_split_across_regions_fails() {
        // Two inputs of one consistent set in *different* regions: the
        // paper's Appendix D requires a single region.
        let (p, ps) = setup(
            r#"
            sensor a; sensor b;
            fn main() {
                atomic { let x = in(a); consistent(x, 1); }
                atomic { let y = in(b); consistent(y, 1); }
            }
            "#,
        );
        let report = check_regions(&p, &ps).unwrap();
        assert!(!report.passes());
    }

    #[test]
    fn callee_input_covered_through_call_site() {
        let (p, ps) = setup(
            r#"
            sensor s;
            fn grab() { let v = in(s); return v; }
            fn main() {
                atomic {
                    let x = grab();
                    fresh(x);
                    out(log, x);
                }
            }
            "#,
        );
        let report = check_regions(&p, &ps).unwrap();
        assert!(report.passes(), "{:?}", report.violations);
    }

    #[test]
    fn vacuous_policies_reported_not_violated() {
        let (p, ps) = setup("fn main() { let x = 1; fresh(x); }");
        let report = check_regions(&p, &ps).unwrap();
        assert!(report.passes());
        assert_eq!(report.vacuous.len(), 1);
    }

    #[test]
    fn verify_declarations_accepts_own_derivation() {
        let (p, ps) = setup("sensor s; fn main() { let x = in(s); fresh(x); out(log, x); }");
        assert!(verify_policy_declarations(&p, &ps).is_empty());
    }

    #[test]
    fn verify_declarations_catches_pruned_inputs() {
        let (p, mut ps) = setup("sensor s; fn main() { let x = in(s); fresh(x); out(log, x); }");
        ps.policies[0].inputs.clear();
        let problems = verify_policy_declarations(&p, &ps);
        assert!(!problems.is_empty());
        assert!(problems[0].contains("missing input chain"));
    }
}
