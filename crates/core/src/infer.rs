//! Atomic-region inference — Algorithm 1 of the paper.
//!
//! For each (non-vacuous) policy:
//!
//! 1. **`findCandidate`** — pick the *deepest* function whose call
//!    subtree contains every policy operation (post-order walk from
//!    `main`, first covering function wins), so the region is as small
//!    as possible (§5.3: smaller regions are likelier to complete on
//!    the energy buffer).
//! 2. **Hoisting** — walk each policy operation up the call graph,
//!    moving to caller call sites *that are themselves in the policy*
//!    (the provenance chains supply them), until it has a basic block in
//!    the candidate function (Algorithm 1, lines 8–15).
//! 3. **Dominators** — `closestCommonDominator` /
//!    `closestCommonPostDominator` of all those blocks give candidate
//!    start/end blocks (lines 17–18).
//! 4. **Loop widening** — a consistent set whose input sits inside a
//!    loop spans loop iterations, so the region grows to enclose the
//!    whole loop (the formal model unrolls bounded loops; enclosing the
//!    loop encloses every unrolled copy). Additionally, for *any*
//!    policy kind, a policy with operations both inside and outside a
//!    loop (e.g. a fresh use control-dependent on an input collected
//!    before the loop) cannot be covered by a region slicing the loop,
//!    so that loop is enclosed whole too.
//! 5. **`truncate`** — within the start block, the latest point that
//!    still dominates every operation; within the end block, the
//!    earliest point that still post-dominates them (line 19). An
//!    operation that *is* a branch terminator pushes the end into the
//!    branch's immediate post-dominator (the join block) — exactly the
//!    `join bb2 bb3; call atomic_end` placement of Figure 3.
//! 6. **Insertion** — `startatom`/`endatom` with a fresh region id
//!    (line 20).

use crate::error::CoreError;
use crate::policy::{PolicyId, PolicyKind, PolicyMap, PolicySet};
use ocelot_analysis::dom::{DomTree, Point};
use ocelot_analysis::loops::LoopForest;
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{BlockId, CallGraph, FuncId, Inst, InstrRef, Op, Program, RegionId};
use std::collections::{BTreeSet, HashMap};

/// The outcome of region inference.
#[derive(Debug, Clone, Default)]
pub struct Inference {
    /// Region → policies it enforces (the paper's `PM`).
    pub policy_map: PolicyMap,
    /// Policies skipped because they constrain no inputs.
    pub vacuous: Vec<PolicyId>,
}

/// Runs Algorithm 1 over every policy, mutating `p` by inserting
/// `startatom`/`endatom` instructions.
///
/// # Errors
///
/// Returns [`CoreError::Infer`] when no candidate function covers a
/// policy's operations (e.g. they are unreachable from `main`) or a
/// region boundary cannot be placed.
pub fn infer_atomics(p: &mut Program, policies: &PolicySet) -> Result<Inference, CoreError> {
    let mut result = Inference::default();
    for pol in policies.iter() {
        if pol.is_vacuous() {
            result.vacuous.push(pol.id);
            continue;
        }
        let region = infer_one(p, pol)?;
        result.policy_map.entry(region).or_default().push(pol.id);
    }
    Ok(result)
}

fn infer_one(p: &mut Program, pol: &crate::policy::Policy) -> Result<RegionId, CoreError> {
    let items = pol.items();
    let core_items = pol.core_items();
    let cg = CallGraph::new(p);

    // --- 1. findCandidate -------------------------------------------------
    let goal = find_candidate(p, &cg, &core_items, &pol.inputs).ok_or_else(|| {
        CoreError::infer(format!(
            "no function covers all operations of policy {:?} ({:?})",
            pol.id, pol.kind
        ))
    })?;

    // --- 2. hoist every operation into the goal function -------------------
    let goal_fn = p.func(goal);
    let point_of = |r: InstrRef| -> Result<Point, CoreError> {
        let (b, i) = goal_fn
            .find_label(r.label)
            .ok_or_else(|| CoreError::infer(format!("dangling policy operation {r}")))?;
        Ok(Point::new(b, i))
    };

    let mut points: Vec<Point> = Vec::new();
    // Input-bearing points drive consistent-set loop widening.
    let mut input_points: Vec<Point> = Vec::new();

    // Each provenance chain contributes the element executing in the goal
    // function: the input itself if sensed there, otherwise the chain's
    // call site in the goal (the whole sub-chain below it executes inside
    // that call).
    for chain in &pol.inputs {
        let elem = chain.iter().find(|e| e.func == goal).ok_or_else(|| {
            CoreError::infer(format!(
                "input chain does not pass through candidate `{}`",
                goal_fn.name
            ))
        })?;
        let pt = point_of(*elem)?;
        points.push(pt);
        input_points.push(pt);
    }

    // Declarations and uses hoist up the call graph (Algorithm 1, lines
    // 8–15): prefer caller sites that are themselves policy operations;
    // fall back to any caller inside the goal's subtree (sound — it can
    // only grow the region).
    let sub: BTreeSet<FuncId> = cg.reachable_from(goal).into_iter().collect();
    let non_chain_ops = core_items
        .iter()
        .filter(|r| !pol.inputs.iter().any(|c| c.last() == Some(*r)));
    for op in non_chain_ops {
        for site in hoist_to_goal(&cg, goal, &sub, &items, *op, &goal_fn.name)? {
            points.push(point_of(site)?);
        }
    }

    // --- 3/4. dominator blocks, with loop widening for consistent sets -----
    let cfg = Cfg::new(goal_fn);
    let dom = DomTree::dominators(goal_fn, &cfg);
    let pdom = DomTree::post_dominators(goal_fn, &cfg);
    let mut blocks: BTreeSet<BlockId> = points.iter().map(|pt| pt.block).collect();

    if matches!(pol.kind, PolicyKind::Consistent(_)) {
        widen_loops(goal_fn, &cfg, &dom, &input_points, &mut blocks);
    }

    // Mixed-membership widening (any policy kind): a policy with
    // operations both inside and outside a loop spans that loop's
    // iterations — e.g. a fresh use whose control depends on an input
    // collected before the loop (or in the previous iteration). No
    // start/end pair slicing the loop can cover such a policy, so the
    // region must enclose the loop whole.
    let forest = LoopForest::new(goal_fn, &cfg, &dom);
    loop {
        let mut grew = false;
        for l in forest.loops() {
            let some_in = blocks.iter().any(|b| l.contains(*b));
            let some_out = blocks.iter().any(|b| !l.contains(*b));
            if some_in && some_out && enclose_loop(l, &cfg, &mut blocks) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    let start_dom = dom
        .common_of(blocks.iter().copied())
        .ok_or_else(|| CoreError::infer("policy blocks are unreachable"))?;
    let mut end_dom = pdom
        .common_of(blocks.iter().copied())
        .ok_or_else(|| CoreError::infer("policy blocks have no common post-dominator"))?;

    // --- 5. truncate -------------------------------------------------------
    let start_index = points
        .iter()
        .filter(|pt| pt.block == start_dom)
        .map(|pt| pt.index)
        .min()
        .unwrap_or_else(|| goal_fn.block(start_dom).instrs.len());

    // If a policy operation *is* the end block's terminator (a branch
    // using a fresh value), the region end must move to the immediate
    // post-dominator — the join block of Figure 3.
    loop {
        let term_index = goal_fn.block(end_dom).instrs.len();
        let has_term_item = points
            .iter()
            .any(|pt| pt.block == end_dom && pt.index >= term_index);
        if !has_term_item {
            break;
        }
        end_dom = pdom.idom(end_dom).ok_or_else(|| {
            CoreError::infer(
                "cannot place region end after a policy operation at a function return",
            )
        })?;
    }
    let mut end_index = points
        .iter()
        .filter(|pt| pt.block == end_dom)
        .map(|pt| pt.index + 1)
        .max()
        .unwrap_or(0);
    if end_dom == start_dom {
        end_index = end_index.max(start_index);
    }

    // --- 6. insert ---------------------------------------------------------
    let region = p.fresh_region();
    let f = p.func_mut(goal);
    // Synthesized markers adopt the span of the statement they wrap, so
    // diagnostics can point at real source even for inferred regions.
    let span_near = |f: &ocelot_ir::Function, bb: ocelot_ir::BlockId, i: usize| {
        let blk = f.block(bb);
        blk.instrs
            .get(i)
            .or_else(|| i.checked_sub(1).and_then(|j| blk.instrs.get(j)))
            .map_or(blk.term_span, |inst| inst.span)
    };
    // Insert the end first so the start insertion cannot shift it.
    let end_label = f.fresh_label();
    let end_span = span_near(f, end_dom, end_index);
    f.block_mut(end_dom).instrs.insert(
        end_index,
        Inst {
            label: end_label,
            op: Op::AtomEnd { region },
            span: end_span,
        },
    );
    let start_label = f.fresh_label();
    let start_span = span_near(f, start_dom, start_index);
    f.block_mut(start_dom).instrs.insert(
        start_index,
        Inst {
            label: start_label,
            op: Op::AtomStart { region },
            span: start_span,
        },
    );
    Ok(region)
}

/// Post-order walk of the call graph from `main`; the first function
/// whose subtree contains every operation *and* that lies on every input
/// provenance chain becomes the candidate (Algorithm 1's
/// `findCandidate`, strengthened so a region in the candidate encloses
/// every dynamic instance of the inputs). Returns `None` when even
/// `main` does not cover.
fn find_candidate(
    p: &Program,
    cg: &CallGraph,
    core_items: &BTreeSet<InstrRef>,
    chains: &BTreeSet<ocelot_analysis::taint::Prov>,
) -> Option<FuncId> {
    let mut items_per_func: HashMap<FuncId, usize> = HashMap::new();
    for it in core_items {
        *items_per_func.entry(it.func).or_insert(0) += 1;
    }
    let total = core_items.len();
    let on_all_chains =
        |f: FuncId| -> bool { f == p.main || chains.iter().all(|c| c.iter().any(|e| e.func == f)) };

    let mut memo: HashMap<FuncId, usize> = HashMap::new();
    let mut candidate: Option<FuncId> = None;
    visit(
        p.main,
        cg,
        &items_per_func,
        total,
        &on_all_chains,
        &mut memo,
        &mut candidate,
        &mut BTreeSet::new(),
    );
    candidate
}

#[allow(clippy::too_many_arguments)]
fn visit(
    f: FuncId,
    cg: &CallGraph,
    per_func: &HashMap<FuncId, usize>,
    total: usize,
    on_all_chains: &dyn Fn(FuncId) -> bool,
    memo: &mut HashMap<FuncId, usize>,
    candidate: &mut Option<FuncId>,
    visiting: &mut BTreeSet<FuncId>,
) -> usize {
    if let Some(&n) = memo.get(&f) {
        return n;
    }
    if !visiting.insert(f) {
        return 0; // cycle guard; validated programs are acyclic
    }
    // Distinct callees (multiple sites to the same callee count once).
    let callees: BTreeSet<FuncId> = cg.callees(f).map(|e| e.callee).collect();
    // Count items in the subtree. Items in shared callees would be
    // double-counted by summing, so gather the covered *set* instead.
    let mut covered: BTreeSet<FuncId> = BTreeSet::from([f]);
    for c in &callees {
        visit(
            *c,
            cg,
            per_func,
            total,
            on_all_chains,
            memo,
            candidate,
            visiting,
        );
        covered.extend(cg.reachable_from(*c));
    }
    let n: usize = covered.iter().filter_map(|g| per_func.get(g)).sum();
    if n == total && candidate.is_none() && on_all_chains(f) {
        *candidate = Some(f);
    }
    memo.insert(f, n);
    visiting.remove(&f);
    n
}

/// Hoists a declaration or use up the call graph until it has call
/// site(s) in the goal function. Prefers caller sites that belong to the
/// policy (Algorithm 1 line 11); falls back to every caller within the
/// goal's call subtree.
fn hoist_to_goal(
    cg: &CallGraph,
    goal: FuncId,
    sub: &BTreeSet<FuncId>,
    items: &BTreeSet<InstrRef>,
    op: InstrRef,
    goal_name: &str,
) -> Result<Vec<InstrRef>, CoreError> {
    let mut frontier = vec![op];
    let mut done = Vec::new();
    let mut seen: BTreeSet<InstrRef> = BTreeSet::new();
    while let Some(cur) = frontier.pop() {
        if !seen.insert(cur) {
            continue;
        }
        if cur.func == goal {
            done.push(cur);
            continue;
        }
        let preferred: Vec<InstrRef> = cg
            .callers(cur.func)
            .filter(|e| items.contains(&e.site))
            .map(|e| e.site)
            .collect();
        let next = if preferred.is_empty() {
            cg.callers(cur.func)
                .filter(|e| sub.contains(&e.caller))
                .map(|e| e.site)
                .collect::<Vec<_>>()
        } else {
            preferred
        };
        if next.is_empty() {
            return Err(CoreError::infer(format!(
                "cannot hoist {cur} into `{goal_name}`: no caller reaches it"
            )));
        }
        frontier.extend(next);
    }
    Ok(done)
}

/// Grows `blocks` so that any loop containing an input operation is
/// enclosed whole. Iterates for nested loops.
fn widen_loops(
    f: &ocelot_ir::Function,
    cfg: &Cfg,
    dom: &DomTree,
    input_points: &[Point],
    blocks: &mut BTreeSet<BlockId>,
) {
    let forest = LoopForest::new(f, cfg, dom);
    if forest.loops().is_empty() {
        return;
    }
    let mut trigger: BTreeSet<BlockId> = input_points.iter().map(|pt| pt.block).collect();
    loop {
        let mut grew = false;
        for l in forest.loops() {
            if !trigger.iter().any(|b| l.contains(*b)) {
                continue;
            }
            if enclose_loop(l, cfg, blocks) {
                grew = true;
            }
            // The enclosed blocks propagate widening to enclosing loops.
            trigger.extend(l.body.iter().copied());
            trigger.extend(cfg.preds(l.header).iter().filter(|b| !l.contains(**b)));
            for b in &l.body {
                trigger.extend(cfg.succs(*b).iter().filter(|s| !l.contains(**s)));
            }
        }
        if !grew {
            break;
        }
    }
}

/// Adds every block of `l`, the header's out-of-loop predecessors
/// (preheader side), and each exit edge's target to `blocks`, so the
/// dominator/post-dominator of the set land outside the loop. Returns
/// true when anything was added.
fn enclose_loop(
    l: &ocelot_analysis::loops::NaturalLoop,
    cfg: &Cfg,
    blocks: &mut BTreeSet<BlockId>,
) -> bool {
    let mut grew = false;
    for b in &l.body {
        grew |= blocks.insert(*b);
    }
    for pred in cfg.preds(l.header) {
        if !l.contains(*pred) {
            grew |= blocks.insert(*pred);
        }
    }
    for b in &l.body {
        for s in cfg.succs(*b) {
            if !l.contains(*s) {
                grew |= blocks.insert(*s);
            }
        }
    }
    grew
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::build_policies;
    use crate::region::collect_regions;
    use ocelot_analysis::taint::TaintAnalysis;
    use ocelot_ir::compile;

    fn run(src: &str) -> (Program, PolicySet, Inference) {
        let mut p = compile(src).unwrap();
        ocelot_ir::validate(&p).unwrap();
        let t = TaintAnalysis::run(&p);
        let ps = build_policies(&p, &t);
        let inf = infer_atomics(&mut p, &ps).unwrap();
        ocelot_ir::validate(&p).expect("program stays valid after insertion");
        (p, ps, inf)
    }

    /// Returns the ordered op names of `main` for placement assertions.
    fn main_ops(p: &Program) -> Vec<String> {
        let f = p.func(p.main);
        let mut out = Vec::new();
        for b in &f.blocks {
            for i in &b.instrs {
                out.push(ocelot_ir::print::op_to_string(p, &i.op));
            }
            out.push(format!("term:bb{}", b.id.0));
        }
        out
    }

    #[test]
    fn figure3_fresh_region_spans_input_to_join() {
        // The running example of Figure 3: region starts at the input and
        // ends at the join after the branch.
        let (p, _, inf) = run(r#"
            sensor tmp;
            fn main() {
                let x = in(tmp);
                fresh(x);
                if x < 5 {
                    out(alarm, x);
                }
            }
            "#);
        assert_eq!(inf.policy_map.len(), 1);
        let regions = collect_regions(&p).unwrap();
        assert_eq!(regions.len(), 1);
        let ops = main_ops(&p);
        let start_pos = ops.iter().position(|o| o.starts_with("startatom")).unwrap();
        let input_pos = ops.iter().position(|o| o.contains("in(tmp)")).unwrap();
        let alarm_pos = ops.iter().position(|o| o.contains("out(alarm")).unwrap();
        let end_pos = ops.iter().position(|o| o.starts_with("endatom")).unwrap();
        assert!(start_pos < input_pos, "start before the input");
        assert!(alarm_pos < end_pos, "branch arm inside the region");
        // The start is immediately before the input (after $ret init).
        assert_eq!(input_pos - start_pos, 1, "smallest region: starts at input");
    }

    #[test]
    fn figure6a_region_placed_in_app_around_call() {
        // Fresh through a call: region in main around `x = tmp()` ... `log(x)`.
        let (p, _, _) = run(r#"
            sensor sense;
            fn norm(v) { return v * 2; }
            fn tmp() { let t = in(sense); let t2 = norm(t); return t2; }
            fn main() { let x = tmp(); fresh(x); out(log, x); }
            "#);
        let regions = collect_regions(&p).unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(
            regions[0].func, p.main,
            "goal function is main (the caller)"
        );
        let ops = main_ops(&p);
        let start = ops.iter().position(|o| o.starts_with("startatom")).unwrap();
        let call = ops.iter().position(|o| o.contains("tmp()")).unwrap();
        let log = ops.iter().position(|o| o.contains("out(log")).unwrap();
        let end = ops.iter().position(|o| o.starts_with("endatom")).unwrap();
        assert!(start < call && call < log && log < end);
        // tmp itself contains no region markers.
        let tmp_f = p.func(p.func_by_name("tmp").unwrap());
        assert!(!tmp_f
            .iter_insts()
            .any(|(_, i)| matches!(i.op, Op::AtomStart { .. } | Op::AtomEnd { .. })));
    }

    #[test]
    fn figure6b_region_placed_in_confirm_not_app() {
        // The paper: "Placing the region in confirm results in a smaller
        // region than placing it in app."
        let (p, _, _) = run(r#"
            sensor sense;
            fn pres() { let v = in(sense); return v; }
            fn confirm() {
                let y = pres();
                consistent(y, 1);
                let y2 = pres();
                consistent(y2, 1);
            }
            fn main() { confirm(); }
            "#);
        let regions = collect_regions(&p).unwrap();
        assert_eq!(regions.len(), 1);
        let confirm = p.func_by_name("confirm").unwrap();
        assert_eq!(regions[0].func, confirm, "deepest covering function wins");
        // Both calls to pres are inside the region.
        let cov = crate::region::covered_refs(&p, &regions[0]);
        let confirm_fn = p.func(confirm);
        let call_sites: Vec<InstrRef> = confirm_fn
            .call_sites()
            .into_iter()
            .map(|(l, _)| InstrRef {
                func: confirm,
                label: l,
            })
            .collect();
        assert_eq!(call_sites.len(), 2);
        for cs in call_sites {
            assert!(cov.contains(&cs));
        }
    }

    #[test]
    fn consistent_pair_spans_both_inputs() {
        // Figure 2's pressure+humidity pair.
        let (p, _, _) = run(r#"
            sensor pres;
            sensor hum;
            fn main() {
                let y = in(pres);
                consistent(y, 1);
                let z = in(hum);
                consistent(z, 1);
                out(log, y, z);
            }
            "#);
        let regions = collect_regions(&p).unwrap();
        assert_eq!(regions.len(), 1);
        let ops = main_ops(&p);
        let start = ops.iter().position(|o| o.starts_with("startatom")).unwrap();
        let p1 = ops.iter().position(|o| o.contains("in(pres)")).unwrap();
        let p2 = ops.iter().position(|o| o.contains("in(hum)")).unwrap();
        let end = ops.iter().position(|o| o.starts_with("endatom")).unwrap();
        assert!(start < p1 && p1 < p2 && p2 < end);
        // The log is NOT required to be in the region (consistency
        // constrains only the inputs, §4.3) — the region ends right
        // after the last input.
        let log = ops.iter().position(|o| o.contains("out(log")).unwrap();
        assert!(end < log, "region ends before the log: smallest region");
    }

    #[test]
    fn vacuous_policy_inserts_no_region() {
        let (p, _, inf) = run("fn main() { let x = 1; fresh(x); }");
        assert_eq!(inf.vacuous.len(), 1);
        assert!(collect_regions(&p).unwrap().is_empty());
    }

    #[test]
    fn consistent_input_in_loop_widens_to_whole_loop() {
        // Photo-style: N samples of one sensor must be mutually
        // consistent; the loop must be enclosed whole.
        let (p, _, _) = run(r#"
            sensor photo;
            fn main() {
                let sum = 0;
                repeat 5 {
                    let v = in(photo);
                    consistent(v, 1);
                    sum = sum + v;
                }
                out(log, sum);
            }
            "#);
        let regions = collect_regions(&p).unwrap();
        assert_eq!(regions.len(), 1);
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        let (sb, _) = f.find_label(regions[0].start.label).unwrap();
        let (eb, _) = f.find_label(regions[0].end.label).unwrap();
        assert!(!l.contains(sb), "region start is outside the loop");
        assert!(!l.contains(eb), "region end is outside the loop");
    }

    #[test]
    fn fresh_within_loop_body_stays_per_iteration() {
        // Freshness is per-sample: def and use in the same iteration do
        // not need the loop enclosed.
        let (p, _, _) = run(r#"
            sensor s;
            fn main() {
                repeat 5 {
                    let v = in(s);
                    fresh(v);
                    out(log, v);
                }
            }
            "#);
        let regions = collect_regions(&p).unwrap();
        assert_eq!(regions.len(), 1);
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        let l = &forest.loops()[0];
        let (sb, _) = f.find_label(regions[0].start.label).unwrap();
        assert!(l.contains(sb), "per-iteration region lives inside the loop");
    }

    #[test]
    fn fresh_spanning_loop_boundary_encloses_the_loop() {
        // The loop condition is control-tainted by inputs collected
        // before the loop and at the end of each iteration, so the
        // fresh use inside the body depends on a *previous-iteration*
        // input: no per-iteration region can cover the policy, and the
        // region must enclose the whole loop (plus the pre-loop input).
        let (p, ps, _) = run(r#"
            sensor level;
            sensor pressure;
            nv lvl = 0;
            fn main() {
                let first = in(level);
                lvl = first;
                while lvl > 0 {
                    let v = in(pressure);
                    fresh(v);
                    out(alarm, v);
                    let again = in(level);
                    lvl = again;
                }
            }
            "#);
        let regions = collect_regions(&p).unwrap();
        assert_eq!(regions.len(), 1);
        let report = crate::check::check_regions(&p, &ps).unwrap();
        assert!(report.passes(), "{report:?}");
        // The region bounds are outside the loop.
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        let (sb, _) = f.find_label(regions[0].start.label).unwrap();
        let (eb, _) = f.find_label(regions[0].end.label).unwrap();
        assert!(!l.contains(sb), "start hoisted before the loop");
        assert!(!l.contains(eb), "end placed after the loop");
    }

    #[test]
    fn two_policies_two_regions() {
        let (p, _, inf) = run(r#"
            sensor tmp;
            sensor pres;
            sensor hum;
            fn main() {
                let x = in(tmp);
                fresh(x);
                if x > 5 { out(alarm, x); }
                let y = in(pres);
                consistent(y, 1);
                let z = in(hum);
                consistent(z, 1);
                out(log, y, z);
            }
            "#);
        assert_eq!(inf.policy_map.len(), 2);
        let regions = collect_regions(&p).unwrap();
        assert_eq!(regions.len(), 2);
        // Regions are disjoint: fresh region ends before consistent starts.
        let ops = main_ops(&p);
        let starts: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.starts_with("startatom"))
            .map(|(i, _)| i)
            .collect();
        let ends: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.starts_with("endatom"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(starts.len(), 2);
        assert!(ends[0] < starts[1], "regions do not overlap");
    }

    #[test]
    fn taint_through_helper_argument_covers_both_ops() {
        // raw input in main, normalized through a callee: region covers
        // the input, the call, and the use.
        let (p, _, _) = run(r#"
            sensor s;
            fn norm(v) { return v + 1; }
            fn main() {
                let raw = in(s);
                let x = norm(raw);
                fresh(x);
                out(log, x);
            }
            "#);
        let regions = collect_regions(&p).unwrap();
        assert_eq!(regions.len(), 1);
        let ops = main_ops(&p);
        let start = ops.iter().position(|o| o.starts_with("startatom")).unwrap();
        let input = ops.iter().position(|o| o.contains("in(s)")).unwrap();
        let log = ops.iter().position(|o| o.contains("out(log")).unwrap();
        let end = ops.iter().position(|o| o.starts_with("endatom")).unwrap();
        assert!(start < input && input < log && log < end);
    }
}
