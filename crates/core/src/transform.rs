//! The end-to-end Ocelot transform: annotated program in, correct-by-
//! construction program out (Figure 3's pipeline).
//!
//! ```text
//! validate ─▶ taint ─▶ build policies ─▶ infer regions ─▶ erase annots
//!          ─▶ collect region ω ─▶ self-check (Theorem 1's judgments)
//! ```

use crate::check::{check_regions, CheckReport};
use crate::error::CoreError;
use crate::infer::{infer_atomics, Inference};
use crate::policy::{build_policies, PolicyMap, PolicySet};
use crate::region::{collect_regions, RegionInfo};
use ocelot_analysis::taint::TaintAnalysis;
use ocelot_ir::Program;

/// The output of the Ocelot transform.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The transformed program: regions inserted, annotations erased.
    pub program: Program,
    /// The derived policy declarations (the paper's `PD`).
    pub policies: PolicySet,
    /// Region → policies map (the paper's `PM`).
    pub policy_map: PolicyMap,
    /// Every region in the program (inferred *and* pre-existing manual
    /// ones) with extent and checkpoint set `ω`.
    pub regions: Vec<RegionInfo>,
    /// The post-transform self-check report; always passing for
    /// successfully compiled programs.
    pub check: CheckReport,
}

impl Compiled {
    /// Looks up region metadata by id.
    pub fn region(&self, id: ocelot_ir::RegionId) -> Option<&RegionInfo> {
        self.regions.iter().find(|r| r.id == id)
    }
}

/// Runs the full Ocelot pipeline on an annotated program.
///
/// # Errors
///
/// Returns [`CoreError`] when the program fails structural validation,
/// when region inference cannot place a region, or when the final
/// self-check finds a policy that the inserted regions do not enforce
/// (which would indicate a bug in inference — Theorem 1 says inferred
/// programs pass).
pub fn ocelot_transform(program: Program) -> Result<Compiled, CoreError> {
    ocelot_ir::validate(&program)?;
    let taint = TaintAnalysis::run(&program);
    ocelot_transform_with(program, &taint)
}

/// [`ocelot_transform`] with a caller-supplied taint analysis, for
/// callers that maintain the analysis incrementally across edits
/// (`ocelot_analysis::incremental::FlowCache`). The analysis must have
/// been computed for exactly this `program` — feeding a stale analysis
/// produces garbage policies; an incrementally-assembled one is
/// guaranteed identical to `TaintAnalysis::run`, so the output here is
/// identical to [`ocelot_transform`].
///
/// # Errors
///
/// Same as [`ocelot_transform`], minus the up-front validation errors
/// (this entry still validates, so malformed programs are caught).
pub fn ocelot_transform_with(
    mut program: Program,
    taint: &TaintAnalysis,
) -> Result<Compiled, CoreError> {
    let _span = ocelot_telemetry::span!("transform");
    ocelot_ir::validate(&program)?;
    let policies = build_policies(&program, taint);
    let Inference { policy_map, .. } = {
        let _infer = ocelot_telemetry::span!("infer");
        infer_atomics(&mut program, &policies)?
    };
    program.erase_annotations();
    ocelot_ir::validate(&program)?;
    let regions = collect_regions(&program)?;
    let check = check_regions(&program, &policies)?;
    if !check.passes() {
        return Err(CoreError::infer(format!(
            "inferred regions failed the atomic-region check: {}",
            check
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        )));
    }
    Ok(Compiled {
        program,
        policies,
        policy_map,
        regions,
        check,
    })
}

/// Checker mode (§8): leave the program unchanged and report whether its
/// *existing* regions enforce its annotations.
///
/// # Errors
///
/// Returns [`CoreError`] on structural problems (validation, malformed
/// regions).
pub fn ocelot_check(program: &Program) -> Result<CheckReport, CoreError> {
    ocelot_ir::validate(program)?;
    let taint = TaintAnalysis::run(program);
    ocelot_check_with(program, &taint)
}

/// [`ocelot_check`] with a caller-supplied taint analysis (see
/// [`ocelot_transform_with`] for the contract).
///
/// # Errors
///
/// Returns [`CoreError`] on structural problems (validation, malformed
/// regions).
pub fn ocelot_check_with(
    program: &Program,
    taint: &TaintAnalysis,
) -> Result<CheckReport, CoreError> {
    ocelot_ir::validate(program)?;
    let policies = build_policies(program, taint);
    check_regions(program, &policies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile;

    #[test]
    fn transform_produces_checked_program() {
        let p = compile(
            r#"
            sensor tmp; sensor pres; sensor hum;
            fn main() {
                let x = in(tmp);
                fresh(x);
                if x > 5 { out(alarm, x); }
                let y = in(pres);
                consistent(y, 1);
                let z = in(hum);
                consistent(z, 1);
                out(log, y, z);
            }
            "#,
        )
        .unwrap();
        let c = ocelot_transform(p).unwrap();
        assert_eq!(c.regions.len(), 2);
        assert_eq!(c.policies.len(), 2);
        assert!(c.check.passes());
        assert!(c.program.annotations().is_empty(), "annotations erased");
    }

    #[test]
    fn transform_preserves_manual_regions() {
        let p = compile(
            r#"
            sensor s;
            fn main() {
                atomic { out(uart, 1); }
                let x = in(s);
                fresh(x);
                out(log, x);
            }
            "#,
        )
        .unwrap();
        let c = ocelot_transform(p).unwrap();
        // One manual region + one inferred region.
        assert_eq!(c.regions.len(), 2);
        assert_eq!(c.policy_map.len(), 1);
    }

    #[test]
    fn checker_mode_flags_bad_manual_placement() {
        let p = compile(
            r#"
            sensor s;
            fn main() {
                atomic { let x = in(s); fresh(x); }
                out(log, x);
            }
            "#,
        )
        .unwrap();
        let report = ocelot_check(&p).unwrap();
        assert!(!report.passes());
    }

    #[test]
    fn checker_mode_accepts_good_manual_placement() {
        let p = compile(
            r#"
            sensor s;
            fn main() {
                atomic { let x = in(s); fresh(x); out(log, x); }
            }
            "#,
        )
        .unwrap();
        let report = ocelot_check(&p).unwrap();
        assert!(report.passes());
    }

    #[test]
    fn program_without_annotations_is_untouched() {
        let p = compile("sensor s; fn main() { let x = in(s); out(log, x); }").unwrap();
        let before = ocelot_ir::print::program_to_string(&p);
        let c = ocelot_transform(p).unwrap();
        let after = ocelot_ir::print::program_to_string(&c.program);
        assert_eq!(before, after);
        assert!(c.regions.is_empty());
    }
}
