//! The Appendix E checking judgments, implemented literally.
//!
//! `FD; PD, FS; (g,ℓ); f; M; I ⊩ c : M′; I′` — walk each function under
//! each calling context, maintaining the may-alias map `M` (trivially
//! singleton under the Rust ownership discipline, §5.2) and the
//! input-dependence map `I`, applying one rule per instruction form:
//! **Input**, **Let**, **Call-nr**, **Call-r**, **Assign**,
//! **Assign-Ref**, **Let-fresh**, **Let-consistent**, **Atomic**, and
//! **Ret**.
//!
//! This is a second, *independent* derivation of input dependence —
//! structured like the paper's rules rather than like the summary-based
//! Algorithm 2 — so it cross-validates `ocelot-analysis::taint`: a
//! policy that passes here has every input chain and every fresh use in
//! its declaration, the premise Theorem 1 needs.

use crate::policy::{PolicyKind, PolicySet};
use ocelot_analysis::taint::Prov;
use ocelot_ir::ast::{Arg, Expr};
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{AnnotKind, FuncId, InstrRef, Op, Place, Program, Terminator};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which judgment rule was applied (for the derivation trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleId {
    /// `let x = IN()` — taint generated locally.
    Input,
    /// `let x = e` — dependence propagation.
    Let,
    /// `let x = g(v)` with non-reference arguments.
    CallNr,
    /// `let x = g(&y)` — pass-by-reference flow.
    CallR,
    /// `x := e` assignment.
    Assign,
    /// `*x := e` store through a reference.
    AssignRef,
    /// `let fresh x = e` — premise: chains ⊆ policy inputs.
    LetFresh,
    /// `let consistent(n) x = e`.
    LetConsistent,
    /// `startatom/endatom` pass-through.
    Atomic,
    /// `ret e`.
    Ret,
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleId::Input => "Input",
            RuleId::Let => "Let",
            RuleId::CallNr => "Call-nr",
            RuleId::CallR => "Call-r",
            RuleId::Assign => "Assign",
            RuleId::AssignRef => "Assign-Ref",
            RuleId::LetFresh => "Let-fresh",
            RuleId::LetConsistent => "Let-consistent",
            RuleId::Atomic => "Atomic",
            RuleId::Ret => "Ret",
        };
        f.write_str(s)
    }
}

/// The derivation: every rule application, plus any failed premises.
#[derive(Debug, Clone, Default)]
pub struct Derivation {
    /// `(rule, instruction)` in application order.
    pub applications: Vec<(RuleId, InstrRef)>,
    /// Failed premises, human-readable.
    pub problems: Vec<String>,
}

impl Derivation {
    /// True when every premise held — the `⊩ ok` conclusion.
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }

    /// How many times `rule` was applied.
    pub fn count(&self, rule: RuleId) -> usize {
        self.applications.iter().filter(|(r, _)| *r == rule).count()
    }
}

/// Input-dependence map `I`: variable → full provenance chains.
type DepMap = BTreeMap<String, BTreeSet<Prov>>;

/// Checks the whole program: `FD; PD, FS ⊢ FS : ok` — every function
/// under every calling context reachable from `main`.
pub fn check_declarations(p: &Program, policies: &PolicySet) -> Derivation {
    let mut d = Derivation::default();
    // Globals accumulate dependence across the walk (flow-insensitive
    // across contexts, like the fixpoint in the analysis).
    let mut globals: DepMap = BTreeMap::new();
    // Iterate to a fixpoint over global taint (bounded: chains are
    // finite and only grow).
    for _round in 0..4 {
        let before = globals.clone();
        let mut walker = Walker {
            p,
            policies,
            d: Derivation::default(),
            globals: globals.clone(),
        };
        let mut entry = DepMap::new();
        walker.walk_function(p.main, &[], &mut entry);
        globals = walker.globals;
        d = walker.d;
        if globals == before {
            break;
        }
    }
    d
}

struct Walker<'a> {
    p: &'a Program,
    policies: &'a PolicySet,
    d: Derivation,
    globals: DepMap,
}

impl<'a> Walker<'a> {
    /// Walks `f` under context `ctx` (chain of call sites from `main`);
    /// `locals` is seeded with parameter dependences and, for by-ref
    /// parameters, mutated in place so the caller observes write-backs.
    /// Returns the return value's dependence.
    fn walk_function(
        &mut self,
        f: FuncId,
        ctx: &[InstrRef],
        locals: &mut DepMap,
    ) -> BTreeSet<Prov> {
        let func = self.p.func(f).clone();
        let cfg = Cfg::new(&func);
        // Flow over blocks in RPO with union-merge; loop bodies are
        // visited twice so loop-carried dependence reaches a fixpoint
        // (chains are context-fixed here, so two passes suffice).
        let mut ret_deps: BTreeSet<Prov> = BTreeSet::new();
        for _pass in 0..2 {
            for b in cfg.rpo() {
                let block = func.block(*b);
                for inst in &block.instrs {
                    let here = InstrRef {
                        func: f,
                        label: inst.label,
                    };
                    self.step(f, ctx, here, &inst.op, locals);
                }
                if let Terminator::Ret(Some(e)) = &block.term {
                    ret_deps.extend(self.expr_deps(e, locals));
                }
            }
        }
        ret_deps
    }

    fn step(&mut self, f: FuncId, ctx: &[InstrRef], here: InstrRef, op: &Op, locals: &mut DepMap) {
        match op {
            Op::Input { var, .. } => {
                self.d.applications.push((RuleId::Input, here));
                let mut chain: Prov = ctx.to_vec();
                chain.push(here);
                locals.insert(var.clone(), BTreeSet::from([chain]));
            }
            Op::Bind { var, src } => {
                self.d.applications.push((RuleId::Let, here));
                self.check_use(f, here, src);
                let deps = self.expr_deps(src, locals);
                locals.insert(var.clone(), deps);
            }
            Op::Assign { place, src } => {
                let deps = self.expr_deps(src, locals);
                self.check_use(f, here, src);
                match place {
                    Place::Var(x) => {
                        self.d.applications.push((RuleId::Assign, here));
                        if self.p.is_global(x) {
                            self.globals.entry(x.clone()).or_default().extend(deps);
                        } else {
                            locals.insert(x.clone(), deps);
                        }
                    }
                    Place::Index(a, i) => {
                        self.d.applications.push((RuleId::Assign, here));
                        let mut deps = deps;
                        deps.extend(self.expr_deps(i, locals));
                        self.globals.entry(a.clone()).or_default().extend(deps);
                    }
                    Place::Deref(x) => {
                        self.d.applications.push((RuleId::AssignRef, here));
                        // The singleton may-alias discipline: `*x`
                        // refers to exactly the bound cell.
                        locals.insert(format!("*{x}"), deps);
                    }
                }
            }
            Op::Call { dst, callee, args } => {
                let has_ref = args.iter().any(|a| matches!(a, Arg::Ref(_)));
                self.d.applications.push((
                    if has_ref {
                        RuleId::CallR
                    } else {
                        RuleId::CallNr
                    },
                    here,
                ));
                let callee_fn = self.p.func(*callee);
                let mut callee_locals = DepMap::new();
                let mut ref_map: Vec<(String, String)> = Vec::new();
                for (a, param) in args.iter().zip(&callee_fn.params) {
                    match a {
                        Arg::Value(e) => {
                            self.check_use(f, here, e);
                            callee_locals.insert(param.name.clone(), self.expr_deps(e, locals));
                        }
                        Arg::Ref(x) => {
                            // Entry value of the cell behind the ref.
                            let entry = self.var_deps(x, locals);
                            callee_locals.insert(format!("*{}", param.name), entry);
                            ref_map.push((param.name.clone(), x.clone()));
                        }
                    }
                }
                let mut child_ctx: Vec<InstrRef> = ctx.to_vec();
                child_ctx.push(here);
                let ret = self.walk_function(*callee, &child_ctx, &mut callee_locals);
                // Write-backs through by-ref parameters.
                for (param, arg_var) in ref_map {
                    if let Some(out) = callee_locals.get(&format!("*{param}")) {
                        if self.p.is_global(&arg_var) {
                            self.globals
                                .entry(arg_var.clone())
                                .or_default()
                                .extend(out.iter().cloned());
                        } else {
                            locals.insert(arg_var.clone(), out.clone());
                        }
                    }
                }
                if let Some(dst) = dst {
                    locals.insert(dst.clone(), ret);
                }
            }
            Op::Annot { kind, var } => {
                let rule = match kind {
                    AnnotKind::Fresh => RuleId::LetFresh,
                    AnnotKind::Consistent(_) => RuleId::LetConsistent,
                    // No typing rule applies to a loop-bound marker.
                    AnnotKind::Bound(_) => return,
                };
                self.d.applications.push((rule, here));
                // Premise: callChain(FS, ins) ⊆ PD(...).inputs.
                let deps = self.var_deps(var, locals);
                let Some(pol) = self.policies.iter().find(|pl| {
                    pl.decls.iter().any(|dd| dd.at == here)
                        && match (kind, pl.kind) {
                            (AnnotKind::Fresh, PolicyKind::Fresh) => true,
                            (AnnotKind::Consistent(a), PolicyKind::Consistent(b)) => *a == b,
                            _ => false,
                        }
                }) else {
                    self.d.problems.push(format!(
                        "no policy declares the {kind:?} annotation at {here}"
                    ));
                    return;
                };
                for chain in &deps {
                    if !pol.inputs.contains(chain) {
                        self.d.problems.push(format!(
                            "{rule}: chain {chain:?} of `{var}` missing from policy {:?}",
                            pol.id
                        ));
                    }
                }
            }
            Op::Output { args, .. } => {
                for e in args {
                    self.check_use(f, here, e);
                }
            }
            Op::AtomStart { .. } | Op::AtomEnd { .. } => {
                self.d.applications.push((RuleId::Atomic, here));
            }
            Op::Skip => {}
        }
    }

    /// The `checkUse(PD, e)` premise: if `e` mentions a fresh-policy
    /// variable (declared in this function), this instruction must be in
    /// that policy's use set.
    fn check_use(&mut self, f: FuncId, here: InstrRef, e: &Expr) {
        for v in e.vars() {
            for pol in self.policies.iter() {
                if pol.kind != PolicyKind::Fresh {
                    continue;
                }
                let declares_v = pol.decls.iter().any(|d| d.var == v && d.at.func == f);
                if declares_v && !pol.is_vacuous() && !pol.uses.contains(&here) {
                    // The defining instruction itself is exempt (the
                    // policy's span starts at the definition).
                    let defines = self
                        .p
                        .inst(here)
                        .and_then(|i| i.op.def().cloned())
                        .is_some_and(|d| d == v);
                    if !defines {
                        self.d.problems.push(format!(
                            "checkUse: use of fresh `{v}` at {here} missing from policy {:?}",
                            pol.id
                        ));
                    }
                }
            }
        }
    }

    fn var_deps(&self, name: &str, locals: &DepMap) -> BTreeSet<Prov> {
        if let Some(d) = locals.get(name) {
            return d.clone();
        }
        if let Some(d) = locals.get(&format!("*{name}")) {
            return d.clone();
        }
        self.globals.get(name).cloned().unwrap_or_default()
    }

    fn expr_deps(&self, e: &Expr, locals: &DepMap) -> BTreeSet<Prov> {
        let mut out = BTreeSet::new();
        for v in e.vars() {
            out.extend(self.var_deps(&v, locals));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::build_policies;
    use ocelot_analysis::taint::TaintAnalysis;
    use ocelot_ir::compile;

    fn derive(src: &str) -> (Derivation, PolicySet) {
        let p = compile(src).unwrap();
        ocelot_ir::validate(&p).unwrap();
        let t = TaintAnalysis::run(&p);
        let ps = build_policies(&p, &t);
        (check_declarations(&p, &ps), ps)
    }

    #[test]
    fn figure6a_derivation_applies_expected_rules() {
        let (d, _) = derive(
            r#"
            sensor sense;
            fn norm(v) { return v * 2; }
            fn tmp() { let t = in(sense); let t2 = norm(t); return t2; }
            fn main() { let x = tmp(); fresh(x); out(log, x); }
            "#,
        );
        assert!(d.ok(), "{:?}", d.problems);
        assert!(d.count(RuleId::Input) >= 1);
        assert!(d.count(RuleId::CallNr) >= 2, "tmp() and norm()");
        assert!(d.count(RuleId::LetFresh) >= 1);
    }

    #[test]
    fn derived_policies_always_pass_their_own_check() {
        // The rule checker independently re-derives dependence; the
        // analysis-built policies must satisfy it.
        for b in ocelot_apps_sources() {
            let (d, _) = derive(b);
            assert!(d.ok(), "{:?}", d.problems);
        }
    }

    /// A few representative app-shaped sources (full apps are covered in
    /// the integration suite to avoid a dependency cycle).
    fn ocelot_apps_sources() -> Vec<&'static str> {
        vec![
            r#"
            sensor s;
            fn grab() { let v = in(s); return v; }
            fn main() {
                let a = grab(); consistent(a, 1);
                let b = grab(); consistent(b, 1);
                out(log, a, b);
            }
            "#,
            r#"
            sensor s;
            nv hist[4];
            nv n = 0;
            fn main() {
                let v = in(s);
                fresh(v);
                hist[n % 4] = v;
                n = n + 1;
                let old = hist[0];
                out(log, old);
            }
            "#,
            r#"
            sensor s;
            fn sample(&dst) { let v = in(s); *dst = v; }
            fn main() {
                let x = 0;
                sample(&x);
                fresh(x);
                if x > 3 { out(alarm, x); }
            }
            "#,
        ]
    }

    #[test]
    fn tampered_policy_fails_let_fresh_premise() {
        let p = compile("sensor s; fn main() { let x = in(s); fresh(x); out(log, x); }").unwrap();
        let t = TaintAnalysis::run(&p);
        let mut ps = build_policies(&p, &t);
        // Drop the input chain: the Let-fresh premise must now fail.
        ps.policies[0].inputs.clear();
        ps.policies[0].decls[0].inputs.clear();
        // The policy became "vacuous"; un-vacuate it by restoring a fake
        // chain so the premise is actually exercised.
        let d = check_declarations(&p, &ps);
        // With no inputs the annotation's real chain is missing.
        assert!(!d.ok());
        assert!(d.problems[0].contains("missing from policy"));
    }

    #[test]
    fn tampered_uses_fail_check_use_premise() {
        let p = compile("sensor s; fn main() { let x = in(s); fresh(x); out(log, x); }").unwrap();
        let t = TaintAnalysis::run(&p);
        let mut ps = build_policies(&p, &t);
        ps.policies[0].uses.clear();
        let d = check_declarations(&p, &ps);
        assert!(!d.ok());
        assert!(d.problems.iter().any(|m| m.contains("checkUse")));
    }

    #[test]
    fn loop_carried_dependence_converges() {
        let (d, _) = derive(
            r#"
            sensor s;
            nv acc = 0;
            fn main() {
                repeat 3 {
                    let v = in(s);
                    acc = acc + v;
                }
                let t = acc;
                fresh(t);
                out(log, t);
            }
            "#,
        );
        assert!(d.ok(), "{:?}", d.problems);
    }
}
