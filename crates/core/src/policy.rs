//! Policies: the bridge from annotations to enforceable atomic regions.
//!
//! A *policy* (paper §5.1, Figure 5) records everything an annotation
//! requires to execute atomically: for `Fresh(x)`, the input operations
//! `x` depends on (with full provenance call chains) and every use of
//! `x`; for `Consistent(x, n)`, the declarations in set `n` and the
//! union of their input chains. Region inference then places one atomic
//! region around each policy's operations; the checker verifies that
//! placement.

use ocelot_analysis::taint::{Prov, TaintAnalysis};
use ocelot_ir::{AnnotKind, InstrRef, Program, RegionId};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies a policy within a [`PolicySet`] — the paper's `pID`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PolicyId(pub u32);

/// Which timing property a policy enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// A freshness policy from one `Fresh` annotation.
    Fresh,
    /// A temporal-consistency policy grouping every `Consistent`
    /// annotation with this set id.
    Consistent(u32),
}

/// One member declaration of a policy: an annotation site, the variable
/// it names, and the input chains that specific variable depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    /// The annotation instruction.
    pub at: InstrRef,
    /// The annotated variable (post-renaming name).
    pub var: String,
    /// Full provenance chains of the inputs this variable depends on.
    pub inputs: BTreeSet<Prov>,
}

/// One policy — the paper's `pol`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// This policy's id.
    pub id: PolicyId,
    /// Fresh or consistent.
    pub kind: PolicyKind,
    /// The annotation site(s): exactly one for `Fresh`, one per member
    /// for `Consistent`.
    pub decls: Vec<Decl>,
    /// Full provenance chains (from `main`) of every input operation any
    /// declared variable depends on (union over `decls`).
    pub inputs: BTreeSet<Prov>,
    /// Instructions using a fresh variable (empty for consistent
    /// policies, whose definition constrains only the inputs — §4.3).
    pub uses: BTreeSet<InstrRef>,
}

impl Policy {
    /// Every instruction the policy mentions: declarations, uses, and
    /// every call site + input operation along each provenance chain.
    /// The chain call sites enable Algorithm 1's hoisting step (`if call
    /// ∈ set`, line 11).
    pub fn items(&self) -> BTreeSet<InstrRef> {
        let mut out = BTreeSet::new();
        for d in &self.decls {
            out.insert(d.at);
        }
        out.extend(self.uses.iter().copied());
        for chain in &self.inputs {
            out.extend(chain.iter().copied());
        }
        out
    }

    /// The *operations* a region must enclose: input-bearing
    /// declarations, uses, and the input instructions themselves —
    /// without the intermediate chain call sites (those locate the
    /// operations; `findCandidate` reasons over the operations, per the
    /// paper's Figure 6(b) walk-through where `confirm`, not `app`, is
    /// the candidate).
    pub fn core_items(&self) -> BTreeSet<InstrRef> {
        let mut out = BTreeSet::new();
        for d in &self.decls {
            if !d.inputs.is_empty() {
                out.insert(d.at);
            }
        }
        out.extend(self.uses.iter().copied());
        out.extend(self.input_ops());
        out
    }

    /// True when the policy constrains nothing (no input dependence):
    /// such policies are vacuously satisfied (Definitions 2 and 3 range
    /// over the input timestamps, of which there are none).
    pub fn is_vacuous(&self) -> bool {
        match self.kind {
            PolicyKind::Fresh => self.inputs.is_empty(),
            // A consistent set needs at least two inputs to relate —
            // except that a single *static* input inside a loop yields
            // many dynamic samples, so a lone chain is only vacuous if
            // nothing was sensed at all.
            PolicyKind::Consistent(_) => self.inputs.is_empty(),
        }
    }

    /// The input *instructions* (last element of each chain).
    pub fn input_ops(&self) -> BTreeSet<InstrRef> {
        self.inputs
            .iter()
            .filter_map(|c| c.last().copied())
            .collect()
    }
}

/// All policies of a program — the paper's `PD`.
#[derive(Debug, Clone, Default)]
pub struct PolicySet {
    /// The policies, indexed by [`PolicyId`].
    pub policies: Vec<Policy>,
}

impl PolicySet {
    /// The policy with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn policy(&self, id: PolicyId) -> &Policy {
        &self.policies[id.0 as usize]
    }

    /// Iterates over all policies.
    pub fn iter(&self) -> impl Iterator<Item = &Policy> {
        self.policies.iter()
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True when there are no policies.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }
}

/// Maps each atomic region to the policies it enforces — the paper's `PM`.
pub type PolicyMap = BTreeMap<RegionId, Vec<PolicyId>>;

/// Builds the policy set from a program's annotations (the
/// `getAnnotations` + `buildPolicies` steps of Figure 3).
///
/// Fresh annotations each yield their own policy; consistent annotations
/// are grouped by set id. Uses of a fresh variable are every instruction
/// or terminator in the annotating function that mentions the variable,
/// annotations excluded.
pub fn build_policies(p: &Program, taint: &TaintAnalysis) -> PolicySet {
    let mut policies = Vec::new();
    let mut consistent_groups: BTreeMap<u32, Vec<Decl>> = BTreeMap::new();

    for (at, kind, var) in p.annotations() {
        let decl_inputs = taint.annotation_inputs(p, at);
        match kind {
            AnnotKind::Fresh => {
                let uses: BTreeSet<InstrRef> = taint
                    .use_labels(at.func, &var)
                    .into_iter()
                    .map(|label| InstrRef {
                        func: at.func,
                        label,
                    })
                    .filter(|r| {
                        // Exclude the defining instruction itself: policy
                        // uses are the dependents of the definition
                        // (Figure 4a); the def is covered via the input
                        // chains' dominance.
                        !defines_var(p, *r, &var)
                    })
                    .collect();
                policies.push(Policy {
                    id: PolicyId(0), // renumbered below
                    kind: PolicyKind::Fresh,
                    inputs: decl_inputs.clone(),
                    decls: vec![Decl {
                        at,
                        var,
                        inputs: decl_inputs,
                    }],
                    uses,
                });
            }
            AnnotKind::Consistent(id) => {
                consistent_groups.entry(id).or_default().push(Decl {
                    at,
                    var,
                    inputs: decl_inputs,
                });
            }
            // Loop-bound declarations are forward-progress metadata,
            // not timing policies.
            AnnotKind::Bound(_) => {}
        }
    }

    for (set_id, decls) in consistent_groups {
        let mut inputs = BTreeSet::new();
        for d in &decls {
            inputs.extend(d.inputs.iter().cloned());
        }
        policies.push(Policy {
            id: PolicyId(0),
            kind: PolicyKind::Consistent(set_id),
            decls,
            inputs,
            uses: BTreeSet::new(),
        });
    }

    for (i, pol) in policies.iter_mut().enumerate() {
        pol.id = PolicyId(i as u32);
    }
    PolicySet { policies }
}

/// True when the instruction at `r` defines `var` (binds or assigns it).
fn defines_var(p: &Program, r: InstrRef, var: &str) -> bool {
    match p.inst(r) {
        Some(inst) => inst.op.def().map(|d| d == var).unwrap_or(false),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_analysis::taint::TaintAnalysis;
    use ocelot_ir::compile;

    fn policies_of(src: &str) -> (ocelot_ir::Program, PolicySet) {
        let p = compile(src).unwrap();
        ocelot_ir::validate(&p).unwrap();
        let t = TaintAnalysis::run(&p);
        let ps = build_policies(&p, &t);
        (p, ps)
    }

    #[test]
    fn fresh_policy_records_inputs_and_uses() {
        let (p, ps) = policies_of(
            "sensor s; fn main() { let x = in(s); fresh(x); if x > 5 { out(alarm, x); } }",
        );
        assert_eq!(ps.len(), 1);
        let pol = &ps.policies[0];
        assert_eq!(pol.kind, PolicyKind::Fresh);
        assert_eq!(pol.inputs.len(), 1);
        // Uses: the branch terminator and the out(alarm, x).
        assert_eq!(pol.uses.len(), 2);
        assert!(!pol.is_vacuous());
        // Items include decl + uses + input op.
        assert!(pol.items().len() >= 4);
        let _ = p;
    }

    #[test]
    fn consistent_annotations_group_by_id() {
        let (_, ps) = policies_of(
            r#"
            sensor a; sensor b; sensor c;
            fn main() {
                let x = in(a); consistent(x, 1);
                let y = in(b); consistent(y, 1);
                let z = in(c); consistent(z, 2);
            }
            "#,
        );
        assert_eq!(ps.len(), 2);
        let set1 = ps
            .iter()
            .find(|p| p.kind == PolicyKind::Consistent(1))
            .unwrap();
        assert_eq!(set1.decls.len(), 2);
        assert_eq!(set1.inputs.len(), 2);
        let set2 = ps
            .iter()
            .find(|p| p.kind == PolicyKind::Consistent(2))
            .unwrap();
        assert_eq!(set2.decls.len(), 1);
        assert_eq!(set2.inputs.len(), 1);
    }

    #[test]
    fn vacuous_policy_detected() {
        let (_, ps) = policies_of("fn main() { let x = 1 + 2; fresh(x); }");
        assert_eq!(ps.len(), 1);
        assert!(ps.policies[0].is_vacuous());
    }

    #[test]
    fn defining_instruction_is_not_a_use() {
        let (p, ps) =
            policies_of("sensor s; fn main() { let x = in(s); fresh(x); let y = x + 1; }");
        let pol = &ps.policies[0];
        assert_eq!(pol.uses.len(), 1, "only `let y = x + 1` uses x");
        for u in &pol.uses {
            assert!(!super::defines_var(&p, *u, "x"));
        }
    }

    #[test]
    fn input_ops_are_chain_tails() {
        let (p, ps) = policies_of(
            r#"
            sensor s;
            fn grab() { let v = in(s); return v; }
            fn main() { let x = grab(); fresh(x); out(log, x); }
            "#,
        );
        let pol = &ps.policies[0];
        let ops = pol.input_ops();
        assert_eq!(ops.len(), 1);
        let op = ops.iter().next().unwrap();
        assert!(p.inst(*op).unwrap().op.is_input());
        assert_eq!(op.func, p.func_by_name("grab").unwrap());
    }

    #[test]
    fn fresh_and_consistent_on_same_var_yield_two_policies() {
        // The tire benchmark's "FreshCon" pattern (§8, Figure 9).
        let (_, ps) = policies_of(
            r#"
            sensor s;
            fn main() {
                let x = in(s);
                fresh(x);
                consistent(x, 1);
                out(log, x);
            }
            "#,
        );
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().any(|p| p.kind == PolicyKind::Fresh));
        assert!(ps
            .iter()
            .any(|p| matches!(p.kind, PolicyKind::Consistent(1))));
    }
}
