//! Error types for the core crate.

use std::fmt;

/// Errors from policy construction, region inference, and checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying IR error (validation, lowering).
    Ir(ocelot_ir::IrError),
    /// Region inference could not place a region.
    Infer {
        /// What went wrong.
        message: String,
    },
    /// A region's structure is malformed (unmatched or escaping).
    Region {
        /// What went wrong.
        message: String,
    },
}

impl CoreError {
    /// Convenience constructor for inference errors.
    pub fn infer(message: impl Into<String>) -> Self {
        CoreError::Infer {
            message: message.into(),
        }
    }

    /// Convenience constructor for region-structure errors.
    pub fn region(message: impl Into<String>) -> Self {
        CoreError::Region {
            message: message.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Ir(e) => write!(f, "{e}"),
            CoreError::Infer { message } => write!(f, "region inference failed: {message}"),
            CoreError::Region { message } => write!(f, "malformed region: {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ocelot_ir::IrError> for CoreError {
    fn from(e: ocelot_ir::IrError) -> Self {
        CoreError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = CoreError::infer("no candidate function");
        assert!(e.to_string().contains("no candidate"));
        assert!(e.source().is_none());
        let e = CoreError::from(ocelot_ir::IrError::validate("bad"));
        assert!(e.source().is_some());
    }
}
