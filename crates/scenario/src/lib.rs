//! # ocelot-scenario
//!
//! A declarative scenario library: named, deterministic compositions of
//! a sensed **environment** (signal combinators over every channel the
//! apps read), a **power supply** (harvester + storage, including
//! piecewise and trace-scripted schedules), and a suggested workload
//! binding.
//!
//! The paper's guarantees only show their value across *diverse*
//! environments — its evaluation varies harvesters, sensor signals, and
//! power regimes per app (§7.2). This crate makes that variation a
//! first-class, extensible surface: every scenario is
//!
//! * **named** — [`all`] enumerates the registry, [`parse`] resolves
//!   `name` or `name@seed` specs from CLIs and sweep drivers;
//! * **deterministic** — environments are pure functions of time and the
//!   scenario seed, supplies re-derive all mutable state from the seed,
//!   so a cell can be re-run bit-for-bit;
//! * **reseedable** — [`Scenario::reseeded`] derives an independent
//!   variant for each evaluation cell; and
//! * **`Send`** — a scenario (and the supply it builds) can be moved
//!   onto a worker of the work-stealing evaluation harness.
//!
//! Adding a scenario is one entry in [`registry`] (see
//! `docs/scenarios.md` for the walkthrough); everything downstream —
//! the `scenario_sweep` bench driver, `ocelotc scenario`, the
//! determinism property tests — picks it up from the registry.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod registry;

use ocelot_hw::energy::Capacitor;
use ocelot_hw::power::{ContinuousPower, HarvestedPower, PowerSupply};
use ocelot_hw::sensors::Environment;
use ocelot_hw::Harvester;

/// A declarative harvester description, built into a concrete
/// [`Harvester`] with the scenario seed.
#[derive(Debug, Clone, PartialEq)]
pub enum HarvesterSpec {
    /// Constant power in nW.
    Constant {
        /// Power in nW.
        power_nw: f64,
    },
    /// RF far-field source (the paper's PowerCast shape).
    Rf {
        /// Power at 1 inch, in nW.
        power_at_1in_nw: f64,
        /// Distance in inches.
        distance_in: f64,
    },
    /// Log-uniform jitter around a base power, RNG seeded per scenario.
    Noisy {
        /// Base power in nW.
        base_nw: f64,
        /// Relative jitter, e.g. `0.5` for ±50%.
        jitter: f64,
    },
    /// On/off ambient harvesting a duty fraction of each period.
    DutyCycle {
        /// Power while on, in nW.
        on_power_nw: f64,
        /// On fraction in `(0, 1]`.
        duty: f64,
    },
    /// Piecewise power over cumulative charging time (brownouts,
    /// recoveries).
    Schedule {
        /// `(from_us, power_nw)` segments.
        segments: Vec<(u64, f64)>,
    },
    /// Trace-scripted power: one sample per charging interval, cycling.
    Trace {
        /// Power per charging interval, in nW.
        powers_nw: Vec<f64>,
    },
}

impl HarvesterSpec {
    /// Builds the concrete harvester for `seed`.
    pub fn build(&self, seed: u64) -> Harvester {
        match self {
            HarvesterSpec::Constant { power_nw } => Harvester::Constant {
                power_nw: *power_nw,
            },
            HarvesterSpec::Rf {
                power_at_1in_nw,
                distance_in,
            } => Harvester::Rf {
                power_at_1in_nw: *power_at_1in_nw,
                distance_in: *distance_in,
            },
            HarvesterSpec::Noisy { base_nw, jitter } => Harvester::Noisy {
                base_nw: *base_nw,
                jitter: *jitter,
                rng: rand_seeded(seed),
            },
            HarvesterSpec::DutyCycle { on_power_nw, duty } => Harvester::DutyCycle {
                on_power_nw: *on_power_nw,
                duty: *duty,
            },
            HarvesterSpec::Schedule { segments } => Harvester::schedule(segments.clone()),
            HarvesterSpec::Trace { powers_nw } => Harvester::trace(powers_nw.clone()),
        }
    }

    /// One-line human description for `ocelotc scenario describe`.
    pub fn describe(&self) -> String {
        match self {
            HarvesterSpec::Constant { power_nw } => format!("constant {power_nw} nW"),
            HarvesterSpec::Rf {
                power_at_1in_nw,
                distance_in,
            } => format!("RF far-field, {power_at_1in_nw} nW @ 1in, {distance_in} in away"),
            HarvesterSpec::Noisy { base_nw, jitter } => {
                format!("noisy, base {base_nw} nW ± {:.0}%", jitter * 100.0)
            }
            HarvesterSpec::DutyCycle { on_power_nw, duty } => {
                format!(
                    "duty-cycled, {on_power_nw} nW on {:.0}% of the time",
                    duty * 100.0
                )
            }
            HarvesterSpec::Schedule { segments } => {
                let parts: Vec<String> = segments
                    .iter()
                    .map(|(from, p)| format!("{p} nW from {} ms", from / 1000))
                    .collect();
                format!("scheduled: {}", parts.join(", "))
            }
            HarvesterSpec::Trace { powers_nw } => {
                format!("trace-scripted, {} samples (cycling)", powers_nw.len())
            }
        }
    }
}

fn rand_seeded(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// A declarative power-supply description, built into a boxed
/// [`PowerSupply`] with the scenario seed.
#[derive(Debug, Clone, PartialEq)]
pub enum SupplySpec {
    /// Continuous bench power (never fails) — a debugging regime.
    Continuous,
    /// A capacitor bank charged by a harvester.
    Harvested {
        /// Bank capacity in nJ.
        capacity_nj: f64,
        /// Comparator trigger reserve in nJ.
        trigger_nj: f64,
        /// The ambient source.
        harvester: HarvesterSpec,
        /// Boot-voltage jitter fraction (`None` disables).
        boot_jitter_frac: Option<f64>,
    },
}

impl SupplySpec {
    /// The evaluation's standard bank: ≈26 µJ usable, ≈2.6 µJ reserve.
    pub fn standard_bank(harvester: HarvesterSpec) -> SupplySpec {
        SupplySpec::Harvested {
            capacity_nj: 26_000.0,
            trigger_nj: 2_600.0,
            harvester,
            boot_jitter_frac: Some(0.4),
        }
    }

    /// Builds the concrete supply for `seed`.
    pub fn build(&self, seed: u64) -> Box<dyn PowerSupply> {
        match self {
            SupplySpec::Continuous => Box::new(ContinuousPower),
            SupplySpec::Harvested {
                capacity_nj,
                trigger_nj,
                harvester,
                boot_jitter_frac,
            } => {
                let mut p = HarvestedPower::new(
                    Capacitor::new(*capacity_nj, *trigger_nj),
                    harvester.build(seed),
                );
                if let Some(frac) = boot_jitter_frac {
                    p = p.with_boot_jitter(seed ^ 0x9E37, *frac);
                }
                Box::new(p)
            }
        }
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        match self {
            SupplySpec::Continuous => "continuous bench power".into(),
            SupplySpec::Harvested {
                capacity_nj,
                trigger_nj,
                harvester,
                boot_jitter_frac,
            } => format!(
                "{:.1} µJ bank ({:.1} µJ reserve), {}{}",
                capacity_nj / 1000.0,
                trigger_nj / 1000.0,
                harvester.describe(),
                if boot_jitter_frac.is_some() {
                    ", boot jitter"
                } else {
                    ""
                }
            ),
        }
    }
}

/// One named scenario: a seeded environment builder plus a declarative
/// supply and a workload suggestion. Cloning and [`Scenario::reseeded`]
/// are cheap; nothing is sampled until [`Scenario::environment`] /
/// [`Scenario::supply`] build the concrete pieces.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry name (also the CLI spelling).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// The app this scenario was designed to stress (any app runs).
    pub suggested_app: &'static str,
    /// Default complete-run count for sweep cells under this scenario.
    pub default_runs: u64,
    /// The scenario seed; all noise and RNG state derives from it.
    pub seed: u64,
    /// Seeded environment builder (a pure function of the seed).
    env: fn(u64) -> Environment,
    /// Declarative supply.
    pub supply: SupplySpec,
}

impl Scenario {
    pub(crate) fn new(
        name: &'static str,
        about: &'static str,
        suggested_app: &'static str,
        env: fn(u64) -> Environment,
        supply: SupplySpec,
    ) -> Self {
        Scenario {
            name,
            about,
            suggested_app,
            default_runs: 3,
            seed: 0,
            env,
            supply,
        }
    }

    /// Builds the sensed environment for the current seed.
    pub fn environment(&self) -> Environment {
        (self.env)(self.seed)
    }

    /// Builds a fresh power supply for the current seed.
    pub fn supply(&self) -> Box<dyn PowerSupply> {
        self.supply.build(self.seed)
    }

    /// A copy with all sampled state re-derived from `seed` — the same
    /// scenario shape, statistically independent per evaluation cell.
    pub fn reseeded(&self, seed: u64) -> Scenario {
        Scenario {
            seed,
            ..self.clone()
        }
    }
}

// A scenario (and the supply it builds) must be movable onto harness
// workers.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Scenario>();
    assert_send::<Box<dyn PowerSupply>>();
};

pub use registry::{all, by_name};

/// Resolves a scenario spec: a registry `name`, or `name@seed` to
/// reseed it (e.g. `rf-noisy@99`).
///
/// Every rejection echoes the full offending spec: an empty seed
/// (`"name@"`), trailing garbage (`"name@7x"`, `"name@7@8"`), and
/// seed literals overflowing `u64` all return `Err` — the seed is
/// parsed exactly, never truncated or clamped.
///
/// # Errors
///
/// A message echoing `spec` and naming the unknown scenario (and the
/// known names) or the malformed seed.
pub fn parse(spec: &str) -> Result<Scenario, String> {
    let (name, seed) = match spec.split_once('@') {
        None => (spec, None),
        Some((n, "")) => {
            return Err(format!(
                "empty seed in scenario spec `{spec}` (use `{n}@N`)"
            ));
        }
        Some((n, s)) => {
            let seed: u64 = s
                .parse()
                .map_err(|e: std::num::ParseIntError| match e.kind() {
                    std::num::IntErrorKind::PosOverflow => {
                        format!("seed `{s}` overflows u64 in scenario spec `{spec}`")
                    }
                    _ => format!("bad seed `{s}` in scenario spec `{spec}`"),
                })?;
            (n, Some(seed))
        }
    };
    let sc = by_name(name).ok_or_else(|| {
        let names: Vec<&str> = all().iter().map(|s| s.name).collect();
        format!(
            "unknown scenario `{name}` in spec `{spec}` (known: {})",
            names.join(", ")
        )
    })?;
    Ok(match seed {
        Some(s) => sc.reseeded(s),
        None => sc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_hw::energy::PowerEvent;

    #[test]
    fn registry_has_at_least_eight_unique_scenarios() {
        let scs = all();
        assert!(scs.len() >= 8, "got {}", scs.len());
        let mut names: Vec<&str> = scs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scs.len(), "names are unique");
        for s in &scs {
            assert!(!s.about.is_empty(), "{} documented", s.name);
            assert!(!s.suggested_app.is_empty(), "{} bound", s.name);
        }
    }

    #[test]
    fn parse_resolves_names_and_seeds() {
        let plain = parse("rf-noisy").unwrap();
        assert_eq!(plain.name, "rf-noisy");
        let seeded = parse("rf-noisy@77").unwrap();
        assert_eq!(seeded.seed, 77);
        assert_eq!(seeded.name, "rf-noisy");
        let err = parse("does-not-exist").unwrap_err();
        assert!(err.contains("rf-noisy"), "lists known names: {err}");
        assert!(parse("rf-noisy@x").is_err());
    }

    #[test]
    fn parse_rejects_edge_case_seeds_echoing_the_spec() {
        // Empty seed.
        let err = parse("rf-noisy@").unwrap_err();
        assert!(err.contains("`rf-noisy@`"), "echoes the spec: {err}");
        assert!(err.contains("empty seed"), "{err}");
        // Trailing garbage after a valid prefix must not truncate.
        for spec in ["rf-noisy@7x", "rf-noisy@7@8", "rf-noisy@ 7", "rf-noisy@-1"] {
            let err = parse(spec).unwrap_err();
            assert!(err.contains(&format!("`{spec}`")), "echoes the spec: {err}");
        }
        // Overflowing literals are rejected, not clamped.
        let big = format!("rf-noisy@{}0", u64::MAX);
        let err = parse(&big).unwrap_err();
        assert!(err.contains("overflows"), "{err}");
        assert!(err.contains(&big), "echoes the spec: {err}");
        // u64::MAX itself is a valid seed.
        assert_eq!(
            parse(&format!("rf-noisy@{}", u64::MAX)).unwrap().seed,
            u64::MAX
        );
        // Unknown name with a seed suffix echoes the whole spec.
        let err = parse("nope@5").unwrap_err();
        assert!(err.contains("`nope@5`"), "echoes the spec: {err}");
    }

    #[test]
    fn every_scenario_builds_env_and_supply() {
        for sc in all() {
            let env = sc.environment();
            assert!(
                !env.channels().is_empty(),
                "{}: environment declares channels",
                sc.name
            );
            let mut supply = sc.supply();
            // The supply is usable: drain until it either fails (then
            // recovers) or proves continuous.
            let mut failed = false;
            for _ in 0..1_000_000 {
                if supply.consume(100.0) == PowerEvent::LowPower {
                    failed = true;
                    break;
                }
            }
            if failed {
                assert!(supply.recharge() >= 1, "{}: recharge time", sc.name);
                assert_eq!(
                    supply.consume(1.0),
                    PowerEvent::Ok,
                    "{}: usable after recharge",
                    sc.name
                );
            }
        }
    }

    #[test]
    fn reseeded_keeps_shape_and_changes_seed_only() {
        let sc = all().into_iter().next().unwrap();
        let r = sc.reseeded(1234);
        assert_eq!(r.name, sc.name);
        assert_eq!(r.supply, sc.supply);
        assert_eq!(r.seed, 1234);
    }

    #[test]
    fn supply_spec_descriptions_are_informative() {
        for sc in all() {
            let d = sc.supply.describe();
            assert!(!d.is_empty(), "{}: {d}", sc.name);
        }
        assert!(SupplySpec::Continuous.describe().contains("continuous"));
        let s = HarvesterSpec::Schedule {
            segments: vec![(0, 3.0), (1000, 1.0)],
        };
        assert!(s.describe().contains("from 1 ms"), "{}", s.describe());
    }
}
