//! The scenario registry: every named scenario, built from a shared
//! multi-channel world plus per-scenario perturbations.
//!
//! Scenarios must cover the channels of *every* app (paper and
//! extension) so the sweep driver can cross any app with any scenario;
//! [`world`] declares the full channel set once and each scenario
//! overrides the channels its regime distorts. All noise is keyed off
//! the scenario seed, so two different seeds always diverge somewhere
//! in the sampled world.

use crate::{HarvesterSpec, Scenario, SupplySpec};
use ocelot_hw::sensors::{Environment, Signal};

/// Noise around `base` keyed by the scenario seed and a per-channel
/// salt, so channels stay independent but replayable.
fn noisy(base: Signal, amplitude: i64, seed: u64, salt: u64) -> Signal {
    Signal::Noisy {
        base: Box::new(base),
        amplitude,
        seed: seed ^ salt,
    }
}

/// The shared baseline world: one gently-varying signal per channel any
/// app reads (weather, greenhouse, motion, light, tire, radio, audio).
/// Scenario builders start here and override what their regime changes.
pub fn world(seed: u64) -> Environment {
    let motion = Signal::Burst {
        base: Box::new(Signal::Constant(8)),
        amplitude: 40,
        every_us: 500_000,
        width_us: 150_000,
        seed: seed ^ 0xACCE,
    };
    Environment::new()
        // Weather channels (weather.oc, Figure 2).
        .with("tmp", noisy(Signal::Constant(4), 2, seed, 0x01))
        .with("pres", noisy(Signal::Constant(85), 3, seed, 0x02))
        .with("hum", noisy(Signal::Constant(30), 4, seed, 0x03))
        // Greenhouse.
        .with(
            "temp",
            noisy(
                Signal::Ramp {
                    start: 18,
                    end: 32,
                    t0_us: 0,
                    t1_us: 3_000_000,
                },
                1,
                seed,
                0x04,
            ),
        )
        // Photoresistor apps.
        .with(
            "photo",
            noisy(
                Signal::Square {
                    lo: 10,
                    hi: 90,
                    period_us: 250_000,
                    duty_pm: 650,
                },
                3,
                seed,
                0x05,
            ),
        )
        .with("rssi", noisy(Signal::Constant(55), 6, seed, 0x06))
        .with(
            "vcap",
            noisy(
                Signal::Clamp {
                    base: Box::new(Signal::Drift {
                        start: 70,
                        rate_per_s: -3,
                    }),
                    lo: 25,
                    hi: 95,
                },
                3,
                seed,
                0x07,
            ),
        )
        // IMU channels: gyro is a correlated image of the accel base.
        .with("accel", noisy(motion.clone(), 4, seed, 0x08))
        .with(
            "gyro",
            noisy(
                Signal::Scaled {
                    base: Box::new(motion),
                    num: 2,
                    den: 3,
                    offset: 5,
                },
                3,
                seed,
                0x09,
            ),
        )
        .with(
            "mag",
            noisy(
                Signal::Drift {
                    start: 30,
                    rate_per_s: 1,
                },
                2,
                seed,
                0x0A,
            ),
        )
        // Microphone.
        .with(
            "mic",
            noisy(
                Signal::Burst {
                    base: Box::new(Signal::Constant(6)),
                    amplitude: 60,
                    every_us: 700_000,
                    width_us: 90_000,
                    seed: seed ^ 0x111C,
                },
                5,
                seed,
                0x0B,
            ),
        )
        // Tire channels.
        .with("tirepres", noisy(Signal::Constant(98), 2, seed, 0x0C))
        .with("tiretemp", noisy(Signal::Constant(25), 1, seed, 0x0D))
        .with(
            "wheelacc",
            noisy(
                Signal::Square {
                    lo: 5,
                    hi: 40,
                    period_us: 120_000,
                    duty_pm: 700,
                },
                5,
                seed,
                0x0E,
            ),
        )
}

fn env_rf_lab(seed: u64) -> Environment {
    world(seed)
}

fn env_office_day(seed: u64) -> Environment {
    world(seed)
        .with(
            "photo",
            noisy(
                Signal::Sum(vec![
                    Signal::Ramp {
                        start: 15,
                        end: 80,
                        t0_us: 0,
                        t1_us: 4_000_000,
                    },
                    Signal::Square {
                        lo: 0,
                        hi: 10,
                        period_us: 600_000,
                        duty_pm: 500,
                    },
                ]),
                2,
                seed,
                0x05,
            ),
        )
        .with(
            "temp",
            noisy(
                Signal::Drift {
                    start: 21,
                    rate_per_s: 1,
                },
                1,
                seed,
                0x04,
            ),
        )
        .with("mic", noisy(Signal::Constant(10), 4, seed, 0x0B))
}

fn env_machine_room(seed: u64) -> Environment {
    let vibration = Signal::Burst {
        base: Box::new(Signal::Constant(15)),
        amplitude: 55,
        every_us: 300_000,
        width_us: 120_000,
        seed: seed ^ 0xF00D,
    };
    world(seed)
        .with("accel", noisy(vibration.clone(), 6, seed, 0x08))
        .with(
            "gyro",
            noisy(
                Signal::Scaled {
                    base: Box::new(vibration.clone()),
                    num: 1,
                    den: 2,
                    offset: 10,
                },
                4,
                seed,
                0x09,
            ),
        )
        .with(
            "mic",
            noisy(
                Signal::Scaled {
                    base: Box::new(vibration),
                    num: 3,
                    den: 2,
                    offset: 0,
                },
                6,
                seed,
                0x0B,
            ),
        )
}

fn env_storm_front(seed: u64) -> Environment {
    let front_us = 1_500_000;
    world(seed)
        .with(
            "tmp",
            noisy(
                Signal::Step {
                    before: 2,
                    after: 10,
                    at_us: front_us,
                },
                1,
                seed,
                0x01,
            ),
        )
        .with(
            "pres",
            noisy(
                Signal::Step {
                    before: 90,
                    after: 40,
                    at_us: front_us,
                },
                2,
                seed,
                0x02,
            ),
        )
        .with(
            "hum",
            noisy(
                Signal::Step {
                    before: 20,
                    after: 80,
                    at_us: front_us,
                },
                3,
                seed,
                0x03,
            ),
        )
        .with(
            "rssi",
            noisy(
                Signal::Step {
                    before: 60,
                    after: 25,
                    at_us: front_us,
                },
                5,
                seed,
                0x06,
            ),
        )
}

fn env_highway(seed: u64) -> Environment {
    let puncture_us = 800_000;
    world(seed)
        .with(
            "tirepres",
            noisy(
                Signal::Ramp {
                    start: 100,
                    end: 18,
                    t0_us: puncture_us,
                    t1_us: puncture_us + 150_000,
                },
                2,
                seed,
                0x0C,
            ),
        )
        .with(
            "tiretemp",
            Signal::Ramp {
                start: 25,
                end: 70,
                t0_us: puncture_us,
                t1_us: puncture_us + 1_000_000,
            },
        )
        .with(
            "accel",
            noisy(
                Signal::Square {
                    lo: 20,
                    hi: 60,
                    period_us: 90_000,
                    duty_pm: 600,
                },
                6,
                seed,
                0x08,
            ),
        )
}

fn env_solar_flicker(seed: u64) -> Environment {
    world(seed).with(
        "photo",
        noisy(
            Signal::Burst {
                base: Box::new(Signal::Constant(85)),
                amplitude: -70,
                every_us: 400_000,
                width_us: 180_000,
                seed: seed ^ 0x501A,
            },
            3,
            seed,
            0x05,
        ),
    )
}

fn env_cold_start(seed: u64) -> Environment {
    world(seed)
        .with("temp", noisy(Signal::Constant(2), 1, seed, 0x04))
        .with("mic", noisy(Signal::Constant(4), 3, seed, 0x0B))
}

/// Every registered scenario, in presentation order.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario::new(
            "rf-lab",
            "the paper's testbed: steady PowerCast RF at 10 inches, calm office world",
            "fusion",
            env_rf_lab,
            SupplySpec::standard_bank(HarvesterSpec::Rf {
                power_at_1in_nw: 100.0,
                distance_in: 10.0,
            }),
        ),
        Scenario::new(
            "rf-noisy",
            "the same RF testbed with ±60% ambient jitter per charge interval",
            "radiolog",
            env_rf_lab,
            SupplySpec::standard_bank(HarvesterSpec::Noisy {
                base_nw: 1.0,
                jitter: 0.6,
            }),
        ),
        Scenario::new(
            "office-day",
            "diurnal light/temperature drift with duty-cycled overhead-light harvesting",
            "mlinfer",
            env_office_day,
            SupplySpec::standard_bank(HarvesterSpec::DutyCycle {
                on_power_nw: 2.0,
                duty: 0.55,
            }),
        ),
        Scenario::new(
            "machine-room",
            "correlated vibration/noise bursts from rotating machinery, duty-cycled harvest",
            "fusion",
            env_machine_room,
            SupplySpec::standard_bank(HarvesterSpec::DutyCycle {
                on_power_nw: 3.0,
                duty: 0.5,
            }),
        ),
        Scenario::new(
            "storm-front",
            "Figure 2's weather front crosses mid-deployment; RF jitters as it passes",
            "greenhouse",
            env_storm_front,
            SupplySpec::standard_bank(HarvesterSpec::Noisy {
                base_nw: 0.8,
                jitter: 0.8,
            }),
        ),
        Scenario::new(
            "highway-blowout",
            "tire puncture burst at speed, strong rotation-driven harvesting",
            "tire",
            env_highway,
            SupplySpec::standard_bank(HarvesterSpec::Constant { power_nw: 4.0 }),
        ),
        Scenario::new(
            "brownout",
            "a supply that degrades over the deployment (piecewise power schedule)",
            "radiolog",
            env_rf_lab,
            SupplySpec::standard_bank(HarvesterSpec::Schedule {
                segments: vec![(0, 3.0), (400_000, 1.0), (1_200_000, 0.3)],
            }),
        ),
        Scenario::new(
            "solar-flicker",
            "cloud shadows: trace-scripted solar power and anticorrelated light level",
            "photo",
            env_solar_flicker,
            SupplySpec::standard_bank(HarvesterSpec::Trace {
                powers_nw: vec![4.0, 3.5, 0.5, 0.2, 3.0, 0.3, 2.5, 1.5],
            }),
        ),
        Scenario::new(
            "cold-start",
            "a barely-viable ambient: long charging gaps stress every freshness window",
            "mlinfer",
            env_cold_start,
            SupplySpec::standard_bank(HarvesterSpec::Constant { power_nw: 0.15 }),
        ),
    ]
}

/// Looks a scenario up by registry name.
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The channel set every scenario must serve: the union of the
    /// sensors declared by every app the sweep can bind.
    const REQUIRED_CHANNELS: &[&str] = &[
        "tmp", "pres", "hum", "temp", "photo", "accel", "gyro", "mag", "mic", "rssi", "vcap",
        "tirepres", "tiretemp", "wheelacc",
    ];

    #[test]
    fn every_scenario_covers_every_app_channel() {
        for sc in all() {
            let env = sc.environment();
            let channels = env.channels();
            for required in REQUIRED_CHANNELS {
                assert!(
                    channels.contains(required),
                    "{}: channel `{required}` missing",
                    sc.name
                );
            }
        }
    }

    #[test]
    fn storm_front_actually_steps() {
        let env = by_name("storm-front").unwrap().environment();
        assert!(env.sample("pres", 0) > env.sample("pres", 3_000_000) + 20);
        assert!(env.sample("hum", 3_000_000) > env.sample("hum", 0) + 20);
    }

    #[test]
    fn machine_room_channels_are_correlated() {
        let env = by_name("machine-room").unwrap().environment();
        let mut together = 0;
        let mut n = 0;
        for t in (0..3_000_000u64).step_by(15_000) {
            n += 1;
            let a = env.sample("accel", t);
            let g = env.sample("gyro", t);
            if (a > 40) == (g > 30) {
                together += 1;
            }
        }
        assert!(together * 4 > n * 3, "correlated bursts: {together}/{n}");
    }

    #[test]
    fn lookup_misses_return_none() {
        assert!(by_name("rf-lab").is_some());
        assert!(by_name("not-a-scenario").is_none());
    }
}
