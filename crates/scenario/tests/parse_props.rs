//! Property tests for the scenario-spec parser: every spec the registry
//! can describe round-trips through `parse`, and every malformed seed
//! suffix is rejected with the offending spec echoed — never a panic,
//! never a silently truncated or clamped seed.

use ocelot_scenario::{all, by_name, parse};
use proptest::prelude::*;

/// A registry scenario name, drawn uniformly.
fn arb_name() -> impl Strategy<Value = &'static str> {
    let n = all().len();
    (0..n).prop_map(|i| all()[i].name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `name@seed` round-trips for every registry name and the full
    /// seed range: the parsed scenario keeps the registry entry's
    /// described shape (about, suggested app, supply description) and
    /// carries exactly the requested seed.
    #[test]
    fn registry_describe_output_round_trips(name in arb_name(), seed in any::<u64>()) {
        let spec = format!("{name}@{seed}");
        let sc = parse(&spec).unwrap_or_else(|e| panic!("`{spec}` must parse: {e}"));
        let registry = by_name(name).expect("registry entry");
        prop_assert_eq!(sc.name, registry.name);
        prop_assert_eq!(sc.seed, seed);
        prop_assert_eq!(sc.about, registry.about);
        prop_assert_eq!(sc.suggested_app, registry.suggested_app);
        // Reseeding must not change the described supply shape.
        prop_assert_eq!(sc.supply.describe(), registry.supply.describe());
    }

    /// Bare names parse to the registry entry unchanged.
    #[test]
    fn bare_names_keep_the_registry_seed(name in arb_name()) {
        let sc = parse(name).unwrap();
        let registry = by_name(name).expect("registry entry");
        prop_assert_eq!(sc.seed, registry.seed);
    }

    /// A valid seed with trailing garbage is rejected (no prefix
    /// truncation), and the error echoes the whole offending spec.
    #[test]
    fn trailing_garbage_is_rejected_with_the_spec_echoed(
        name in arb_name(),
        seed in any::<u64>(),
        junk in prop_oneof![
            Just("x"), Just("@7"), Just(" "), Just("."), Just("-"), Just("_9"),
        ],
    ) {
        let spec = format!("{name}@{seed}{junk}");
        match parse(&spec) {
            Ok(sc) => {
                return Err(TestCaseError::fail(format!(
                    "`{spec}` must not parse (got seed {})", sc.seed
                )));
            }
            Err(e) => prop_assert!(
                e.contains(&format!("`{spec}`")),
                "error must echo the spec `{spec}`: {e}"
            ),
        }
    }

    /// Seed literals past `u64::MAX` are overflow errors, not clamps.
    #[test]
    fn overflowing_seeds_are_rejected(name in arb_name(), extra in 0u64..10) {
        let spec = format!("{name}@{}{extra}", u64::MAX);
        match parse(&spec) {
            Ok(sc) => {
                return Err(TestCaseError::fail(format!(
                    "`{spec}` must overflow (got seed {})", sc.seed
                )));
            }
            Err(e) => {
                prop_assert!(e.contains("overflows"), "{e}");
                prop_assert!(e.contains(&format!("`{spec}`")), "echoes the spec: {e}");
            }
        }
    }

    /// The empty-seed form `name@` is rejected with the spec echoed.
    #[test]
    fn empty_seed_is_rejected(name in arb_name()) {
        let spec = format!("{name}@");
        let e = parse(&spec).expect_err("empty seed must not parse");
        prop_assert!(e.contains(&format!("`{spec}`")), "echoes the spec: {e}");
    }
}
