//! Reseed-determinism properties over the whole scenario registry: the
//! work-stealing harness may rebuild any cell's scenario on any worker
//! at any time, so a scenario must be a pure function of its seed —
//! same seed ⇒ bit-identical sampled world *and* power behavior;
//! different seeds ⇒ the worlds diverge somewhere.

use ocelot_hw::energy::PowerEvent;
use ocelot_scenario::{all, Scenario};
use proptest::prelude::*;

/// Times at which the fingerprint samples every channel — spread over
/// several simulated seconds to cross bursts, ramps, and steps.
const SAMPLE_TIMES: [u64; 12] = [
    0, 1, 9_973, 100_003, 250_001, 499_999, 750_011, 1_000_000, 1_499_989, 2_000_003, 2_718_281,
    3_141_592,
];

/// Everything observable about a scenario at one seed: every channel
/// sampled at fixed times, plus the power-event/recharge sequence of a
/// fixed consumption script.
fn fingerprint(sc: &Scenario) -> (Vec<(String, Vec<i64>)>, Vec<u64>) {
    let env = sc.environment();
    let signals: Vec<(String, Vec<i64>)> = env
        .channels()
        .iter()
        .map(|ch| {
            (
                ch.to_string(),
                SAMPLE_TIMES.iter().map(|&t| env.sample(ch, t)).collect(),
            )
        })
        .collect();
    let mut supply = sc.supply();
    let mut power = Vec::new();
    let mut safety = 0u64;
    // Drain through a handful of charge cycles (bounded: a strong
    // supply may simply never fail within the budget).
    while power.len() < 6 && safety < 200_000 {
        safety += 1;
        if supply.consume(250.0) == PowerEvent::LowPower {
            power.push(supply.recharge());
        }
    }
    (signals, power)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed ⇒ identical sampled signals and power sequences, for
    /// every registered scenario.
    #[test]
    fn same_seed_reproduces_every_scenario(seed in any::<u64>()) {
        for sc in all() {
            let a = fingerprint(&sc.reseeded(seed));
            let b = fingerprint(&sc.reseeded(seed));
            prop_assert_eq!(&a, &b, "{} must be a pure function of its seed", sc.name);
        }
    }

    /// Different seeds ⇒ the observable world diverges somewhere (every
    /// scenario carries seed-keyed noise on at least one channel, so
    /// even scenarios with deterministic supplies must differ).
    #[test]
    fn different_seeds_diverge(seed in any::<u64>()) {
        let other = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for sc in all() {
            let a = fingerprint(&sc.reseeded(seed));
            let b = fingerprint(&sc.reseeded(other));
            prop_assert!(
                a != b,
                "{}: seeds {seed} and {other} produced identical worlds",
                sc.name
            );
        }
    }
}

/// `reseeded` must also wash out any state a used scenario accumulated
/// (a worn supply must not leak into the next cell).
#[test]
fn reseeding_a_used_scenario_matches_a_fresh_one() {
    for sc in all() {
        let worn = sc.reseeded(42);
        {
            // Wear the supply (and build an env, which is stateless).
            let mut supply = worn.supply();
            for _ in 0..5_000 {
                if supply.consume(250.0) == PowerEvent::LowPower {
                    supply.recharge();
                }
            }
            let _ = worn.environment();
        }
        let again = worn.reseeded(42);
        let fresh = sc.reseeded(42);
        assert_eq!(
            fingerprint(&again),
            fingerprint(&fresh),
            "{}: reseeding must fully reset sampled state",
            sc.name
        );
    }
}
