//! Static trip-count recovery for lowered `repeat` loops.
//!
//! The surface language's only loop form is `repeat n { .. }` with a
//! static count; lowering turns it into
//!
//! ```text
//! $rep := 0; head: if $rep < n { body; $rep := $rep + 1; jump head } after
//! ```
//!
//! so the trip count can be read back off the header's branch condition.
//! Hand-built IR with other loop shapes is reported as unbounded — the
//! analysis refuses to guess.

use ocelot_analysis::loops::NaturalLoop;
use ocelot_ir::ast::{BinOp, Expr};
use ocelot_ir::{Function, Terminator};

/// The recovered bound of one natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopBound {
    /// The loop body executes exactly `n` times (and the header check
    /// `n + 1` times).
    Exact(u64),
    /// No bound could be recovered; the reason is diagnostic text.
    Unknown(String),
}

/// Recovers the trip count of `l` from its header branch.
///
/// The pattern matched is what [`ocelot_ir::lower()`] emits for
/// `repeat n` — a header whose terminator is `if $rep.. < K` with the
/// then-edge entering the loop and the else-edge leaving it — plus the
/// equivalent `$rep.. <= K` form (rewritten internally to `< K + 1`,
/// so hand-built counter loops with inclusive bounds are accepted
/// directly).
pub fn loop_bound(f: &Function, l: &NaturalLoop) -> LoopBound {
    let header = f.block(l.header);
    let Terminator::Branch {
        cond,
        then_bb,
        else_bb,
    } = &header.term
    else {
        return LoopBound::Unknown("loop header does not end in a branch".into());
    };
    if !l.contains(*then_bb) || l.contains(*else_bb) {
        return LoopBound::Unknown(
            "loop header branch does not have the then-edge in, else-edge out shape".into(),
        );
    }
    match cond {
        Expr::Binary(BinOp::Lt, lhs, rhs) => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(c), Expr::Int(k)) if c.starts_with("$rep") && *k >= 0 => {
                LoopBound::Exact(*k as u64)
            }
            _ => LoopBound::Unknown(format!(
                "header condition is not a `$rep < const` counter check: {cond:?}"
            )),
        },
        // `x <= k` runs the body `k + 1` times — exactly what the
        // supported `x < k + 1` form would say, so counter-shaped `<=`
        // headers are rewritten internally instead of bounced back to
        // the programmer (the diagnostic used to merely *suggest* that
        // rewrite). Non-counter `<=` shapes keep the diagnostic.
        Expr::Binary(BinOp::Le, lhs, rhs) => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(c), Expr::Int(k)) if c.starts_with("$rep") && *k >= 0 => {
                LoopBound::Exact(*k as u64 + 1)
            }
            _ => LoopBound::Unknown(format!(
                "header condition uses `<=` but is not a `$rep <= const` \
                 counter check (only counter-shaped `<`/`<=` headers are \
                 recognized): {cond:?}"
            )),
        },
        Expr::Binary(op, _, _) => LoopBound::Unknown(format!(
            "header condition is a `{}` comparison, not the `<` counter check \
             lowering emits: {cond:?}",
            op.symbol()
        )),
        _ => LoopBound::Unknown(format!(
            "header condition is not a `<` comparison: {cond:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_analysis::dom::DomTree;
    use ocelot_analysis::loops::LoopForest;
    use ocelot_ir::cfg::Cfg;
    use ocelot_ir::lower::compile;

    fn main_loops(src: &str) -> (ocelot_ir::Program, LoopForest) {
        let p = compile(src).unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        (p, lf)
    }

    #[test]
    fn repeat_bound_is_recovered_exactly() {
        let (p, lf) = main_loops("sensor s; fn main() { repeat 7 { let v = in(s); } }");
        assert_eq!(lf.loops().len(), 1);
        let f = p.func(p.main);
        assert_eq!(loop_bound(f, &lf.loops()[0]), LoopBound::Exact(7));
    }

    #[test]
    fn zero_trip_repeat_is_exact_zero() {
        let (p, lf) = main_loops("fn main() { repeat 0 { skip; } }");
        assert_eq!(lf.loops().len(), 1);
        let f = p.func(p.main);
        assert_eq!(loop_bound(f, &lf.loops()[0]), LoopBound::Exact(0));
    }

    /// Rewrites the header branch of `main`'s lone lowered `repeat` to
    /// use `op` instead of `<`.
    fn with_header_op(src: &str, op: BinOp) -> ocelot_ir::Program {
        let mut p = compile(src).unwrap();
        let main = p.main;
        let f = p.func_mut(main);
        for b in &mut f.blocks {
            if let ocelot_ir::Terminator::Branch {
                cond: Expr::Binary(o, _, _),
                ..
            } = &mut b.term
            {
                *o = op;
            }
        }
        p
    }

    #[test]
    fn le_counter_header_is_accepted_directly() {
        // `$rep <= 2` runs the body 3 times — the analysis rewrites it
        // internally to the `< 3` form instead of asking the programmer
        // to (the diagnostic used to merely suggest the rewrite).
        let p = with_header_op("fn main() { repeat 2 { skip; } }", BinOp::Le);
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        assert_eq!(loop_bound(f, &lf.loops()[0]), LoopBound::Exact(3));
    }

    #[test]
    fn le_header_matches_the_equivalent_lt_form() {
        // `x <= k` and `x < k + 1` must recover the same trip count.
        let le = with_header_op("fn main() { repeat 2 { skip; } }", BinOp::Le);
        let lt = compile("fn main() { repeat 3 { skip; } }").unwrap();
        for (p, what) in [(&le, "<= 2"), (&lt, "< 3")] {
            let f = p.func(p.main);
            let cfg = Cfg::new(f);
            let dom = DomTree::dominators(f, &cfg);
            let lf = LoopForest::new(f, &cfg, &dom);
            assert_eq!(
                loop_bound(f, &lf.loops()[0]),
                LoopBound::Exact(3),
                "`$rep {what}` runs the body 3 times"
            );
        }
    }

    #[test]
    fn non_counter_le_header_keeps_the_diagnostic() {
        // A `<=` header over something that is not the lowered counter
        // (here: a global) is genuinely unbounded and must stay refused,
        // with a message that names the operator it saw.
        let mut p = compile("nv g = 0; fn main() { repeat 2 { g = g + 1; } }").unwrap();
        let main = p.main;
        let f = p.func_mut(main);
        for b in &mut f.blocks {
            if let ocelot_ir::Terminator::Branch { cond, .. } = &mut b.term {
                *cond = Expr::Binary(
                    BinOp::Le,
                    Box::new(Expr::Var("g".into())),
                    Box::new(Expr::Int(10)),
                );
            }
        }
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        let LoopBound::Unknown(why) = loop_bound(f, &lf.loops()[0]) else {
            panic!("a non-counter `<=` header must not be treated as bounded");
        };
        assert!(why.contains("`<=`"), "must name the found operator: {why}");
    }

    #[test]
    fn other_comparison_headers_name_their_operator() {
        for (op, symbol) in [(BinOp::Gt, "`>`"), (BinOp::Ge, "`>=`"), (BinOp::Eq, "`==`")] {
            let p = with_header_op("fn main() { repeat 2 { skip; } }", op);
            let f = p.func(p.main);
            let cfg = Cfg::new(f);
            let dom = DomTree::dominators(f, &cfg);
            let lf = LoopForest::new(f, &cfg, &dom);
            let LoopBound::Unknown(why) = loop_bound(f, &lf.loops()[0]) else {
                panic!("{symbol} header must not be treated as bounded");
            };
            assert!(why.contains(symbol), "expected {symbol} in: {why}");
        }
    }

    #[test]
    fn nested_repeats_each_have_bounds() {
        let (p, lf) =
            main_loops("sensor s; fn main() { repeat 2 { repeat 3 { let v = in(s); } } }");
        assert_eq!(lf.loops().len(), 2);
        let f = p.func(p.main);
        let mut bounds: Vec<u64> = lf
            .loops()
            .iter()
            .map(|l| match loop_bound(f, l) {
                LoopBound::Exact(n) => n,
                LoopBound::Unknown(why) => panic!("expected bound: {why}"),
            })
            .collect();
        bounds.sort_unstable();
        assert_eq!(bounds, vec![2, 3]);
    }
}
