//! Static trip-count recovery for lowered `repeat` loops.
//!
//! The surface language's only loop form is `repeat n { .. }` with a
//! static count; lowering turns it into
//!
//! ```text
//! $rep := 0; head: if $rep < n { body; $rep := $rep + 1; jump head } after
//! ```
//!
//! so the trip count can be read back off the header's branch condition.
//! Hand-built IR with other loop shapes is reported as unbounded — the
//! analysis refuses to guess.

use ocelot_analysis::loops::NaturalLoop;
use ocelot_ir::ast::{BinOp, Expr};
use ocelot_ir::{Function, Terminator};

/// The recovered bound of one natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopBound {
    /// The loop body executes exactly `n` times (and the header check
    /// `n + 1` times).
    Exact(u64),
    /// No bound could be recovered; the reason is diagnostic text.
    Unknown(String),
}

/// Recovers the trip count of `l` from its header branch.
///
/// The pattern matched is exactly what [`ocelot_ir::lower()`] emits for
/// `repeat n`: a header whose terminator is `if $rep.. < K` with the
/// then-edge entering the loop and the else-edge leaving it.
pub fn loop_bound(f: &Function, l: &NaturalLoop) -> LoopBound {
    let header = f.block(l.header);
    let Terminator::Branch {
        cond,
        then_bb,
        else_bb,
    } = &header.term
    else {
        return LoopBound::Unknown("loop header does not end in a branch".into());
    };
    if !l.contains(*then_bb) || l.contains(*else_bb) {
        return LoopBound::Unknown(
            "loop header branch does not have the then-edge in, else-edge out shape".into(),
        );
    }
    match cond {
        Expr::Binary(BinOp::Lt, lhs, rhs) => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(c), Expr::Int(k)) if c.starts_with("$rep") && *k >= 0 => {
                LoopBound::Exact(*k as u64)
            }
            _ => LoopBound::Unknown(format!(
                "header condition is not a `$rep < const` counter check: {cond:?}"
            )),
        },
        // Name the operator actually found: a `<=` header used to be
        // reported as "not a `<` comparison", which mis-stated what the
        // analysis saw and hid the one-token rewrite that fixes it.
        // When the operands already have the counter-check shape, spell
        // the exact replacement condition — applying it is accepted
        // (covered by `le_rewrite_is_accepted` below and the WCET
        // suite).
        Expr::Binary(BinOp::Le, lhs, rhs) => {
            let exact = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Var(c), Expr::Int(k)) if c.starts_with("$rep") && *k >= 0 => {
                    format!(" — here: `{c} < {}`", *k + 1)
                }
                _ => String::new(),
            };
            LoopBound::Unknown(format!(
                "header condition uses `<=`, but only the `<` counter check \
                 lowering emits is recognized (rewrite `x <= k` as `x < k + 1`{exact}): {cond:?}"
            ))
        }
        Expr::Binary(op, _, _) => LoopBound::Unknown(format!(
            "header condition is a `{}` comparison, not the `<` counter check \
             lowering emits: {cond:?}",
            op.symbol()
        )),
        _ => LoopBound::Unknown(format!(
            "header condition is not a `<` comparison: {cond:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_analysis::dom::DomTree;
    use ocelot_analysis::loops::LoopForest;
    use ocelot_ir::cfg::Cfg;
    use ocelot_ir::lower::compile;

    fn main_loops(src: &str) -> (ocelot_ir::Program, LoopForest) {
        let p = compile(src).unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        (p, lf)
    }

    #[test]
    fn repeat_bound_is_recovered_exactly() {
        let (p, lf) = main_loops("sensor s; fn main() { repeat 7 { let v = in(s); } }");
        assert_eq!(lf.loops().len(), 1);
        let f = p.func(p.main);
        assert_eq!(loop_bound(f, &lf.loops()[0]), LoopBound::Exact(7));
    }

    #[test]
    fn zero_trip_repeat_is_exact_zero() {
        let (p, lf) = main_loops("fn main() { repeat 0 { skip; } }");
        assert_eq!(lf.loops().len(), 1);
        let f = p.func(p.main);
        assert_eq!(loop_bound(f, &lf.loops()[0]), LoopBound::Exact(0));
    }

    /// Rewrites the header branch of `main`'s lone lowered `repeat` to
    /// use `op` instead of `<`.
    fn with_header_op(src: &str, op: BinOp) -> ocelot_ir::Program {
        let mut p = compile(src).unwrap();
        let main = p.main;
        let f = p.func_mut(main);
        for b in &mut f.blocks {
            if let ocelot_ir::Terminator::Branch {
                cond: Expr::Binary(o, _, _),
                ..
            } = &mut b.term
            {
                *o = op;
            }
        }
        p
    }

    #[test]
    fn le_header_diagnostic_names_the_operator_it_saw() {
        let p = with_header_op("fn main() { repeat 2 { skip; } }", BinOp::Le);
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        let LoopBound::Unknown(why) = loop_bound(f, &lf.loops()[0]) else {
            panic!("a `<=` header must not be treated as bounded");
        };
        assert!(why.contains("`<=`"), "must name the found operator: {why}");
        assert!(why.contains("x < k + 1"), "must suggest the rewrite: {why}");
        assert!(
            !why.starts_with("header condition is not a `<` comparison"),
            "the old message blamed the wrong operator: {why}"
        );
    }

    /// Applies the rewrite suggested for a `<=` header.
    fn apply_le_rewrite(p: &mut ocelot_ir::Program) {
        let main = p.main;
        let f = p.func_mut(main);
        for b in &mut f.blocks {
            if let ocelot_ir::Terminator::Branch {
                cond: Expr::Binary(o @ BinOp::Le, _, rhs),
                ..
            } = &mut b.term
            {
                let Expr::Int(k) = rhs.as_mut() else {
                    panic!("counter check rhs")
                };
                *o = BinOp::Lt;
                *k += 1;
            }
        }
    }

    #[test]
    fn le_diagnostic_spells_the_exact_replacement() {
        let p = with_header_op("fn main() { repeat 2 { skip; } }", BinOp::Le);
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        let LoopBound::Unknown(why) = loop_bound(f, &lf.loops()[0]) else {
            panic!("a `<=` header must not be treated as bounded");
        };
        // `repeat 2` lowers to `$repN < 2`; `<= 2` therefore suggests
        // the concrete `< 3`.
        assert!(why.contains("< 3`"), "concrete replacement spelled: {why}");
    }

    #[test]
    fn le_rewrite_is_accepted() {
        // The regression the diagnostic promises: take the `<=` header
        // it rejected, apply the suggested rewrite, and the bound is
        // recovered — `x <= k` runs the body `k + 1` times, and so does
        // `x < k + 1`.
        let mut p = with_header_op("fn main() { repeat 2 { skip; } }", BinOp::Le);
        apply_le_rewrite(&mut p);
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        assert_eq!(
            loop_bound(f, &lf.loops()[0]),
            LoopBound::Exact(3),
            "the suggested rewrite must be accepted with the same trip count"
        );
    }

    #[test]
    fn other_comparison_headers_name_their_operator() {
        for (op, symbol) in [(BinOp::Gt, "`>`"), (BinOp::Ge, "`>=`"), (BinOp::Eq, "`==`")] {
            let p = with_header_op("fn main() { repeat 2 { skip; } }", op);
            let f = p.func(p.main);
            let cfg = Cfg::new(f);
            let dom = DomTree::dominators(f, &cfg);
            let lf = LoopForest::new(f, &cfg, &dom);
            let LoopBound::Unknown(why) = loop_bound(f, &lf.loops()[0]) else {
                panic!("{symbol} header must not be treated as bounded");
            };
            assert!(why.contains(symbol), "expected {symbol} in: {why}");
        }
    }

    #[test]
    fn nested_repeats_each_have_bounds() {
        let (p, lf) =
            main_loops("sensor s; fn main() { repeat 2 { repeat 3 { let v = in(s); } } }");
        assert_eq!(lf.loops().len(), 2);
        let f = p.func(p.main);
        let mut bounds: Vec<u64> = lf
            .loops()
            .iter()
            .map(|l| match loop_bound(f, l) {
                LoopBound::Exact(n) => n,
                LoopBound::Unknown(why) => panic!("expected bound: {why}"),
            })
            .collect();
        bounds.sort_unstable();
        assert_eq!(bounds, vec![2, 3]);
    }
}
