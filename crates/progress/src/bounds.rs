//! Static trip-count recovery for lowered loops.
//!
//! Three shapes are recognized, in order:
//!
//! 1. An explicit `while e @bound k { .. }` declaration — lowering
//!    plants an [`AnnotKind::Bound`] marker in the loop's header block,
//!    and the declared count is taken at face value.
//! 2. The counter loop [`ocelot_ir::lower()`] emits for `repeat n`:
//!
//!    ```text
//!    $rep := 0; head: if $rep < n { body; $rep := $rep + 1; jump head } after
//!    ```
//!
//!    whose trip count reads straight off the header's branch condition
//!    (the inclusive `<=` form is rewritten internally to `< K + 1`).
//! 3. General monotone-counter `while` loops: a header comparison
//!    `v < k` / `v <= k` / `v > k` / `v >= k` over a declared local `v`
//!    whose only writes are one constant initializer dominating the
//!    header and one constant-step update executed on every iteration,
//!    stepping toward the exit. The recovered count is the worst-case
//!    trip count implied by those constants.
//!
//! Everything else is reported as unbounded — the analysis refuses to
//! guess, and the diagnostic names the operator it saw.

use ocelot_analysis::dom::DomTree;
use ocelot_analysis::loops::NaturalLoop;
use ocelot_ir::ast::{Arg, BinOp, Expr};
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{AnnotKind, Function, Op, Place, Terminator};

/// The recovered bound of one natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopBound {
    /// The loop body executes at most `n` times (and the header check
    /// at most `n + 1` times).
    Exact(u64),
    /// No bound could be recovered; the reason is diagnostic text.
    Unknown(String),
}

/// Recovers the trip count of `l` from its header (see the module
/// docs for the recognized shapes).
///
/// Bound recovery must run on the *un-erased* program: region
/// transforms strip annotation markers, which would drop `@bound`
/// declarations.
pub fn loop_bound(f: &Function, l: &NaturalLoop) -> LoopBound {
    let header = f.block(l.header);
    // An explicit `@bound k` declaration wins outright.
    for inst in &header.instrs {
        if let Op::Annot {
            kind: AnnotKind::Bound(k),
            ..
        } = inst.op
        {
            return LoopBound::Exact(k);
        }
    }
    let Terminator::Branch {
        cond,
        then_bb,
        else_bb,
    } = &header.term
    else {
        return LoopBound::Unknown("loop header does not end in a branch".into());
    };
    if !l.contains(*then_bb) || l.contains(*else_bb) {
        return LoopBound::Unknown(
            "loop header branch does not have the then-edge in, else-edge out shape".into(),
        );
    }
    match cond {
        Expr::Binary(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), lhs, rhs) => {
            if let (Expr::Var(c), Expr::Int(k)) = (lhs.as_ref(), rhs.as_ref()) {
                // Fast path: the counter lowering emits for `repeat`.
                if c.starts_with("$rep") && *k >= 0 {
                    match op {
                        BinOp::Lt => return LoopBound::Exact(*k as u64),
                        // `x <= k` runs the body `k + 1` times — exactly
                        // what the supported `x < k + 1` form would say,
                        // so counter-shaped `<=` headers are rewritten
                        // internally instead of bounced back to the
                        // programmer.
                        BinOp::Le => return LoopBound::Exact(*k as u64 + 1),
                        _ => {}
                    }
                }
                // General monotone-counter recovery for `while` shapes.
                if let Some(n) = monotone_counter_bound(f, l, *op, c, *k) {
                    return LoopBound::Exact(n);
                }
            }
            match op {
                BinOp::Lt => LoopBound::Unknown(format!(
                    "header condition is not a `$rep < const` counter check \
                     or a recoverable monotone-counter shape: {cond:?}"
                )),
                BinOp::Le => LoopBound::Unknown(format!(
                    "header condition uses `<=` but is not a `$rep <= const` \
                     counter check (only counter-shaped `<`/`<=` headers and \
                     monotone local counters are recognized): {cond:?}"
                )),
                op => LoopBound::Unknown(format!(
                    "header condition is a `{}` comparison, not the `<` counter check \
                     lowering emits, and no monotone local counter was recovered: {cond:?}",
                    op.symbol()
                )),
            }
        }
        Expr::Binary(op, _, _) => LoopBound::Unknown(format!(
            "header condition is a `{}` comparison, not the `<` counter check \
             lowering emits: {cond:?}",
            op.symbol()
        )),
        _ => LoopBound::Unknown(format!(
            "header condition is not a `<` comparison: {cond:?}"
        )),
    }
}

/// Recovers a worst-case trip count for `while (v op k)` when `v` is a
/// provably monotone local counter:
///
/// - `v` is a declared local (not by-ref, never address-taken), so its
///   only writes are the function's own defs;
/// - exactly one def sits outside the loop: a constant initializer in a
///   block dominating the header;
/// - exactly one def sits inside: `v = v ± const` in a block dominating
///   every back edge (the step runs at least once per iteration), with
///   the step direction moving toward the exit.
///
/// A step nested in an inner loop may run more than once per outer
/// iteration; that only makes the loop exit sooner, so the recovered
/// count stays an upper bound.
fn monotone_counter_bound(
    f: &Function,
    l: &NaturalLoop,
    op: BinOp,
    v: &str,
    k: i64,
) -> Option<u64> {
    if !f.declares(v) || f.is_by_ref_param(v) {
        return None;
    }
    // Address-taken locals can be rewritten through the reference.
    for (_, inst) in f.iter_insts() {
        if let Op::Call { args, .. } = &inst.op {
            if args.iter().any(|a| matches!(a, Arg::Ref(x) if x == v)) {
                return None;
            }
        }
    }
    let mut init = Vec::new(); // (block, constant) outside the loop
    let mut step = Vec::new(); // (block, signed step) inside the loop
    for b in &f.blocks {
        for inst in &b.instrs {
            let src = match &inst.op {
                Op::Bind { var, src } if var == v => src,
                Op::Assign {
                    place: Place::Var(x),
                    src,
                } if x == v => src,
                // Opaque defs (inputs, call results) defeat recovery.
                Op::Input { var, .. } if var == v => return None,
                Op::Call { dst: Some(d), .. } if d == v => return None,
                _ => continue,
            };
            if l.contains(b.id) {
                step.push((b.id, step_const(src, v)?));
            } else {
                init.push((b.id, int_const(src)?));
            }
        }
    }
    let (&[(init_bb, c0)], &[(step_bb, s)]) = (&init[..], &step[..]) else {
        return None;
    };
    let cfg = Cfg::new(f);
    let dom = DomTree::dominators(f, &cfg);
    // The initializer must reach the loop entry unconditionally.
    if !dom.dominates(init_bb, l.header) {
        return None;
    }
    // The step must execute on every trip around the loop: its block
    // dominates every back-edge source.
    let latches = l.body.iter().filter(|b| {
        matches!(&f.block(**b).term, Terminator::Jump(t) if *t == l.header)
            || matches!(
                &f.block(**b).term,
                Terminator::Branch { then_bb, else_bb, .. }
                    if *then_bb == l.header || *else_bb == l.header
            )
    });
    for latch in latches {
        if !dom.dominates(step_bb, *latch) {
            return None;
        }
    }
    // The step must move the counter toward the exit.
    let toward_exit = match op {
        BinOp::Lt | BinOp::Le => s > 0,
        BinOp::Gt | BinOp::Ge => s < 0,
        _ => false,
    };
    if !toward_exit {
        return None;
    }
    let (c0, k, s) = (c0 as i128, k as i128, s as i128);
    let trips = match op {
        BinOp::Lt if c0 >= k => 0,
        BinOp::Lt => div_ceil(k - c0, s),
        BinOp::Le if c0 > k => 0,
        BinOp::Le => div_ceil(k - c0 + 1, s),
        BinOp::Gt if c0 <= k => 0,
        BinOp::Gt => div_ceil(c0 - k, -s),
        BinOp::Ge if c0 < k => 0,
        BinOp::Ge => div_ceil(c0 - k + 1, -s),
        _ => return None,
    };
    u64::try_from(trips).ok()
}

/// `ceil(a / b)` for positive `b`.
fn div_ceil(a: i128, b: i128) -> i128 {
    (a + b - 1) / b
}

/// The constant value of `e`, if it is a literal.
fn int_const(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(n) => Some(*n),
        _ => None,
    }
}

/// The signed step of `e` as an update to `v`: `v + c`/`c + v` → `+c`,
/// `v - c` → `-c`.
fn step_const(e: &Expr, v: &str) -> Option<i64> {
    match e {
        Expr::Binary(BinOp::Add, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(x), Expr::Int(c)) if x == v => Some(*c),
            (Expr::Int(c), Expr::Var(x)) if x == v => Some(*c),
            _ => None,
        },
        Expr::Binary(BinOp::Sub, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(x), Expr::Int(c)) if x == v => c.checked_neg(),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_analysis::dom::DomTree;
    use ocelot_analysis::loops::LoopForest;
    use ocelot_ir::cfg::Cfg;
    use ocelot_ir::lower::compile;

    fn main_loops(src: &str) -> (ocelot_ir::Program, LoopForest) {
        let p = compile(src).unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        (p, lf)
    }

    fn sole_bound(src: &str) -> LoopBound {
        let (p, lf) = main_loops(src);
        assert_eq!(lf.loops().len(), 1, "{src}");
        loop_bound(p.func(p.main), &lf.loops()[0])
    }

    #[test]
    fn repeat_bound_is_recovered_exactly() {
        let (p, lf) = main_loops("sensor s; fn main() { repeat 7 { let v = in(s); } }");
        assert_eq!(lf.loops().len(), 1);
        let f = p.func(p.main);
        assert_eq!(loop_bound(f, &lf.loops()[0]), LoopBound::Exact(7));
    }

    #[test]
    fn zero_trip_repeat_is_exact_zero() {
        let (p, lf) = main_loops("fn main() { repeat 0 { skip; } }");
        assert_eq!(lf.loops().len(), 1);
        let f = p.func(p.main);
        assert_eq!(loop_bound(f, &lf.loops()[0]), LoopBound::Exact(0));
    }

    #[test]
    fn declared_bound_is_taken_at_face_value() {
        // The condition is over an NV global — hopeless for recovery —
        // but the programmer declared the count.
        assert_eq!(
            sole_bound("nv g = 9; fn main() { while g > 0 @bound 12 { g = g - 1; } }"),
            LoopBound::Exact(12)
        );
    }

    #[test]
    fn up_counting_while_loops_are_recovered() {
        assert_eq!(
            sole_bound("fn main() { let i = 0; while i < 10 { i = i + 1; } }"),
            LoopBound::Exact(10)
        );
        assert_eq!(
            sole_bound("fn main() { let i = 0; while i <= 10 { i = i + 1; } }"),
            LoopBound::Exact(11)
        );
        // Stride 3 over [2, 11): trips at i = 2, 5, 8 → 3.
        assert_eq!(
            sole_bound("fn main() { let i = 2; while i < 11 { i = i + 3; } }"),
            LoopBound::Exact(3)
        );
    }

    #[test]
    fn down_counting_while_loops_are_recovered() {
        assert_eq!(
            sole_bound("fn main() { let i = 10; while i > 0 { i = i - 1; } }"),
            LoopBound::Exact(10)
        );
        assert_eq!(
            sole_bound("fn main() { let i = 10; while i >= 0 { i = i - 2; } }"),
            LoopBound::Exact(6)
        );
    }

    #[test]
    fn zero_trip_while_is_exact_zero() {
        assert_eq!(
            sole_bound("fn main() { let i = 5; while i < 3 { i = i + 1; } }"),
            LoopBound::Exact(0)
        );
    }

    #[test]
    fn conditional_step_defeats_recovery() {
        // The step hides behind a branch: some iterations make no
        // progress, so the shape must be refused.
        let b =
            sole_bound("nv g = 0; fn main() { let i = 0; while i < 10 { if g { i = i + 1; } } }");
        assert!(matches!(b, LoopBound::Unknown(_)), "{b:?}");
    }

    #[test]
    fn wrong_direction_step_defeats_recovery() {
        let b = sole_bound("fn main() { let i = 0; while i < 10 { i = i - 1; } }");
        assert!(matches!(b, LoopBound::Unknown(_)), "{b:?}");
    }

    #[test]
    fn second_writer_defeats_recovery() {
        let b = sole_bound("fn main() { let i = 0; while i < 10 { i = i + 1; i = i + 1; } }");
        assert!(matches!(b, LoopBound::Unknown(_)), "{b:?}");
    }

    #[test]
    fn opaque_and_address_taken_counters_defeat_recovery() {
        let b = sole_bound("sensor s; fn main() { let i = in(s); while i < 10 { i = i + 1; } }");
        assert!(matches!(b, LoopBound::Unknown(_)), "input-defined: {b:?}");
        let b = sole_bound(
            "fn bump(&x) { *x = 0; return 0; } \
             fn main() { let i = 0; while i < 10 { i = i + 1; let r = bump(&i); } }",
        );
        assert!(matches!(b, LoopBound::Unknown(_)), "address-taken: {b:?}");
    }

    #[test]
    fn nv_global_counters_stay_refused() {
        // The wcet suite's canonical unbounded shape: an NV global makes
        // progress persistence-dependent, which recovery must not trust.
        let b = sole_bound("nv g = 3; fn main() { while g > 0 { g = g - 1; } }");
        let LoopBound::Unknown(why) = b else {
            panic!("NV-counter while must stay refused");
        };
        assert!(why.contains("`>`"), "names the operator: {why}");
    }

    /// Rewrites the header branch of `main`'s lone lowered `repeat` to
    /// use `op` instead of `<`.
    fn with_header_op(src: &str, op: BinOp) -> ocelot_ir::Program {
        let mut p = compile(src).unwrap();
        let main = p.main;
        let f = p.func_mut(main);
        for b in &mut f.blocks {
            if let ocelot_ir::Terminator::Branch {
                cond: Expr::Binary(o, _, _),
                ..
            } = &mut b.term
            {
                *o = op;
            }
        }
        p
    }

    #[test]
    fn le_counter_header_is_accepted_directly() {
        // `$rep <= 2` runs the body 3 times — the analysis rewrites it
        // internally to the `< 3` form instead of asking the programmer
        // to (the diagnostic used to merely suggest the rewrite).
        let p = with_header_op("fn main() { repeat 2 { skip; } }", BinOp::Le);
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        assert_eq!(loop_bound(f, &lf.loops()[0]), LoopBound::Exact(3));
    }

    #[test]
    fn le_header_matches_the_equivalent_lt_form() {
        // `x <= k` and `x < k + 1` must recover the same trip count.
        let le = with_header_op("fn main() { repeat 2 { skip; } }", BinOp::Le);
        let lt = compile("fn main() { repeat 3 { skip; } }").unwrap();
        for (p, what) in [(&le, "<= 2"), (&lt, "< 3")] {
            let f = p.func(p.main);
            let cfg = Cfg::new(f);
            let dom = DomTree::dominators(f, &cfg);
            let lf = LoopForest::new(f, &cfg, &dom);
            assert_eq!(
                loop_bound(f, &lf.loops()[0]),
                LoopBound::Exact(3),
                "`$rep {what}` runs the body 3 times"
            );
        }
    }

    #[test]
    fn non_counter_le_header_keeps_the_diagnostic() {
        // A `<=` header over something that is not the lowered counter
        // (here: a global) is genuinely unbounded and must stay refused,
        // with a message that names the operator it saw.
        let mut p = compile("nv g = 0; fn main() { repeat 2 { g = g + 1; } }").unwrap();
        let main = p.main;
        let f = p.func_mut(main);
        for b in &mut f.blocks {
            if let ocelot_ir::Terminator::Branch { cond, .. } = &mut b.term {
                *cond = Expr::Binary(
                    BinOp::Le,
                    Box::new(Expr::Var("g".into())),
                    Box::new(Expr::Int(10)),
                );
            }
        }
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        let LoopBound::Unknown(why) = loop_bound(f, &lf.loops()[0]) else {
            panic!("a non-counter `<=` header must not be treated as bounded");
        };
        assert!(why.contains("`<=`"), "must name the found operator: {why}");
    }

    #[test]
    fn other_comparison_headers_name_their_operator() {
        for (op, symbol) in [(BinOp::Gt, "`>`"), (BinOp::Ge, "`>=`"), (BinOp::Eq, "`==`")] {
            let p = with_header_op("fn main() { repeat 2 { skip; } }", op);
            let f = p.func(p.main);
            let cfg = Cfg::new(f);
            let dom = DomTree::dominators(f, &cfg);
            let lf = LoopForest::new(f, &cfg, &dom);
            let LoopBound::Unknown(why) = loop_bound(f, &lf.loops()[0]) else {
                panic!("{symbol} header must not be treated as bounded");
            };
            assert!(why.contains(symbol), "expected {symbol} in: {why}");
        }
    }

    #[test]
    fn nested_repeats_each_have_bounds() {
        let (p, lf) =
            main_loops("sensor s; fn main() { repeat 2 { repeat 3 { let v = in(s); } } }");
        assert_eq!(lf.loops().len(), 2);
        let f = p.func(p.main);
        let mut bounds: Vec<u64> = lf
            .loops()
            .iter()
            .map(|l| match loop_bound(f, l) {
                LoopBound::Exact(n) => n,
                LoopBound::Unknown(why) => panic!("expected bound: {why}"),
            })
            .collect();
        bounds.sort_unstable();
        assert_eq!(bounds, vec![2, 3]);
    }
}
