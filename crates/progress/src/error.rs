//! Error type for the progress analysis.

use std::fmt;

/// Why a worst-case energy bound could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressError {
    /// A region-structure error from `ocelot-core`.
    Core(ocelot_core::CoreError),
    /// A loop with no recoverable static trip count lies on the analyzed
    /// path. Surface-language `repeat n` loops are always bounded; this
    /// arises only for hand-built IR.
    UnboundedLoop {
        /// The function containing the loop.
        func: String,
        /// What the bound-recovery pattern saw.
        detail: String,
    },
    /// The control flow is not reducible to bounded-loop + DAG form.
    Irreducible {
        /// The function with irreducible flow.
        func: String,
    },
    /// A CFG shape outside what the analysis supports (e.g. a loop with
    /// multiple latches, or a region straddling a loop boundary).
    Unsupported {
        /// What was encountered.
        detail: String,
    },
}

impl ProgressError {
    /// Convenience constructor for unsupported-shape errors.
    pub fn unsupported(detail: impl Into<String>) -> Self {
        ProgressError::Unsupported {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ProgressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgressError::Core(e) => write!(f, "{e}"),
            ProgressError::UnboundedLoop { func, detail } => {
                write!(f, "unbounded loop in `{func}`: {detail}")
            }
            ProgressError::Irreducible { func } => {
                write!(f, "irreducible control flow in `{func}`")
            }
            ProgressError::Unsupported { detail } => {
                write!(f, "unsupported shape: {detail}")
            }
        }
    }
}

impl std::error::Error for ProgressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProgressError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ocelot_core::CoreError> for ProgressError {
    fn from(e: ocelot_core::CoreError) -> Self {
        ProgressError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = ProgressError::UnboundedLoop {
            func: "main".into(),
            detail: "no counter pattern".into(),
        };
        assert!(e.to_string().contains("unbounded loop in `main`"));
        let e = ProgressError::Irreducible { func: "f".into() };
        assert!(e.to_string().contains("irreducible"));
        let e = ProgressError::unsupported("two latches");
        assert!(e.to_string().contains("two latches"));
    }

    #[test]
    fn core_errors_convert_and_chain() {
        use std::error::Error as _;
        let e = ProgressError::from(ocelot_core::CoreError::region("bad"));
        assert!(e.source().is_some());
    }
}
