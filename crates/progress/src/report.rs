//! Region energy budgets and feasibility verdicts.
//!
//! §5.3: *"any atomic region must be able to complete with the energy
//! that can be stored in the buffer"* — a region whose worst-case attempt
//! exceeds the usable capacity rolls back forever and the program makes
//! no forward progress. This module turns the worst-case cycle bounds of
//! [`crate::wcet`] into per-region energy budgets, checks them against a
//! concrete capacitor, and derives the minimum buffer a program needs —
//! the §10 "reasoning about forward progress" future work, built on
//! Ocelot's minimal regions.
//!
//! The feasibility condition mirrors the runtime exactly:
//!
//! * a failed region attempt restores from the comparator *reserve* and
//!   re-runs the body with a freshly-charged capacitor, so the body must
//!   fit in `capacity − trigger`;
//! * the `startatom` entry (checkpoint + eager `ω` log) is one operation
//!   retried under JIT semantics, so it must independently fit;
//! * the trigger reserve itself must cover the worst-case JIT checkpoint
//!   (§6.3's standing assumption).

use crate::error::ProgressError;
use crate::wcet::WcetAnalysis;
use ocelot_core::RegionInfo;
use ocelot_hw::energy::{Capacitor, CostModel};
use ocelot_ir::{Program, RegionId};
use std::fmt;

/// Worst-case budget of one atomic region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionBudget {
    /// The region.
    pub region: RegionId,
    /// Name of the host function.
    pub func: String,
    /// Cycles to enter: volatile checkpoint + eager undo log of `ω`.
    pub entry_cycles: u64,
    /// Worst-case cycles of one body attempt (through the commit).
    pub body_cycles: u64,
    /// Eager undo-log size in words.
    pub omega_words: usize,
    /// Energy of the binding (largest) phase, in nanojoules.
    pub attempt_nj: f64,
}

impl RegionBudget {
    /// The cycles of the binding phase: entry and body each get a fresh
    /// capacitor, so the larger of the two decides feasibility.
    pub fn binding_cycles(&self) -> u64 {
        self.entry_cycles.max(self.body_cycles)
    }
}

/// One region's verdict against a concrete capacitor.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The region always completes; `headroom_nj` of usable energy
    /// remains in the worst case.
    Feasible {
        /// Usable energy left after the worst-case attempt.
        headroom_nj: f64,
    },
    /// The region can never complete: its worst-case attempt needs
    /// `deficit_nj` more than the usable capacity. The program livelocks
    /// at this region (§5.3: "such a program fundamentally cannot run
    /// correctly").
    Infeasible {
        /// Shortfall of usable energy in the worst case.
        deficit_nj: f64,
    },
}

impl Verdict {
    /// True for [`Verdict::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Verdict::Feasible { .. })
    }
}

/// The whole-program forward-progress report.
#[derive(Debug, Clone)]
pub struct ProgressReport {
    /// Per-region budgets, in region order.
    pub regions: Vec<RegionBudget>,
    /// Worst-case JIT checkpoint anywhere, in cycles (the trigger
    /// reserve must cover this).
    pub worst_jit_checkpoint_cycles: u64,
    /// The cost model used (for energy conversions when checking).
    costs: CostModel,
}

impl ProgressReport {
    /// Analyzes every region of `p`.
    ///
    /// # Errors
    ///
    /// Propagates worst-case-analysis failures (unbounded loops,
    /// irreducible flow, malformed regions).
    pub fn analyze(
        p: &Program,
        regions: &[RegionInfo],
        costs: &CostModel,
    ) -> Result<Self, ProgressError> {
        let mut w = WcetAnalysis::new(p, costs, regions);
        let mut budgets = Vec::with_capacity(regions.len());
        for info in regions {
            let entry_cycles = w.region_entry_cycles(info);
            let body_cycles = w.region_body_wcet(info)?;
            let attempt_nj = costs.cycles_to_nj(entry_cycles.max(body_cycles));
            budgets.push(RegionBudget {
                region: info.id,
                func: p.func(info.func).name.clone(),
                entry_cycles,
                body_cycles,
                omega_words: info.omega_words,
                attempt_nj,
            });
        }
        Ok(ProgressReport {
            regions: budgets,
            worst_jit_checkpoint_cycles: w.worst_jit_checkpoint_cycles(),
            costs: costs.clone(),
        })
    }

    /// Checks every region against `cap`, pairing each budget with its
    /// verdict.
    pub fn check(&self, cap: &Capacitor) -> Vec<(&RegionBudget, Verdict)> {
        let usable = cap.capacity_nj() - cap.trigger_nj();
        self.regions
            .iter()
            .map(|b| {
                let need = self.costs.cycles_to_nj(b.binding_cycles());
                let v = if need <= usable {
                    Verdict::Feasible {
                        headroom_nj: usable - need,
                    }
                } else {
                    Verdict::Infeasible {
                        deficit_nj: need - usable,
                    }
                };
                (b, v)
            })
            .collect()
    }

    /// True when every region completes on `cap` *and* the trigger
    /// reserve covers the worst-case JIT checkpoint.
    pub fn feasible_on(&self, cap: &Capacitor) -> bool {
        self.reserve_covers_checkpoint(cap) && self.check(cap).iter().all(|(_, v)| v.is_feasible())
    }

    /// §6.3's standing assumption, checked: the reserve below the
    /// comparator trigger suffices for the worst-case JIT checkpoint.
    pub fn reserve_covers_checkpoint(&self, cap: &Capacitor) -> bool {
        self.costs.cycles_to_nj(self.worst_jit_checkpoint_cycles) <= cap.trigger_nj()
    }

    /// The largest single-region demand, in nanojoules of usable energy.
    pub fn peak_demand_nj(&self) -> f64 {
        self.regions
            .iter()
            .map(|b| self.costs.cycles_to_nj(b.binding_cycles()))
            .fold(0.0, f64::max)
    }

    /// The smallest capacitor (capacity, trigger) on which the program
    /// makes progress: trigger covers the worst JIT checkpoint, usable
    /// capacity covers the hungriest region, plus `margin` (e.g. `0.1`
    /// for 10 %) of slack.
    pub fn min_capacitor(&self, margin: f64) -> Capacitor {
        let trigger = self.costs.cycles_to_nj(self.worst_jit_checkpoint_cycles) * (1.0 + margin);
        // Even a region-free program needs room for one instruction
        // above the trigger.
        let usable = (self.peak_demand_nj() * (1.0 + margin)).max(self.costs.input as f64);
        Capacitor::new(trigger + usable, trigger)
    }
}

impl fmt::Display for ProgressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:<14} {:>12} {:>12} {:>8} {:>12}",
            "region", "function", "entry(cyc)", "body(cyc)", "ω(words)", "attempt(µJ)"
        )?;
        for b in &self.regions {
            writeln!(
                f,
                "r{:<7} {:<14} {:>12} {:>12} {:>8} {:>12.2}",
                b.region.0,
                b.func,
                b.entry_cycles,
                b.body_cycles,
                b.omega_words,
                b.attempt_nj / 1000.0
            )?;
        }
        writeln!(
            f,
            "worst JIT checkpoint: {} cycles ({:.2} µJ must fit in the trigger reserve)",
            self.worst_jit_checkpoint_cycles,
            self.costs.cycles_to_nj(self.worst_jit_checkpoint_cycles) / 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile;

    fn report(src: &str) -> (Program, ProgressReport) {
        let p = compile(src).unwrap();
        let regions = ocelot_core::collect_regions(&p).unwrap();
        let r = ProgressReport::analyze(&p, &regions, &CostModel::default()).unwrap();
        (p, r)
    }

    const SMALL: &str = r#"
        sensor s;
        nv g = 0;
        fn main() {
            atomic { let v = in(s); g = g + v; }
            out(log, g);
        }
    "#;

    #[test]
    fn small_region_is_feasible_on_capybara() {
        let (_, r) = report(SMALL);
        assert_eq!(r.regions.len(), 1);
        let cap = Capacitor::capybara();
        assert!(r.feasible_on(&cap));
        let checks = r.check(&cap);
        assert!(matches!(checks[0].1, Verdict::Feasible { headroom_nj } if headroom_nj > 0.0));
    }

    #[test]
    fn hungry_region_is_infeasible_on_tiny_buffer() {
        let (_, r) = report(
            r#"
            sensor s;
            fn main() {
                atomic {
                    repeat 20 { let v = in(s); out(log, v); }
                }
            }
            "#,
        );
        // 20 × (input + output) ≫ 10 µJ usable.
        let tiny = Capacitor::new(10_000.0, 4_000.0);
        assert!(!r.feasible_on(&tiny));
        let checks = r.check(&tiny);
        assert!(matches!(checks[0].1, Verdict::Infeasible { deficit_nj } if deficit_nj > 0.0));
        // But a large-enough buffer fixes it.
        let big = r.min_capacitor(0.1);
        assert!(r.feasible_on(&big));
    }

    #[test]
    fn min_capacitor_is_tight() {
        let (_, r) = report(SMALL);
        let min = r.min_capacitor(0.05);
        assert!(r.feasible_on(&min));
        // Shrinking the usable capacity below the peak demand breaks it.
        let too_small = Capacitor::new(
            min.trigger_nj() + r.peak_demand_nj() * 0.5,
            min.trigger_nj(),
        );
        assert!(!r.feasible_on(&too_small));
    }

    #[test]
    fn region_free_program_needs_only_reserve() {
        let (_, r) = report("fn main() { let x = 1; out(log, x); }");
        assert!(r.regions.is_empty());
        assert_eq!(r.peak_demand_nj(), 0.0);
        assert!(r.feasible_on(&Capacitor::capybara()));
        // The suggested minimum still has usable headroom above trigger.
        let min = r.min_capacitor(0.0);
        assert!(min.capacity_nj() > min.trigger_nj());
    }

    #[test]
    fn report_renders_a_table() {
        let (_, r) = report(SMALL);
        let text = r.to_string();
        assert!(text.contains("region"));
        assert!(text.contains("worst JIT checkpoint"));
        assert!(text.contains("r0") || text.contains("r1"));
    }

    #[test]
    fn reserve_check_fails_when_trigger_too_low() {
        let (_, r) = report(SMALL);
        let nj = CostModel::default();
        let worst = nj.cycles_to_nj(r.worst_jit_checkpoint_cycles);
        let low_trigger = Capacitor::new(worst * 10.0, worst * 0.5);
        assert!(!r.reserve_covers_checkpoint(&low_trigger));
        assert!(!r.feasible_on(&low_trigger));
    }
}
