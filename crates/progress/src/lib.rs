//! # ocelot-progress — forward-progress and energy-feasibility analysis
//!
//! The paper's correctness story has a second leg beyond timing: §5.3
//! observes that *"any atomic region must be able to complete with the
//! energy that can be stored in the buffer"*, and §10 names *reasoning
//! about forward progress* as the future work that Ocelot's
//! minimal-region inference enables. This crate is that analysis:
//!
//! 1. [`StackModel`] — a static upper bound on the volatile state a
//!    checkpoint must save, per function and for the whole program;
//! 2. [`WcetAnalysis`] — worst-case active cycles of any single attempt
//!    of a region body (branch maxima, bounded-loop multiplication,
//!    callee inlining), mirroring the runtime's cost accounting;
//! 3. [`ProgressReport`] — per-region energy budgets, feasibility
//!    verdicts against a concrete
//!    [`Capacitor`](ocelot_hw::energy::Capacitor), and the minimum
//!    buffer on which the program makes progress.
//!
//! The report also checks §6.3's standing assumption that the comparator
//! trigger reserve always covers a JIT checkpoint — prior work (Samoyed,
//! TICS) assumes this without checking; here it is a one-line query.
//!
//! ```
//! use ocelot_ir::compile;
//! use ocelot_core::ocelot_transform;
//! use ocelot_hw::energy::{Capacitor, CostModel};
//! use ocelot_progress::ProgressReport;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiled = ocelot_transform(compile(
//!     "sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }",
//! )?)?;
//! let report = ProgressReport::analyze(
//!     &compiled.program,
//!     &compiled.regions,
//!     &CostModel::default(),
//! )?;
//! assert!(report.feasible_on(&Capacitor::capybara()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bounds;
pub mod error;
pub mod feas;
pub mod report;
pub mod stack;
pub mod wcet;

pub use bounds::{loop_bound, LoopBound};
pub use error::ProgressError;
pub use feas::{EdgeSet, FeasAnalysis};
pub use report::{ProgressReport, RegionBudget, Verdict};
pub use stack::StackModel;
pub use wcet::WcetAnalysis;
