//! Best-case (minimum) cycle analysis for feasibility verdicts.
//!
//! [`WcetAnalysis`](crate::wcet::WcetAnalysis) answers "how *slow* can
//! this path be" — the bound region placement and scheduling need. The
//! static linter asks the opposite question: how *fast* can execution
//! possibly get from an input collection to its use? If even the
//! cheapest path exceeds a freshness window, every execution trips the
//! expiry check and the program livelocks in a mitigation storm (the
//! non-termination risk §7 of the paper calls out).
//!
//! Soundness direction is therefore inverted relative to WCET: every
//! per-operation cost here is a **lower bound** on what the runtime
//! charges (no undo-log surcharges, atomic entry priced as the nested
//! case, calls add the callee's *cheapest* body). The runtime converts
//! cycles to microseconds per charge with a rounding-up division, and
//! `Σ ceil(xᵢ) ≥ ceil(Σ xᵢ)`, so
//! `CostModel::cycles_to_us(min_path_cycles)` lower-bounds the
//! microseconds any execution can take along any collect-to-use path.
//!
//! Minimum path costs are shortest paths over the block graph with
//! non-negative node weights (Dijkstra); loops never help a shortest
//! path, so no trip-count reasoning is needed. A `bounded_only` variant
//! removes the back edges of loops the [`crate::bounds`] analysis
//! cannot bound — a use reachable from its collection *only* through
//! such a back edge has an obligation no progress argument can
//! discharge (the linter's unbounded-loop-blocks-obligation pass).

use crate::bounds::{loop_bound, LoopBound};
use crate::error::ProgressError;
use ocelot_analysis::dom::{DomTree, Point};
use ocelot_analysis::loops::LoopForest;
use ocelot_hw::energy::CostModel;
use ocelot_ir::callgraph::CallGraph;
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{BlockId, FuncId, Function, InstrRef, Label, Op, Place, Program, Terminator};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

/// Which CFG edges a minimum-path query may traverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeSet {
    /// Every edge, including back edges of unbounded loops.
    All,
    /// Only edges a bounded-progress argument can cross: back edges of
    /// loops with no recoverable trip count are removed.
    BoundedOnly,
}

/// Minimum-cycle (best-case) analysis over one program.
pub struct FeasAnalysis<'p> {
    p: &'p Program,
    costs: CostModel,
    /// Cheapest complete execution of each function, entry through the
    /// returning terminator, indexed by `FuncId`.
    func_min: Vec<u64>,
    graphs: HashMap<FuncId, FuncGraph>,
}

/// Per-function block graph with minimum block costs.
struct FuncGraph {
    /// Cheapest full execution of each block including its terminator.
    block_cost: BTreeMap<BlockId, u64>,
    succs: BTreeMap<BlockId, Vec<BlockId>>,
    /// Back edges (latch → header) of loops whose trip count the
    /// bounds analysis cannot recover.
    unbounded_back: BTreeSet<(BlockId, BlockId)>,
    /// Blocks ending in `ret`.
    exit_blocks: BTreeSet<BlockId>,
}

impl<'p> FeasAnalysis<'p> {
    /// Builds the analysis for `p`.
    ///
    /// # Errors
    ///
    /// Fails on a cyclic call graph (recursion has no finite best case
    /// either; `ocelot_ir::validate` rejects it upstream).
    pub fn new(p: &'p Program, costs: &CostModel) -> Result<Self, ProgressError> {
        let cg = CallGraph::new(p);
        let order = cg.topo_callees_first(p).map_err(|_| {
            ProgressError::unsupported("minimum-cost analysis requires an acyclic call graph")
        })?;
        let mut this = FeasAnalysis {
            p,
            costs: costs.clone(),
            func_min: vec![0; p.funcs.len()],
            graphs: HashMap::new(),
        };
        // Callees before callers, so call costs resolve to finished minima.
        for func in order {
            let graph = this.build_graph(func);
            let f = p.func(func);
            let entry = Point::new(f.entry, 0);
            let min = this
                .min_to_exit_in(&graph, f, entry, EdgeSet::All)
                .unwrap_or(u64::MAX);
            this.func_min[func.0 as usize] = min;
            this.graphs.insert(func, graph);
        }
        Ok(this)
    }

    /// Cheapest complete execution of `func` (entry through `ret`).
    pub fn func_min(&self, func: FuncId) -> u64 {
        self.func_min[func.0 as usize]
    }

    /// The `(block, index)` position of `label` in its function, as a
    /// [`Point`] (the terminator sits at `index == instrs.len()`).
    pub fn point_of(&self, at: InstrRef) -> Option<Point> {
        let f = self.p.func(at.func);
        f.find_label(at.label).map(|(b, i)| Point::new(b, i))
    }

    /// Minimum cycles from `from` (inclusive) to `to` (exclusive)
    /// within one function, over any path in `edges`. `None` when `to`
    /// is unreachable from `from`.
    pub fn min_between(&self, func: FuncId, from: Point, to: Point, edges: EdgeSet) -> Option<u64> {
        let f = self.p.func(func);
        let g = &self.graphs[&func];
        if from.block == to.block && from.index <= to.index {
            // The straight-line segment is always the cheapest option:
            // any detour re-executes it plus a non-negative cycle.
            return Some(self.range_min(f, from.block, from.index, to.index));
        }
        let suffix = self.range_min(f, from.block, from.index, usize::MAX);
        let prefix = self.range_min(f, to.block, 0, to.index);
        let dist = self.dijkstra_to(g, to.block, edges);
        let mut best: Option<u64> = None;
        for s in self.edge_succs(g, from.block, edges) {
            if let Some(&d) = dist.get(&s) {
                let cand = suffix.saturating_add(d).saturating_add(prefix);
                best = Some(best.map_or(cand, |b: u64| b.min(cand)));
            }
        }
        best
    }

    /// Minimum cycles from `from` (inclusive) through a returning
    /// terminator of `func` (inclusive). `None` when no exit is
    /// reachable under `edges`.
    pub fn min_to_exit(&self, func: FuncId, from: Point, edges: EdgeSet) -> Option<u64> {
        let f = self.p.func(func);
        let g = &self.graphs[&func];
        self.min_to_exit_in(g, f, from, edges)
    }

    /// Minimum cycles from the entry of `func` to `to` (exclusive).
    pub fn min_from_entry(&self, func: FuncId, to: Point, edges: EdgeSet) -> Option<u64> {
        let f = self.p.func(func);
        self.min_between(func, Point::new(f.entry, 0), to, edges)
    }

    // ------------------------------------------------------------------
    // Interprocedural collect-to-use minima
    // ------------------------------------------------------------------

    /// Minimum cycles between executing the input that ends `chain`
    /// (the call sites from `main`, then the input instruction) and
    /// reaching `use_at` under calling context `use_ctx`, without the
    /// run restarting in between. `None` when no same-run continuation
    /// exists under `edges`.
    ///
    /// The input's own cost is excluded (its timestamp is taken while
    /// it executes); the use instruction's cost is likewise excluded
    /// (the expiry check fires on arrival).
    pub fn min_chain_to_use(
        &self,
        chain: &[InstrRef],
        use_ctx: &[InstrRef],
        use_at: InstrRef,
        edges: EdgeSet,
    ) -> Option<u64> {
        if chain.is_empty() {
            return None;
        }
        let calls = &chain[..chain.len() - 1];
        // Longest common call-stack prefix: the divergence frame.
        let d = calls
            .iter()
            .zip(use_ctx.iter())
            .take_while(|(a, b)| a == b)
            .count();
        // Ascend out of every frame below the divergence frame; frame j
        // resumes just after `chain[j]` and must reach its `ret`.
        let mut total = 0u64;
        for site in chain.iter().skip(d + 1).rev() {
            let after = self.after(*site)?;
            total = total.saturating_add(self.min_to_exit(site.func, after, edges)?);
        }
        // Now in `chain[d].func` just after `chain[d]` (which is the
        // input itself when the collect frame is a prefix of the use's).
        let cur = self.after(chain[d])?;
        let rest = self.descend(chain[d].func, cur, &use_ctx[d..], use_at, edges)?;
        Some(total.saturating_add(rest))
    }

    /// Minimum cycles between the input ending `chain` and `use_at`
    /// when a run boundary separates them: finish the collecting run
    /// (ascend to `main`'s return), then reach the use from `main`'s
    /// entry in a later run. Reboot and off time only add to this.
    pub fn min_chain_to_use_cross_run(
        &self,
        chain: &[InstrRef],
        use_ctx: &[InstrRef],
        use_at: InstrRef,
    ) -> Option<u64> {
        if chain.is_empty() {
            return None;
        }
        let mut total = 0u64;
        for site in chain.iter().rev() {
            let after = self.after(*site)?;
            total = total.saturating_add(self.min_to_exit(site.func, after, EdgeSet::All)?);
        }
        let entry = Point::new(self.p.func(self.p.main).entry, 0);
        let rest = self.descend(self.p.main, entry, use_ctx, use_at, EdgeSet::All)?;
        Some(total.saturating_add(rest))
    }

    /// Descend from `cur` in `func` through the call sites of `ctx`
    /// down to just before `use_at`.
    fn descend(
        &self,
        mut func: FuncId,
        mut cur: Point,
        ctx: &[InstrRef],
        use_at: InstrRef,
        edges: EdgeSet,
    ) -> Option<u64> {
        let mut total = 0u64;
        for site in ctx {
            if site.func != func {
                return None; // malformed context for this site
            }
            let before = self.point_of(*site)?;
            total = total
                .saturating_add(self.min_between(func, cur, before, edges)?)
                .saturating_add(self.costs.call);
            let f = self.p.func(func);
            let (b, i) = f.find_label(site.label)?;
            let Op::Call { callee, .. } = &f.block(b).instrs.get(i)?.op else {
                return None;
            };
            func = *callee;
            cur = Point::new(self.p.func(func).entry, 0);
        }
        if use_at.func != func {
            return None;
        }
        let before = self.point_of(use_at)?;
        Some(total.saturating_add(self.min_between(func, cur, before, edges)?))
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The point just after the instruction `at`.
    fn after(&self, at: InstrRef) -> Option<Point> {
        let f = self.p.func(at.func);
        f.find_label(at.label).map(|(b, i)| Point::new(b, i + 1))
    }

    fn min_to_exit_in(
        &self,
        g: &FuncGraph,
        f: &Function,
        from: Point,
        edges: EdgeSet,
    ) -> Option<u64> {
        if g.exit_blocks.contains(&from.block) {
            return Some(self.range_min(f, from.block, from.index, usize::MAX));
        }
        let suffix = self.range_min(f, from.block, from.index, usize::MAX);
        let dist = self.dijkstra_to_exits(g, edges);
        let mut best: Option<u64> = None;
        for s in self.edge_succs(g, from.block, edges) {
            if let Some(&d) = dist.get(&s) {
                let cand = suffix.saturating_add(d);
                best = Some(best.map_or(cand, |b: u64| b.min(cand)));
            }
        }
        best
    }

    /// Successors of `b` admissible under `edges`.
    fn edge_succs(&self, g: &FuncGraph, b: BlockId, edges: EdgeSet) -> Vec<BlockId> {
        g.succs
            .get(&b)
            .map(|ss| {
                ss.iter()
                    .copied()
                    .filter(|s| edges == EdgeSet::All || !g.unbounded_back.contains(&(b, *s)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// `dist[b]` = cheapest execution from the start of `b` to the
    /// start of `target` (full cost of every block strictly before it).
    fn dijkstra_to(
        &self,
        g: &FuncGraph,
        target: BlockId,
        edges: EdgeSet,
    ) -> BTreeMap<BlockId, u64> {
        self.dijkstra(g, edges, |b| (b == target).then_some(0))
    }

    /// `dist[b]` = cheapest execution from the start of `b` through the
    /// nearest returning terminator (inclusive).
    fn dijkstra_to_exits(&self, g: &FuncGraph, edges: EdgeSet) -> BTreeMap<BlockId, u64> {
        self.dijkstra(g, edges, |b| {
            g.exit_blocks.contains(&b).then(|| g.block_cost[&b])
        })
    }

    /// Generic single-target Dijkstra on the reversed block graph with
    /// node weights. `seed(b)` gives a block's distance when it is a
    /// target (its own cost if execution must pass through it).
    fn dijkstra(
        &self,
        g: &FuncGraph,
        edges: EdgeSet,
        seed: impl Fn(BlockId) -> Option<u64>,
    ) -> BTreeMap<BlockId, u64> {
        let mut dist: BTreeMap<BlockId, u64> = BTreeMap::new();
        let mut heap: BinaryHeap<(Reverse<u64>, BlockId)> = BinaryHeap::new();
        for &b in g.block_cost.keys() {
            if let Some(d0) = seed(b) {
                dist.insert(b, d0);
                heap.push((Reverse(d0), b));
            }
        }
        // Reverse edges: preds of settled nodes improve.
        let mut rev: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        for (&u, vs) in &g.succs {
            for &v in vs {
                if edges == EdgeSet::BoundedOnly && g.unbounded_back.contains(&(u, v)) {
                    continue;
                }
                rev.entry(v).or_default().push(u);
            }
        }
        while let Some((Reverse(d), b)) = heap.pop() {
            if dist.get(&b) != Some(&d) {
                continue;
            }
            if let Some(ps) = rev.get(&b) {
                for &p in ps {
                    let nd = d.saturating_add(g.block_cost[&p]);
                    if dist.get(&p).map_or(true, |&old| nd < old) {
                        dist.insert(p, nd);
                        heap.push((Reverse(nd), p));
                    }
                }
            }
        }
        dist
    }

    /// Minimum cost of points `[lo, hi)` of one block; `instrs.len()`
    /// is the terminator, and `hi` saturates past it.
    fn range_min(&self, f: &Function, b: BlockId, lo: usize, hi: usize) -> u64 {
        let blk = f.block(b);
        let mut total = 0u64;
        for i in lo..hi.min(blk.instrs.len() + 1) {
            let c = if i < blk.instrs.len() {
                self.min_op_cost(f, &blk.instrs[i].op)
            } else {
                min_term_cost(&self.costs, &blk.term)
            };
            total = total.saturating_add(c);
        }
        total
    }

    /// Lower bound on the runtime's charge for one operation: no
    /// undo-log surcharges, region entry priced as the nested (ALU)
    /// case, calls add the callee's cheapest body.
    fn min_op_cost(&self, f: &Function, op: &Op) -> u64 {
        match op {
            Op::Skip | Op::Annot { .. } => 1,
            Op::Bind { .. } => self.costs.alu,
            Op::Assign { place, .. } => match place {
                Place::Var(x) if is_local_slot(f, x) => self.costs.alu,
                Place::Var(_) | Place::Index(..) | Place::Deref(_) => self.costs.nv_write,
            },
            Op::Input { sensor, .. } => self.costs.input_cycles(sensor),
            Op::Call { callee, .. } => self
                .costs
                .call
                .saturating_add(self.func_min[callee.0 as usize]),
            Op::Output { args, .. } => self.costs.output_word * (1 + args.len() as u64),
            Op::AtomStart { .. } | Op::AtomEnd { .. } => self.costs.alu,
        }
    }

    fn build_graph(&self, func: FuncId) -> FuncGraph {
        let f = self.p.func(func);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let loops = LoopForest::new(f, &cfg, &dom);
        let mut unbounded_back = BTreeSet::new();
        for l in loops.loops() {
            if matches!(loop_bound(f, l), LoopBound::Unknown(_)) {
                for &latch in cfg.preds(l.header) {
                    if l.contains(latch) {
                        unbounded_back.insert((latch, l.header));
                    }
                }
            }
        }
        let mut block_cost = BTreeMap::new();
        let mut succs = BTreeMap::new();
        let mut exit_blocks = BTreeSet::new();
        for b in &f.blocks {
            block_cost.insert(b.id, self.range_min(f, b.id, 0, usize::MAX));
            succs.insert(b.id, cfg.succs(b.id).to_vec());
            if matches!(b.term, Terminator::Ret(_)) {
                exit_blocks.insert(b.id);
            }
        }
        FuncGraph {
            block_cost,
            succs,
            unbounded_back,
            exit_blocks,
        }
    }
}

/// Minimum cost of a terminator (the runtime's charge is deterministic
/// per terminator kind, so this equals the WCET figure).
fn min_term_cost(costs: &CostModel, t: &Terminator) -> u64 {
    match t {
        Terminator::Jump(_) => costs.alu / 2 + 1,
        Terminator::Branch { .. } => costs.alu,
        Terminator::Ret(_) => costs.call / 2,
    }
}

/// True when writes to `x` inside `f` stay volatile this frame (a local
/// or any parameter — for by-ref parameters the runtime charges an ALU
/// write and possibly an undo-log entry; the log is an upper-bound
/// extra, so the lower bound is the ALU cost alone).
fn is_local_slot(f: &Function, x: &str) -> bool {
    f.locals.iter().any(|l| l == x) || f.params.iter().any(|p| p.name == x)
}

/// Convenience: the [`Point`] of `label` inside `f`, if present.
pub fn point_in(f: &Function, label: Label) -> Option<Point> {
    f.find_label(label).map(|(b, i)| Point::new(b, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile;

    fn analysis(p: &Program) -> FeasAnalysis<'_> {
        FeasAnalysis::new(p, &CostModel::default()).unwrap()
    }

    fn input_ref(p: &Program) -> InstrRef {
        for f in &p.funcs {
            for (_, inst) in f.iter_insts() {
                if inst.op.is_input() {
                    return InstrRef {
                        func: f.id,
                        label: inst.label,
                    };
                }
            }
        }
        panic!("no input in program");
    }

    fn output_ref(p: &Program) -> InstrRef {
        for f in &p.funcs {
            for (_, inst) in f.iter_insts() {
                if matches!(inst.op, Op::Output { .. }) {
                    return InstrRef {
                        func: f.id,
                        label: inst.label,
                    };
                }
            }
        }
        panic!("no output in program");
    }

    #[test]
    fn straight_line_min_matches_sum() {
        let p = compile("sensor s; fn main() { let v = in(s); out(log, v); }").unwrap();
        let a = analysis(&p);
        let costs = CostModel::default();
        let collect = input_ref(&p);
        let use_ = output_ref(&p);
        let min = a
            .min_chain_to_use(&[collect], &[], use_, EdgeSet::All)
            .unwrap();
        // Between input and output: only the input's bind consumes
        // cycles (plus nothing else) — strictly less than an input.
        assert!(min < costs.input, "cheap gap: {min}");
    }

    #[test]
    fn min_is_below_wcet() {
        let p = compile(
            r#"
            sensor s;
            fn main() {
                let v = in(s);
                if v > 0 { out(log, v); out(log, v); } else { skip; }
                out(log, v);
            }
            "#,
        )
        .unwrap();
        let a = analysis(&p);
        let regions = ocelot_core::collect_regions(&p).unwrap();
        let mut w = crate::wcet::WcetAnalysis::new(&p, &CostModel::default(), &regions);
        let min = a.func_min(p.main);
        let max = w.func_wcet(p.main).unwrap();
        assert!(
            min < max,
            "cheap arm beats the expensive arm: {min} < {max}"
        );
    }

    #[test]
    fn min_takes_the_cheap_branch_arm() {
        let p = compile(
            r#"
            sensor s;
            fn main() {
                let v = in(s);
                if v > 0 { skip; } else { out(log, v); out(log, v); }
                out(log, v);
            }
            "#,
        )
        .unwrap();
        let a = analysis(&p);
        let costs = CostModel::default();
        let min = a
            .min_chain_to_use(&[input_ref(&p)], &[], output_ref(&p), EdgeSet::All)
            .unwrap();
        // The skip arm costs ~nothing; the expensive arm's two outputs
        // must not appear in the minimum.
        assert!(min < costs.output_word, "skip arm chosen: {min}");
    }

    #[test]
    fn interprocedural_chain_ascends_and_descends() {
        let p = compile(
            r#"
            sensor s;
            fn grab() { let v = in(s); return v; }
            fn show(x) { out(log, x); }
            fn main() { let a = grab(); show(a); }
            "#,
        )
        .unwrap();
        let a = analysis(&p);
        let chains = ocelot_analysis::chains::static_input_chains(&p);
        let chain = chains.values().next().unwrap().clone();
        let use_ = output_ref(&p);
        let show = p.func_by_name("show").unwrap();
        let uctx: Vec<InstrRef> = {
            // show's unique context: the one call site in main.
            ocelot_analysis::chains::unique_contexts(&p)[show.0 as usize]
                .clone()
                .unwrap()
        };
        let min = a
            .min_chain_to_use(&chain, &uctx, use_, EdgeSet::All)
            .unwrap();
        let costs = CostModel::default();
        // Must include at least grab's return and the call into show.
        assert!(min >= costs.call / 2 + costs.call, "ret + call: {min}");
    }

    #[test]
    fn unbounded_back_edge_blocks_bounded_paths() {
        let p = compile(
            r#"
            sensor s;
            nv n = 0;
            fn main() {
                let v = in(s);
                while n < 10 {
                    n = n + 1;
                }
                out(log, v);
            }
            "#,
        )
        .unwrap();
        let a = analysis(&p);
        let collect = input_ref(&p);
        let use_ = output_ref(&p);
        // Forward path exists without taking the (unbounded) back edge.
        assert!(a
            .min_chain_to_use(&[collect], &[], use_, EdgeSet::All)
            .is_some());
        assert!(
            a.min_chain_to_use(&[collect], &[], use_, EdgeSet::BoundedOnly)
                .is_some(),
            "first-iteration path skips the back edge"
        );
    }

    #[test]
    fn use_behind_unbounded_back_edge_is_blocked() {
        // The use sits before the collect in the loop body: reaching it
        // after collecting requires a second iteration, i.e. the back
        // edge of a loop no bound annotation covers.
        let p = compile(
            r#"
            sensor s;
            nv n = 0;
            fn main() {
                while n < 10 {
                    out(log, n);
                    let v = in(s);
                    n = n + v;
                }
            }
            "#,
        )
        .unwrap();
        let a = analysis(&p);
        let collect = input_ref(&p);
        let use_ = output_ref(&p);
        assert!(
            a.min_chain_to_use(&[collect], &[], use_, EdgeSet::All)
                .is_some(),
            "loop-around path exists in the full graph"
        );
        assert!(
            a.min_chain_to_use(&[collect], &[], use_, EdgeSet::BoundedOnly)
                .is_none(),
            "every collect-to-use path crosses the unbounded back edge"
        );
    }

    #[test]
    fn cross_run_includes_exit_and_reentry() {
        let p = compile("sensor s; fn main() { let v = in(s); out(log, v); }").unwrap();
        let a = analysis(&p);
        let cross = a
            .min_chain_to_use_cross_run(&[input_ref(&p)], &[], output_ref(&p))
            .unwrap();
        let same = a
            .min_chain_to_use(&[input_ref(&p)], &[], output_ref(&p), EdgeSet::All)
            .unwrap();
        // Cross-run replays the input on the way back to the use, so it
        // costs at least a full input more than the straight path.
        assert!(cross > same, "{cross} > {same}");
    }
}
