//! Worst-case active-cycle analysis.
//!
//! Computes a static upper bound on the cycles any single execution
//! attempt can spend between two program points, using the same
//! per-operation cost model the runtime charges. Branches take the more
//! expensive arm, bounded loops multiply their worst iteration by the
//! recovered trip count, and calls add the callee's whole-body bound.
//!
//! The bound is *sound with respect to the runtime*: for every
//! continuous-power execution, the cycles the `ocelot-runtime` machine
//! charges along the analyzed path are at most the value computed here
//! (an integration property test checks exactly this). Conservatism
//! comes from three places: both branch arms are maximized, every
//! non-volatile write inside an atomic region is assumed to pay an
//! undo-log entry (the runtime logs each location once), and checkpoint
//! sizes use the worst-case stack model of [`crate::stack`].

use crate::bounds::{loop_bound, LoopBound};
use crate::error::ProgressError;
use crate::stack::StackModel;
use ocelot_analysis::dom::{DomTree, Point};
use ocelot_analysis::loops::{LoopForest, NaturalLoop};
use ocelot_core::{covered_refs, RegionInfo};
use ocelot_hw::energy::CostModel;
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{BlockId, FuncId, Function, InstrRef, Op, Place, Program, RegionId, Terminator};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Worst-case cycle analysis over one program.
pub struct WcetAnalysis<'p> {
    p: &'p Program,
    costs: CostModel,
    stack: StackModel,
    /// Instructions that execute inside some atomic region (including
    /// transitively-called function bodies): NV writes there pay an
    /// undo-log entry.
    covered: BTreeSet<InstrRef>,
    /// Eager undo-log size per region.
    omega: BTreeMap<RegionId, usize>,
    memo: HashMap<FuncId, u64>,
    in_progress: BTreeSet<FuncId>,
}

/// Per-function derived structures, built once per query.
struct FuncCtx<'f> {
    f: &'f Function,
    cfg: Cfg,
    loops: LoopForest,
}

impl<'f> FuncCtx<'f> {
    fn new(f: &'f Function) -> Self {
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let loops = LoopForest::new(f, &cfg, &dom);
        FuncCtx { f, cfg, loops }
    }
}

impl<'p> WcetAnalysis<'p> {
    /// Builds the analysis for `p` with its atomic regions.
    pub fn new(p: &'p Program, costs: &CostModel, regions: &[RegionInfo]) -> Self {
        let mut covered = BTreeSet::new();
        let mut omega = BTreeMap::new();
        for r in regions {
            covered.extend(covered_refs(p, r));
            omega.insert(r.id, r.omega_words);
        }
        WcetAnalysis {
            p,
            costs: costs.clone(),
            stack: StackModel::new(p),
            covered,
            omega,
            memo: HashMap::new(),
            in_progress: BTreeSet::new(),
        }
    }

    /// The stack model used for checkpoint sizing.
    pub fn stack(&self) -> &StackModel {
        &self.stack
    }

    /// The analyzed program.
    pub fn program(&self) -> &'p Program {
        self.p
    }

    /// Worst-case cycles for one complete execution of `func` (entry
    /// through the returning terminator), including all callees.
    ///
    /// # Errors
    ///
    /// Fails on unbounded loops, irreducible flow, or (defensively)
    /// recursion.
    pub fn func_wcet(&mut self, func: FuncId) -> Result<u64, ProgressError> {
        if let Some(&c) = self.memo.get(&func) {
            return Ok(c);
        }
        if !self.in_progress.insert(func) {
            return Err(ProgressError::unsupported(format!(
                "recursive call cycle through `{}`",
                self.p.func(func).name
            )));
        }
        let f = self.p.func(func);
        let ctx = FuncCtx::new(f);
        let from = Point::new(f.entry, 0);
        let to = Point::new(f.exit, f.block(f.exit).instrs.len() + 1);
        let result = self.path_cost(&ctx, from, to);
        self.in_progress.remove(&func);
        if let Ok(c) = result {
            self.memo.insert(func, c);
        }
        result
    }

    /// Worst-case cycles of one attempt of a region's *body*: from just
    /// after the `startatom` marker through the `endatom` commit.
    ///
    /// # Errors
    ///
    /// Fails on unbounded loops, irreducible flow, or a region whose
    /// start and end lie in different loop nests.
    pub fn region_body_wcet(&mut self, info: &RegionInfo) -> Result<u64, ProgressError> {
        let f = self.p.func(info.func);
        let (sb, si) = f
            .find_label(info.start.label)
            .ok_or_else(|| ProgressError::unsupported("region start label not found"))?;
        let (eb, ei) = f
            .find_label(info.end.label)
            .ok_or_else(|| ProgressError::unsupported("region end label not found"))?;
        let ctx = FuncCtx::new(f);
        // From after the start marker, through the end marker inclusive
        // (the commit itself costs one ALU op).
        self.path_cost(&ctx, Point::new(sb, si + 1), Point::new(eb, ei + 1))
    }

    /// Worst-case cycles along any single-attempt path from `from`
    /// (inclusive) to `to` (exclusive) within `func`; `to.index` may be
    /// `instrs.len() + 1` to include the terminator. The public face of
    /// the internal path query, for callers (the linter) that need
    /// upper bounds on segments other than whole regions.
    ///
    /// # Errors
    ///
    /// Fails on unbounded loops, irreducible flow, or endpoints in
    /// different loop nests (no single-attempt forward path).
    pub fn between(&mut self, func: FuncId, from: Point, to: Point) -> Result<u64, ProgressError> {
        let f = self.p.func(func);
        let ctx = FuncCtx::new(f);
        self.path_cost(&ctx, from, to)
    }

    /// The exit point of `func`: past the terminator of its landing-pad
    /// block, suitable as the `to` of [`Self::between`].
    pub fn exit_point(&self, func: FuncId) -> Point {
        let f = self.p.func(func);
        Point::new(f.exit, f.block(f.exit).instrs.len() + 1)
    }

    /// Cycles to enter a region: checkpoint the worst-case volatile
    /// state of the host function plus the eager undo log of `ω`.
    pub fn region_entry_cycles(&self, info: &RegionInfo) -> u64 {
        let words = self.stack.entry_words(info.func);
        self.costs.checkpoint_cycles(words) + self.costs.log_cycles(info.omega_words)
    }

    /// Cycles of the worst-case JIT checkpoint anywhere in the program —
    /// what the comparator trigger reserve must cover (§6.3's standing
    /// assumption, made checkable).
    pub fn worst_jit_checkpoint_cycles(&self) -> u64 {
        self.costs
            .checkpoint_cycles(self.stack.program_peak_words(self.p))
    }

    // ------------------------------------------------------------------
    // Path cost
    // ------------------------------------------------------------------

    /// Worst-case cycles along any execution path from `from` (inclusive)
    /// to `to` (exclusive). `to.index` may be `instrs.len() + 1` to
    /// include the terminator of `to.block`.
    fn path_cost(
        &mut self,
        ctx: &FuncCtx<'_>,
        from: Point,
        to: Point,
    ) -> Result<u64, ProgressError> {
        let from_ctx = loop_context(&ctx.loops, from.block);
        let to_ctx = loop_context(&ctx.loops, to.block);
        if from.block == to.block {
            if from.index > to.index {
                return Err(ProgressError::unsupported(
                    "path end precedes its start within one block",
                ));
            }
            return self.range_cost(ctx.f, from.block, from.index, to.index);
        }
        if from_ctx != to_ctx {
            return Err(ProgressError::unsupported(format!(
                "path endpoints lie in different loop nests in `{}` \
                 (a region must not straddle a loop boundary)",
                ctx.f.name
            )));
        }

        let blen = ctx.f.block(from.block).instrs.len();
        let suffix = self.range_cost(ctx.f, from.block, from.index, blen + 1)?;
        let prefix = self.range_cost(ctx.f, to.block, 0, to.index)?;
        let middle = self.dag_longest_path(ctx, &from_ctx, from.block, to.block)?;
        Ok(suffix.saturating_add(middle).saturating_add(prefix))
    }

    /// Longest path through the loop-condensed DAG from `from` to `to`,
    /// summing the full cost of every *intermediate* node.
    fn dag_longest_path(
        &mut self,
        ctx: &FuncCtx<'_>,
        context_headers: &BTreeSet<BlockId>,
        from: BlockId,
        to: BlockId,
    ) -> Result<u64, ProgressError> {
        // Node representative: the header of the outermost condensable
        // loop containing the block, or the block itself.
        let node_of = |b: BlockId| -> BlockId {
            ctx.loops
                .loops_containing(b)
                .into_iter()
                .find(|l| !context_headers.contains(&l.header))
                .map(|l| l.header)
                .unwrap_or(b)
        };
        let n_from = node_of(from);
        let n_to = node_of(to);
        debug_assert_eq!(
            n_from, from,
            "path start cannot sit inside a condensed loop"
        );
        debug_assert_eq!(n_to, to, "path end cannot sit inside a condensed loop");

        // Edges between condensed nodes, dropping intra-node edges and
        // back edges into context loops (a path between two points of
        // the same iteration never takes the back edge).
        let mut succs: BTreeMap<BlockId, BTreeSet<BlockId>> = BTreeMap::new();
        for b in ctx.f.blocks.iter().map(|b| b.id) {
            let u = node_of(b);
            for &s in ctx.cfg.succs(b) {
                let v = node_of(s);
                if u == v {
                    continue;
                }
                let is_context_back_edge = context_headers.contains(&s)
                    && ctx.loops.loops_containing(b).iter().any(|l| l.header == s);
                if is_context_back_edge {
                    continue;
                }
                succs.entry(u).or_default().insert(v);
            }
        }

        // Restrict to nodes reachable from the start.
        let mut reach: BTreeSet<BlockId> = BTreeSet::new();
        let mut queue = VecDeque::from([n_from]);
        while let Some(u) = queue.pop_front() {
            if !reach.insert(u) {
                continue;
            }
            if let Some(vs) = succs.get(&u) {
                queue.extend(vs.iter().copied());
            }
        }
        if !reach.contains(&n_to) {
            return Err(ProgressError::unsupported(format!(
                "no forward path between the analyzed points in `{}`",
                ctx.f.name
            )));
        }

        // Kahn topological order over the reachable subgraph.
        let mut indeg: BTreeMap<BlockId, usize> = reach.iter().map(|&b| (b, 0)).collect();
        for (&u, vs) in &succs {
            if !reach.contains(&u) {
                continue;
            }
            for v in vs {
                if reach.contains(v) {
                    *indeg.get_mut(v).expect("reachable node") += 1;
                }
            }
        }
        let mut ready: VecDeque<BlockId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&b, _)| b)
            .collect();
        let mut topo = Vec::with_capacity(reach.len());
        while let Some(u) = ready.pop_front() {
            topo.push(u);
            if let Some(vs) = succs.get(&u) {
                for v in vs {
                    if let Some(d) = indeg.get_mut(v) {
                        *d -= 1;
                        if *d == 0 {
                            ready.push_back(*v);
                        }
                    }
                }
            }
        }
        if topo.len() != reach.len() {
            return Err(ProgressError::Irreducible {
                func: ctx.f.name.clone(),
            });
        }

        // Longest-path DP accumulating intermediate-node costs.
        let mut dist: BTreeMap<BlockId, u64> = BTreeMap::new();
        dist.insert(n_from, 0);
        for &u in &topo {
            let Some(&du) = dist.get(&u) else { continue };
            let u_cost = if u == n_from {
                0
            } else {
                self.node_cost(ctx, context_headers, u)?
            };
            if let Some(vs) = succs.get(&u) {
                for &v in vs {
                    let cand = du.saturating_add(u_cost);
                    let e = dist.entry(v).or_insert(0);
                    *e = (*e).max(cand);
                }
            }
        }
        dist.get(&n_to).copied().ok_or_else(|| {
            ProgressError::unsupported(format!(
                "no forward path between the analyzed points in `{}`",
                ctx.f.name
            ))
        })
    }

    /// Cost of one condensed node: a plain block's full cost, or a
    /// condensed loop's bounded total.
    fn node_cost(
        &mut self,
        ctx: &FuncCtx<'_>,
        context_headers: &BTreeSet<BlockId>,
        node: BlockId,
    ) -> Result<u64, ProgressError> {
        let condensed: Option<&NaturalLoop> = ctx
            .loops
            .loops_containing(node)
            .into_iter()
            .find(|l| !context_headers.contains(&l.header));
        match condensed {
            Some(l) if l.header == node => self.loop_cost(ctx, l),
            // A non-header block inside a condensed loop never becomes a
            // node, so `node` is plain.
            _ => {
                let blen = ctx.f.block(node).instrs.len();
                self.range_cost(ctx.f, node, 0, blen + 1)
            }
        }
    }

    /// Total worst-case cost of a bounded loop: `k + 1` header checks
    /// plus `k` worst iterations (body through latch).
    fn loop_cost(&mut self, ctx: &FuncCtx<'_>, l: &NaturalLoop) -> Result<u64, ProgressError> {
        let k = match loop_bound(ctx.f, l) {
            LoopBound::Exact(k) => k,
            LoopBound::Unknown(detail) => {
                return Err(ProgressError::UnboundedLoop {
                    func: ctx.f.name.clone(),
                    detail,
                })
            }
        };
        let hlen = ctx.f.block(l.header).instrs.len();
        let header_cost = self.range_cost(ctx.f, l.header, 0, hlen + 1)?;
        if k == 0 {
            return Ok(header_cost);
        }
        let body_entries: Vec<BlockId> = ctx
            .cfg
            .succs(l.header)
            .iter()
            .copied()
            .filter(|s| l.contains(*s))
            .collect();
        let latches: Vec<BlockId> = ctx
            .cfg
            .preds(l.header)
            .iter()
            .copied()
            .filter(|p| l.contains(*p))
            .collect();
        let (&[body_entry], &[latch]) = (body_entries.as_slice(), latches.as_slice()) else {
            return Err(ProgressError::unsupported(format!(
                "loop at block {} of `{}` has {} entries and {} latches \
                 (expected exactly one of each)",
                l.header.0,
                ctx.f.name,
                body_entries.len(),
                latches.len()
            )));
        };
        let latch_len = ctx.f.block(latch).instrs.len();
        let iter = self.path_cost(
            ctx,
            Point::new(body_entry, 0),
            Point::new(latch, latch_len + 1),
        )?;
        Ok(header_cost
            .saturating_mul(k + 1)
            .saturating_add(iter.saturating_mul(k)))
    }

    /// Cost of points `[lo, hi)` of one block; index `instrs.len()` is
    /// the terminator.
    fn range_cost(
        &mut self,
        f: &Function,
        b: BlockId,
        lo: usize,
        hi: usize,
    ) -> Result<u64, ProgressError> {
        let blk = f.block(b);
        let mut total = 0u64;
        for i in lo..hi.min(blk.instrs.len() + 1) {
            let c = if i < blk.instrs.len() {
                let inst = &blk.instrs[i];
                self.op_cost(
                    f,
                    InstrRef {
                        func: f.id,
                        label: inst.label,
                    },
                    &inst.op,
                )?
            } else {
                term_cost(&self.costs, &blk.term)
            };
            total = total.saturating_add(c);
        }
        Ok(total)
    }

    /// Static worst-case cost of one operation, mirroring the runtime's
    /// dynamic charging (including hidden dynamic undo-log costs inside
    /// regions).
    fn op_cost(&mut self, f: &Function, at: InstrRef, op: &Op) -> Result<u64, ProgressError> {
        let in_region = self.covered.contains(&at);
        let log_extra = if in_region { self.costs.log_word } else { 0 };
        Ok(match op {
            Op::Skip | Op::Annot { .. } => 1,
            Op::Bind { .. } => self.costs.alu,
            Op::Assign { place, .. } => match place {
                Place::Var(x) if is_static_local(f, x) => {
                    if is_by_ref_param(f, x) {
                        // The runtime charges an ALU write but may
                        // undo-log the referenced global.
                        self.costs.alu + log_extra
                    } else {
                        self.costs.alu
                    }
                }
                Place::Var(_) | Place::Index(..) | Place::Deref(_) => {
                    self.costs.nv_write + log_extra
                }
            },
            Op::Input { sensor, .. } => self.costs.input_cycles(sensor),
            Op::Call { callee, .. } => {
                let body = self.func_wcet(*callee)?;
                self.costs.call.saturating_add(body)
            }
            Op::Output { args, .. } => self.costs.output_word * (1 + args.len() as u64),
            Op::AtomStart { region } => {
                // Charged as an outer entry even when nested (the runtime
                // charges only an ALU bump when already atomic) — sound
                // for functions reached both inside and outside regions.
                let words = self.stack.entry_words(f.id);
                let omega = self.omega.get(region).copied().unwrap_or(0);
                self.costs.checkpoint_cycles(words) + self.costs.log_cycles(omega)
            }
            Op::AtomEnd { .. } => self.costs.alu,
        })
    }
}

/// Cost of a terminator, mirroring the runtime.
fn term_cost(costs: &CostModel, t: &Terminator) -> u64 {
    match t {
        Terminator::Jump(_) => costs.alu / 2 + 1,
        Terminator::Branch { .. } => costs.alu,
        Terminator::Ret(_) => costs.call / 2,
    }
}

/// The headers of every loop containing `b`.
fn loop_context(loops: &LoopForest, b: BlockId) -> BTreeSet<BlockId> {
    loops.loops_containing(b).iter().map(|l| l.header).collect()
}

/// True when writes to `x` inside `f` stay volatile (a bound local or a
/// parameter).
fn is_static_local(f: &Function, x: &str) -> bool {
    f.locals.iter().any(|l| l == x) || f.params.iter().any(|p| p.name == x)
}

fn is_by_ref_param(f: &Function, x: &str) -> bool {
    f.params.iter().any(|p| p.name == x && p.by_ref)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile;

    fn wcet_main(src: &str) -> u64 {
        let p = compile(src).unwrap();
        let regions = ocelot_core::collect_regions(&p).unwrap();
        let mut w = WcetAnalysis::new(&p, &CostModel::default(), &regions);
        w.func_wcet(p.main).unwrap()
    }

    #[test]
    fn straight_line_sums_costs() {
        let costs = CostModel::default();
        // bind + bind + output(1 arg) + exit-jump/ret structure.
        let c = wcet_main("fn main() { let a = 1; let b = a + 2; out(log, b); }");
        assert!(c >= 2 * costs.alu + 2 * costs.output_word);
        assert!(c < 10 * costs.output_word, "no wild overcount");
    }

    #[test]
    fn branch_takes_more_expensive_arm() {
        let cheap_then = wcet_main(
            "sensor s; fn main() { let v = in(s); if v > 0 { skip; } else { out(log, v); out(log, v); } }",
        );
        let cheap_else = wcet_main(
            "sensor s; fn main() { let v = in(s); if v > 0 { out(log, v); out(log, v); } else { skip; } }",
        );
        assert_eq!(
            cheap_then, cheap_else,
            "worst arm dominates regardless of orientation"
        );
    }

    #[test]
    fn loop_multiplies_iteration_cost() {
        let once = wcet_main("sensor s; fn main() { repeat 1 { let v = in(s); } }");
        let ten = wcet_main("sensor s; fn main() { repeat 10 { let v = in(s); } }");
        let costs = CostModel::default();
        let delta = ten - once;
        assert!(
            delta >= 9 * costs.input,
            "nine extra inputs: {delta} >= {}",
            9 * costs.input
        );
    }

    #[test]
    fn nested_loops_multiply() {
        let c = wcet_main("sensor s; fn main() { repeat 3 { repeat 4 { let v = in(s); } } }");
        let costs = CostModel::default();
        assert!(c >= 12 * costs.input, "3*4 inputs in the bound");
    }

    #[test]
    fn calls_add_callee_body() {
        let inline = wcet_main("sensor s; fn main() { let v = in(s); }");
        let called = wcet_main(
            "sensor s; fn grab() { let v = in(s); return v; } fn main() { let x = grab(); }",
        );
        assert!(called > inline, "call overhead and return path add cost");
        let costs = CostModel::default();
        assert!(called - inline >= costs.call / 2, "at least the ret cost");
    }

    #[test]
    fn region_body_wcet_covers_the_span() {
        let p = compile(
            r#"
            sensor s;
            nv g = 0;
            fn main() {
                atomic {
                    let v = in(s);
                    g = g + v;
                }
            }
            "#,
        )
        .unwrap();
        let regions = ocelot_core::collect_regions(&p).unwrap();
        let costs = CostModel::default();
        let mut w = WcetAnalysis::new(&p, &costs, &regions);
        let body = w.region_body_wcet(&regions[0]).unwrap();
        // input + nv write + dynamic log + commit, at least.
        assert!(body >= costs.input + costs.nv_write + costs.log_word + costs.alu);
        let entry = w.region_entry_cycles(&regions[0]);
        assert!(entry >= costs.ckpt_base, "entry includes a checkpoint");
    }

    #[test]
    fn region_inside_loop_costs_one_iteration() {
        let p = compile(
            r#"
            sensor s;
            fn main() {
                repeat 50 {
                    atomic { let v = in(s); out(log, v); }
                }
            }
            "#,
        )
        .unwrap();
        let regions = ocelot_core::collect_regions(&p).unwrap();
        let costs = CostModel::default();
        let mut w = WcetAnalysis::new(&p, &costs, &regions);
        let body = w.region_body_wcet(&regions[0]).unwrap();
        // One attempt is one iteration's worth, not 50.
        assert!(body < 2 * (costs.input + 2 * costs.output_word) + 100);
        // But the whole main pays for all 50.
        let total = w.func_wcet(p.main).unwrap();
        assert!(total > 50 * costs.input);
    }

    #[test]
    fn unbounded_hand_built_loop_is_rejected() {
        use ocelot_ir::ast::{BinOp, Expr};
        // Rewrite a lowered repeat's header to branch on a *global*,
        // which the bound matcher must refuse (not a `$rep` counter).
        let mut p = compile("nv g = 0; fn main() { repeat 2 { g = g + 1; } }").unwrap();
        let main = p.main;
        let f = p.func_mut(main);
        for b in &mut f.blocks {
            if let Terminator::Branch { cond, .. } = &mut b.term {
                *cond = Expr::Binary(
                    BinOp::Lt,
                    Box::new(Expr::Var("g".into())),
                    Box::new(Expr::Int(10)),
                );
            }
        }
        let mut w = WcetAnalysis::new(&p, &CostModel::default(), &[]);
        let err = w.func_wcet(p.main).unwrap_err();
        assert!(matches!(err, ProgressError::UnboundedLoop { .. }), "{err}");
    }

    #[test]
    fn le_counter_header_is_bounded_in_wcet() {
        use ocelot_ir::ast::BinOp;
        // Rewrite the lowered repeat's `$rep < 2` header to `$rep <= 2`:
        // the analysis rewrites it internally to `< 3` and the whole
        // WCET query succeeds (it used to bounce the loop back with a
        // rewrite suggestion).
        let mut p = compile("fn main() { repeat 2 { skip; } }").unwrap();
        let main = p.main;
        let f = p.func_mut(main);
        for b in &mut f.blocks {
            if let Terminator::Branch {
                cond: ocelot_ir::ast::Expr::Binary(op, _, _),
                ..
            } = &mut b.term
            {
                *op = BinOp::Le;
            }
        }
        let mut w = WcetAnalysis::new(&p, &CostModel::default(), &[]);
        w.func_wcet(p.main)
            .expect("`$rep <= 2` is a bounded counter loop");
    }

    /// Rewrites `main`'s lone loop header to use `op` (with `delta`
    /// added to the constant bound).
    fn rewrite_header(p: &mut Program, op: ocelot_ir::ast::BinOp, delta: i64) {
        use ocelot_ir::ast::Expr;
        let main = p.main;
        let f = p.func_mut(main);
        for b in &mut f.blocks {
            if let Terminator::Branch {
                cond: Expr::Binary(o, _, rhs),
                ..
            } = &mut b.term
            {
                *o = op;
                let Expr::Int(k) = rhs.as_mut() else {
                    panic!("counter check rhs is a constant")
                };
                *k += delta;
            }
        }
    }

    #[test]
    fn le_header_costs_exactly_the_lt_equivalent() {
        use ocelot_ir::ast::BinOp;
        // `$rep <= 2` must cost exactly what a genuine `repeat 3`
        // (`$rep < 3`) costs — the internal rewrite is semantically the
        // identity, not merely "some accepted bound".
        let reference = {
            let p = compile("sensor s; fn main() { repeat 3 { let v = in(s); } }").unwrap();
            let mut w = WcetAnalysis::new(&p, &CostModel::default(), &[]);
            w.func_wcet(p.main).unwrap()
        };
        let mut p = compile("sensor s; fn main() { repeat 2 { let v = in(s); } }").unwrap();
        rewrite_header(&mut p, BinOp::Le, 0);
        let mut w = WcetAnalysis::new(&p, &CostModel::default(), &[]);
        let bound = w.func_wcet(p.main).expect("`<=` header is accepted");
        assert_eq!(
            bound, reference,
            "`$rep <= 2` costs exactly what a `repeat 3` costs"
        );
    }

    #[test]
    fn while_loop_is_reported_unbounded() {
        let p = compile("nv g = 2; fn main() { while g > 0 { g = g - 1; } }").unwrap();
        let mut w = WcetAnalysis::new(&p, &CostModel::default(), &[]);
        match w.func_wcet(p.main) {
            Err(ProgressError::UnboundedLoop { func, .. }) => assert_eq!(func, "main"),
            other => panic!("expected unbounded-loop error, got {other:?}"),
        }
    }

    #[test]
    fn straddling_region_is_rejected() {
        // A hand-built region that starts outside a loop and ends inside
        // it has no single-attempt path; the analysis must refuse.
        use ocelot_ir::{Inst, RegionId};
        let mut p =
            compile("sensor s; fn main() { let a = 1; repeat 3 { let v = in(s); } }").unwrap();
        let region = p.fresh_region();
        let main = p.main;
        // Locate the loop body block (contains the input).
        let f = p.func_mut(main);
        let body_block = f
            .blocks
            .iter()
            .find(|b| b.instrs.iter().any(|i| i.op.is_input()))
            .map(|b| b.id)
            .expect("loop body exists");
        let (entry, l1, l2) = (f.entry, f.fresh_label(), f.fresh_label());
        f.block_mut(entry)
            .instrs
            .insert(0, Inst::new(l1, Op::AtomStart { region }));
        f.block_mut(body_block)
            .instrs
            .push(Inst::new(l2, Op::AtomEnd { region }));
        let info = ocelot_core::RegionInfo {
            id: RegionId(region.0),
            func: main,
            start: InstrRef {
                func: main,
                label: l1,
            },
            end: InstrRef {
                func: main,
                label: l2,
            },
            effects: Default::default(),
            omega_words: 0,
        };
        let mut w = WcetAnalysis::new(&p, &CostModel::default(), &[]);
        let err = w.region_body_wcet(&info).unwrap_err();
        assert!(
            matches!(err, ProgressError::Unsupported { .. }),
            "straddling must be refused, got {err:?}"
        );
    }

    #[test]
    fn jit_checkpoint_worst_case_uses_peak_stack() {
        let p = compile(
            r#"
            fn deep(v) { let a = v; let b = a; return b; }
            fn main() { let x = deep(1); }
            "#,
        )
        .unwrap();
        let costs = CostModel::default();
        let w = WcetAnalysis::new(&p, &costs, &[]);
        let deep = p.func_by_name("deep").unwrap();
        assert_eq!(
            w.worst_jit_checkpoint_cycles(),
            costs.checkpoint_cycles(w.stack().entry_words(deep))
        );
    }
}
