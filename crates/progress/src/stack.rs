//! Static worst-case volatile-footprint estimation.
//!
//! Checkpoint cost — at a JIT low-power interrupt and at an atomic
//! region's entry — scales with the volatile state (stack + registers)
//! being saved. The runtime accounts that state as
//! `16 + Σ_frames (locals + 4)` words (`ocelot-runtime`'s `VolState`);
//! this module computes a static upper bound of the same quantity:
//! every local of every frame on the deepest call chain counts as live.
//!
//! Two uses:
//!
//! * sizing an atomic region's entry checkpoint (`entry_words` of the
//!   host function), and
//! * checking §6.3's standing assumption that the comparator trigger
//!   reserve always covers a JIT checkpoint — which prior work admits
//!   "may not be true for programs with large and unpredictable stack
//!   sizes" ([`program_peak_words`](StackModel::program_peak_words)
//!   makes the check concrete).

use ocelot_ir::{CallGraph, FuncId, Program};

/// Fixed register-file share per frame, matching the runtime's `Frame::words`.
const FRAME_OVERHEAD: usize = 4;
/// Fixed machine-state share, matching the runtime's `VolState::words`.
const MACHINE_OVERHEAD: usize = 16;

/// Static per-function and whole-program volatile-footprint bounds.
#[derive(Debug, Clone)]
pub struct StackModel {
    frame_words: Vec<usize>,
    entry_words: Vec<usize>,
    chain_below: Vec<usize>,
}

impl StackModel {
    /// Builds the model for `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` has recursive calls (rejected by validation before
    /// any analysis runs).
    pub fn new(p: &Program) -> Self {
        let cg = CallGraph::new(p);
        let order = cg
            .topo_callees_first(p)
            .expect("validated programs are non-recursive");
        let n = p.funcs.len();

        let frame_words: Vec<usize> = p
            .funcs
            .iter()
            .map(|f| {
                let by_value_params = f.params.iter().filter(|prm| !prm.by_ref).count();
                f.locals.len() + by_value_params + FRAME_OVERHEAD
            })
            .collect();

        // Deepest chain of frames strictly below f (its callees), in words.
        let mut chain_below = vec![0usize; n];
        for &f in &order {
            // callees-first order: chain_below of callees already final.
            let mut worst = 0;
            for e in cg.callees(f) {
                let c = e.callee.0 as usize;
                worst = worst.max(frame_words[c] + chain_below[c]);
            }
            chain_below[f.0 as usize] = worst;
        }

        // Worst words with a fresh frame for f on top: deepest caller
        // chain from main, plus f's own frame.
        let mut entry_words = vec![0usize; n];
        for &f in order.iter().rev() {
            // callers-first order: entry_words of callers already final.
            let fi = f.0 as usize;
            if f == p.main {
                entry_words[fi] = MACHINE_OVERHEAD + frame_words[fi];
                continue;
            }
            let deepest_caller = cg
                .callers(f)
                .map(|e| entry_words[e.caller.0 as usize])
                .max();
            entry_words[fi] = match deepest_caller {
                Some(w) => w + frame_words[fi],
                // Unreachable from main: treat as its own entry point.
                None => MACHINE_OVERHEAD + frame_words[fi],
            };
        }

        StackModel {
            frame_words,
            entry_words,
            chain_below,
        }
    }

    /// Upper bound on one frame of `f`, in words.
    pub fn frame_words(&self, f: FuncId) -> usize {
        self.frame_words[f.0 as usize]
    }

    /// Upper bound on the volatile state when a frame for `f` has just
    /// been pushed (worst caller chain from `main`).
    pub fn entry_words(&self, f: FuncId) -> usize {
        self.entry_words[f.0 as usize]
    }

    /// Upper bound on the volatile state at any point while `f` is
    /// executing, including its deepest callee chain.
    pub fn peak_words(&self, f: FuncId) -> usize {
        self.entry_words[f.0 as usize] + self.chain_below[f.0 as usize]
    }

    /// Upper bound on the volatile state at any point in the program —
    /// what the worst-case JIT checkpoint must save.
    pub fn program_peak_words(&self, p: &Program) -> usize {
        self.peak_words(p.main)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile;

    #[test]
    fn leaf_function_entry_is_main_plus_frame() {
        let p = compile(
            r#"
            fn leaf(v) { let a = v + 1; return a; }
            fn main() { let x = leaf(1); let y = x; }
            "#,
        )
        .unwrap();
        let m = StackModel::new(&p);
        let leaf = p.func_by_name("leaf").unwrap();
        // leaf: 2 locals (`a` + the synthetic `$ret`) + 1 by-value param
        // + 4 overhead.
        assert_eq!(m.frame_words(leaf), 7);
        assert_eq!(
            m.entry_words(leaf),
            m.entry_words(p.main) + m.frame_words(leaf)
        );
    }

    #[test]
    fn by_ref_params_do_not_count_as_locals() {
        let p = compile(
            r#"
            fn put(&dst, v) { *dst = v; }
            fn main() { let x = 0; put(&x, 9); }
            "#,
        )
        .unwrap();
        let m = StackModel::new(&p);
        let put = p.func_by_name("put").unwrap();
        // put: 1 local (`$ret`) + 1 by-value param (v; &dst is a ref) + 4.
        assert_eq!(m.frame_words(put), 6);
    }

    #[test]
    fn deepest_caller_chain_wins() {
        let p = compile(
            r#"
            fn leaf() { return 1; }
            fn mid() { let a = 1; let b = 2; let c = leaf(); return c; }
            fn main() {
                let direct = leaf();
                let nested = mid();
            }
            "#,
        )
        .unwrap();
        let m = StackModel::new(&p);
        let leaf = p.func_by_name("leaf").unwrap();
        let mid = p.func_by_name("mid").unwrap();
        // leaf's worst entry goes through mid, not the direct call.
        assert_eq!(
            m.entry_words(leaf),
            m.entry_words(mid) + m.frame_words(leaf)
        );
        assert!(m.entry_words(leaf) > m.entry_words(p.main) + m.frame_words(leaf));
    }

    #[test]
    fn program_peak_reaches_the_deepest_chain() {
        let p = compile(
            r#"
            fn c() { let z = 1; return z; }
            fn b() { let y = c(); return y; }
            fn a() { let x = b(); return x; }
            fn main() { let r = a(); }
            "#,
        )
        .unwrap();
        let m = StackModel::new(&p);
        let c = p.func_by_name("c").unwrap();
        assert_eq!(m.program_peak_words(&p), m.entry_words(c));
        assert_eq!(m.peak_words(c), m.entry_words(c), "c is a leaf");
    }

    #[test]
    fn peak_includes_callees_below() {
        let p = compile(
            r#"
            fn helper() { let h = 1; return h; }
            fn main() { let r = helper(); }
            "#,
        )
        .unwrap();
        let m = StackModel::new(&p);
        let helper = p.func_by_name("helper").unwrap();
        assert_eq!(
            m.peak_words(p.main),
            m.entry_words(p.main) + m.frame_words(helper)
        );
        assert_eq!(m.program_peak_words(&p), m.entry_words(helper));
    }
}
