//! Backend equivalence under power failure: the compiled engine must
//! checkpoint, restore, roll back, and account *exactly* like the
//! interpreter, wherever the failure lands.
//!
//! The mid-block sweeps force the supply to die at every instruction
//! offset of a block (energy budgets walk the cumulative cost curve one
//! nanojoule at a time, and every instruction costs at least 1 nJ), and
//! assert the two backends agree on statistics, committed traces, and
//! run outcomes — step for step, not just in aggregate.

use ocelot_hw::energy::CostModel;
use ocelot_hw::power::{ContinuousPower, PowerSupply, ScriptedPower};
use ocelot_hw::sensors::{Environment, Signal};
use ocelot_ir::{compile, Program};
use ocelot_runtime::machine::{pathological_targets, Machine, RunOutcome};
use ocelot_runtime::obs::Obs;
use ocelot_runtime::ExecBackend;
use std::collections::BTreeSet;

fn build(
    src: &str,
) -> (
    Program,
    ocelot_core::PolicySet,
    Vec<ocelot_core::RegionInfo>,
) {
    let p = compile(src).unwrap();
    let regions = ocelot_core::collect_regions(&p).unwrap();
    let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
    let policies = ocelot_core::build_policies(&p, &taint);
    (p, policies, regions)
}

struct RunResult {
    outcome: Vec<RunOutcome>,
    stats: ocelot_runtime::Stats,
    trace: Vec<Obs>,
}

#[allow(clippy::too_many_arguments)]
fn run(
    p: &Program,
    policies: &ocelot_core::PolicySet,
    regions: &[ocelot_core::RegionInfo],
    env: Environment,
    supply: Box<dyn PowerSupply>,
    backend: ExecBackend,
    runs: u64,
    inject: bool,
) -> RunResult {
    let mut m = Machine::new(
        p,
        regions,
        policies.clone(),
        env,
        CostModel::default(),
        supply,
    )
    .with_backend(backend);
    if inject {
        m = m.with_injector(pathological_targets(policies));
    }
    let outcome = (0..runs).map(|_| m.run_once(1_000_000)).collect();
    RunResult {
        outcome,
        stats: m.stats().clone(),
        trace: m.take_trace(),
    }
}

/// Runs both backends over the same scripted budget and asserts full
/// agreement.
fn assert_equivalent(src: &str, env: &Environment, budgets: Vec<f64>, runs: u64, inject: bool) {
    let (p, policies, regions) = build(src);
    let mk = |backend| {
        run(
            &p,
            &policies,
            &regions,
            env.clone(),
            Box::new(ScriptedPower::new(budgets.clone(), 500)),
            backend,
            runs,
            inject,
        )
    };
    let interp = mk(ExecBackend::Interp);
    let compiled = mk(ExecBackend::Compiled);
    assert_eq!(
        interp.outcome, compiled.outcome,
        "outcomes diverged for budgets {budgets:?}"
    );
    assert_eq!(
        interp.stats, compiled.stats,
        "stats diverged for budgets {budgets:?}"
    );
    assert_eq!(
        interp.trace, compiled.trace,
        "traces diverged for budgets {budgets:?}"
    );
}

#[test]
fn jit_mid_block_failure_at_every_offset() {
    // Straight-line block of binds: every nanojoule boundary between 1
    // and well past the block's total cost places the comparator trip
    // at a different instruction offset (binds cost 2 nJ each, the
    // output 1600 nJ).
    let src = r#"
        fn main() {
            let a = 1;
            let b = a + 1;
            let c = b * 2;
            let d = c - 1;
            let e = d + c;
            out(log, e);
        }
    "#;
    let (p, policies, regions) = build(src);
    let env = Environment::new();
    let mut checkpoint_footprints = BTreeSet::new();
    // Whole-run cost: 5 binds (2 nJ each) + output (1600 nJ) + jump (2)
    // + ret (6) = 1618 nJ; every budget below that fails exactly once.
    for budget in (1..=30).chain([500, 1000, 1605, 1613, 1617]) {
        let mk = |backend| {
            run(
                &p,
                &policies,
                &regions,
                env.clone(),
                Box::new(ScriptedPower::new(vec![budget as f64], 500)),
                backend,
                1,
                false,
            )
        };
        let interp = mk(ExecBackend::Interp);
        let compiled = mk(ExecBackend::Compiled);
        assert_eq!(interp.outcome, compiled.outcome, "budget {budget}");
        assert_eq!(interp.stats, compiled.stats, "budget {budget}");
        assert_eq!(interp.trace, compiled.trace, "budget {budget}");
        assert!(
            matches!(interp.outcome[0], RunOutcome::Completed { .. }),
            "budget {budget}"
        );
        assert_eq!(
            interp.stats.reboots, 1,
            "budget {budget} failed exactly once"
        );
        checkpoint_footprints.insert(interp.stats.ckpt_words);
    }
    // The sweep genuinely moved the checkpoint across the block: each
    // additional bound local grows the checkpointed footprint by one
    // word, so at least as many distinct footprints as binds must show
    // up (plus the pre-first-bind and in-output offsets).
    assert!(
        checkpoint_footprints.len() >= 5,
        "failures covered ≥5 distinct offsets, got {checkpoint_footprints:?}"
    );
}

#[test]
fn atomic_region_mid_block_failure_at_every_offset() {
    // Failures inside the region roll back NV writes and re-execute;
    // the sweep walks the failure through region entry, the sample, the
    // NV increments, and the commit.
    let src = r#"
        nv g = 0;
        nv h = 0;
        sensor s;
        fn main() {
            atomic {
                let v = in(s);
                g = g + v;
                h = h + g;
            }
            out(log, g + h);
        }
    "#;
    let env = Environment::new().with("s", Signal::Constant(3));
    // Region entry ~600 nJ, input 4000 nJ, NV writes 4 nJ: sweep fine
    // around the cheap tail and coarsely through the expensive sample.
    for budget in (1..=40)
        .map(|b| b * 25)
        .chain([4600, 4610, 4620, 4640, 4700, 6300, 8000])
    {
        assert_equivalent(src, &env, vec![budget as f64], 1, false);
    }
}

#[test]
fn repeated_failures_and_multiple_runs_agree() {
    let src = r#"
        nv count = 0;
        sensor s;
        fn main() {
            let acc = 0;
            repeat 5 {
                let v = in(s);
                acc = acc + v;
            }
            count = count + 1;
            out(log, acc + count);
        }
    "#;
    let env = Environment::new().with("s", Signal::Constant(2));
    // Several on-intervals per run, several runs back to back.
    assert_equivalent(src, &env, vec![6000.0; 12], 3, false);
}

#[test]
fn injected_pathological_failures_agree() {
    let src = "sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }";
    let env = Environment::new().with("s", Signal::Constant(5));
    let (p, policies, regions) = build(src);
    for backend_pair_runs in [1u64, 3] {
        let mk = |backend| {
            run(
                &p,
                &policies,
                &regions,
                env.clone(),
                Box::new(ContinuousPower),
                backend,
                backend_pair_runs,
                true,
            )
        };
        let interp = mk(ExecBackend::Interp);
        let compiled = mk(ExecBackend::Compiled);
        assert_eq!(interp.outcome, compiled.outcome);
        assert_eq!(interp.stats, compiled.stats);
        assert_eq!(interp.trace, compiled.trace);
        assert!(interp.stats.fresh_violations >= 1, "the injection fired");
    }
}

#[test]
fn tics_expiry_mitigation_agrees() {
    let src = "sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }";
    let (p, policies, regions) = build(src);
    let env = Environment::new().with("s", Signal::Constant(5));
    let mk = |backend| {
        let mut m = Machine::new(
            &p,
            &regions,
            policies.clone(),
            env.clone(),
            CostModel::default(),
            Box::new(ScriptedPower::new(vec![4_500.0; 200], 100_000)),
        )
        .with_backend(backend)
        .with_expiry_window(10_000);
        let outcome = vec![m.run_once(10_000_000)];
        RunResult {
            outcome,
            stats: m.stats().clone(),
            trace: m.take_trace(),
        }
    };
    let interp = mk(ExecBackend::Interp);
    let compiled = mk(ExecBackend::Compiled);
    assert_eq!(interp.outcome, compiled.outcome);
    assert_eq!(interp.stats, compiled.stats);
    assert_eq!(interp.trace, compiled.trace);
    assert!(interp.stats.expiry_restarts >= 25, "handler thrashed");
}

#[test]
fn step_limit_lands_on_the_same_attempt() {
    // The batched fast path must not overshoot the step budget: an
    // infinite loop capped at various limits has to stop exactly where
    // the interpreter stops, including mid-batch limits.
    let src = "nv g = 0; fn main() { while true { g = g + 1; } }";
    let (p, policies, regions) = build(src);
    for max_steps in [1u64, 2, 3, 7, 100, 101, 102, 5000] {
        let mk = |backend| {
            let mut m = Machine::new(
                &p,
                &regions,
                policies.clone(),
                Environment::new(),
                CostModel::default(),
                Box::new(ContinuousPower),
            )
            .with_backend(backend);
            let out = m.run_once(max_steps);
            (out, m.stats().clone())
        };
        let (oi, si) = mk(ExecBackend::Interp);
        let (oc, sc) = mk(ExecBackend::Compiled);
        assert_eq!(oi, RunOutcome::StepLimit);
        assert_eq!(oi, oc, "max_steps {max_steps}");
        assert_eq!(si, sc, "max_steps {max_steps}");
    }
}

#[test]
fn livelock_and_reexec_limits_agree() {
    let src = r#"
        sensor s;
        fn main() {
            atomic {
                let a = in(s);
                let b = in(s);
                out(log, a + b);
            }
        }
    "#;
    let (p, policies, regions) = build(src);
    let env = Environment::new().with("s", Signal::Constant(1));
    let mk = |backend| {
        let mut m = Machine::new(
            &p,
            &regions,
            policies.clone(),
            env.clone(),
            CostModel::default(),
            Box::new(ScriptedPower::new(vec![5_000.0; 500], 1_000)),
        )
        .with_backend(backend)
        .with_reexec_limit(10);
        let out = m.run_once(1_000_000);
        (out, m.stats().clone())
    };
    let (oi, si) = mk(ExecBackend::Interp);
    let (oc, sc) = mk(ExecBackend::Compiled);
    assert!(matches!(oi, RunOutcome::Livelock { .. }), "{oi:?}");
    assert_eq!(oi, oc);
    assert_eq!(si, sc);
}

#[test]
fn continuous_power_features_sweep_agrees() {
    // Calls, by-ref params, arrays, nested regions, branches — the
    // batched fast path across language features, with wall-clock
    // driven sensors so any timing drift shows up in values.
    let src = r#"
        nv table[4];
        nv total = 0;
        sensor s;
        fn bump(&dst, v) { *dst = *dst + v; }
        fn grab() { let v = in(s); return v; }
        fn main() {
            let i = 0;
            repeat 4 {
                let v = grab();
                table[i] = v;
                bump(&total, v);
                i = i + 1;
            }
            atomic {
                total = total + 1;
                atomic { total = total + 10; }
            }
            if total > 20 { out(log, total); } else { out(log, 0 - total); }
        }
    "#;
    let (p, policies, regions) = build(src);
    let env = Environment::new().with(
        "s",
        Signal::Noisy {
            base: Box::new(Signal::Constant(7)),
            amplitude: 3,
            seed: 9,
        },
    );
    let mk = |backend| {
        run(
            &p,
            &policies,
            &regions,
            env.clone(),
            Box::new(ContinuousPower),
            backend,
            4,
            false,
        )
    };
    let interp = mk(ExecBackend::Interp);
    let compiled = mk(ExecBackend::Compiled);
    assert_eq!(interp.outcome, compiled.outcome);
    assert_eq!(interp.stats, compiled.stats);
    assert_eq!(interp.trace, compiled.trace);
    assert!(matches!(
        interp.outcome[0],
        RunOutcome::Completed { violated: false }
    ));
}

#[test]
fn run_for_agrees_across_backends() {
    let src = "sensor s; fn main() { let v = in(s); out(log, v); }";
    let (p, policies, regions) = build(src);
    let env = Environment::new().with("s", Signal::Constant(4));
    let mk = |backend| {
        let mut m = Machine::new(
            &p,
            &regions,
            policies.clone(),
            env.clone(),
            CostModel::default(),
            Box::new(ContinuousPower),
        )
        .with_backend(backend);
        let runs = m.run_for(50_000, 100_000);
        (runs, m.stats().clone(), m.take_trace())
    };
    let (ri, si, ti) = mk(ExecBackend::Interp);
    let (rc, sc, tc) = mk(ExecBackend::Compiled);
    assert!(ri > 1);
    assert_eq!(ri, rc);
    assert_eq!(si, sc);
    assert_eq!(ti, tc);
}

#[test]
fn deep_call_stack_failures_at_every_offset_agree() {
    // Input collections at the bottom of a three-deep call chain (a
    // statically-fixed stack → pre-resolved chain) *and* through a
    // helper called from two sites (data-dependent stack → dynamic
    // chain rebuild). The budget sweep walks the power failure through
    // call entry, the nested samples, the returns, and the uses, so
    // checkpointed call stacks of every depth and both chain-resolution
    // paths must stay bit-identical across backends.
    let src = r#"
        sensor s;
        fn leaf() { let v = in(s); return v; }
        fn mid() { let v = leaf(); return v + 1; }
        fn deep() { let v = mid(); return v + 1; }
        fn shared() { let v = in(s); return v; }
        fn main() {
            let a = deep();
            fresh(a);
            let b = shared();
            consistent(b, 1);
            let c = shared();
            consistent(c, 1);
            out(log, a + b + c);
        }
    "#;
    let (p, policies, regions) = build(src);
    let env = Environment::new().with("s", Signal::Constant(3));
    let mut depths = BTreeSet::new();
    // Whole-run cost ≈ 3 calls + 3 samples (4000 nJ each) + returns +
    // the 1600 nJ double-word output: walk budgets across all of it.
    for budget in (1..=60)
        .map(|b| b * 220)
        .chain([4_050, 8_100, 12_150, 13_600])
    {
        let mk = |backend| {
            run(
                &p,
                &policies,
                &regions,
                env.clone(),
                Box::new(ScriptedPower::new(vec![budget as f64], 500)),
                backend,
                2,
                false,
            )
        };
        let interp = mk(ExecBackend::Interp);
        let compiled = mk(ExecBackend::Compiled);
        assert_eq!(interp.outcome, compiled.outcome, "budget {budget}");
        assert_eq!(interp.stats, compiled.stats, "budget {budget}");
        assert_eq!(interp.trace, compiled.trace, "budget {budget}");
        depths.insert(interp.stats.ckpt_words);
    }
    assert!(
        depths.len() >= 6,
        "the sweep checkpointed many distinct stack shapes: {depths:?}"
    );

    // The same program under pathological injection: the injector
    // targets sit on deep-chain divergence points.
    let targets = pathological_targets(&policies);
    assert!(!targets.is_empty());
    let mk = |backend| {
        run(
            &p,
            &policies,
            &regions,
            env.clone(),
            Box::new(ContinuousPower),
            backend,
            2,
            true,
        )
    };
    let interp = mk(ExecBackend::Interp);
    let compiled = mk(ExecBackend::Compiled);
    assert_eq!(interp.outcome, compiled.outcome);
    assert_eq!(interp.stats, compiled.stats);
    assert_eq!(interp.trace, compiled.trace);
    assert!(interp.stats.violations > 0, "the injection really bites");
}

#[test]
fn repeated_multi_path_stacks_rebuild_dynamic_chains_identically() {
    // The chain-table dynamic-miss path, hammered: `probe` is reachable
    // through two different call paths, so its input site has no fixed
    // stack and every collection rebuilds its provenance chain at run
    // time. Each path loops, producing the *same* dynamic chain many
    // times over — the rebuild must be deterministic, distinct per
    // path, and agree byte-for-byte between backends. A separate
    // statically-chained input keeps the interned table non-empty so
    // the misses probe a real table, not a vacuous one.
    let src = r#"
        sensor s;
        fn probe() { let v = in(s); return v; }
        fn via_a() { let acc = 0; repeat 3 { let v = probe(); acc = acc + v; } return acc; }
        fn via_b() { let acc = 0; repeat 2 { let v = probe(); acc = acc + v; } return acc; }
        fn main() {
            let tracked = in(s);
            fresh(tracked);
            out(alarm, tracked);
            let a = via_a();
            let b = via_b();
            out(log, a + b);
        }
    "#;
    let (p, policies, regions) = build(src);
    let env = Environment::new().with(
        "s",
        Signal::Ramp {
            start: 1,
            end: 500,
            t0_us: 0,
            t1_us: 5_000,
        },
    );
    let mk = |backend| {
        run(
            &p,
            &policies,
            &regions,
            env.clone(),
            Box::new(ContinuousPower),
            backend,
            3,
            false,
        )
    };
    let interp = mk(ExecBackend::Interp);
    let compiled = mk(ExecBackend::Compiled);
    assert_eq!(interp.outcome, compiled.outcome);
    assert_eq!(interp.stats, compiled.stats);
    assert_eq!(interp.trace, compiled.trace);

    // Group the collected chains: per run, 1 static + 3 via_a + 2 via_b.
    let chains: Vec<_> = interp
        .trace
        .iter()
        .filter_map(|o| match o {
            Obs::Input { chain, .. } => Some(chain.as_slice().to_vec()),
            _ => None,
        })
        .collect();
    assert_eq!(chains.len(), 18, "3 runs x 6 collections");
    let distinct: BTreeSet<_> = chains.iter().cloned().collect();
    // Exactly three shapes: main's direct input, main→via_a→probe→in,
    // main→via_b→probe→in. Every rebuild of the same stack must
    // reproduce the same chain, or this set would grow past three.
    assert_eq!(distinct.len(), 3, "{distinct:?}");
    let mut lens: Vec<usize> = distinct.iter().map(|c| c.len()).collect();
    lens.sort_unstable();
    assert_eq!(lens, vec![1, 3, 3], "one direct site, two 2-deep paths");
    // The two loop paths end at the same input instruction but run
    // through different call sites — context sensitivity, observed
    // dynamically.
    let deep: Vec<_> = distinct.iter().filter(|c| c.len() == 3).collect();
    assert_eq!(deep[0][2], deep[1][2], "same input op at the bottom");
    assert_ne!(deep[0][..2], deep[1][..2], "different call paths");
}
