//! A TICS-style *expiration-time* detector — the prior approach the
//! paper argues against (§2.3).
//!
//! TICS-like systems \[27\] attach a programmer-chosen real-time expiry
//! window to each time-sensitive value and check, at each use, that the
//! value's age (read from added timekeeping hardware) is within the
//! window. The paper's critique, which this module makes measurable:
//!
//! 1. **Windows are deployment-dependent.** A window that is too long
//!    *misses* real freshness violations ("an execution may misbehave
//!    without an expiration time violation"); one that is too short
//!    trips on perfectly fresh data and runs mitigation handlers for
//!    nothing.
//! 2. **Timeliness is not temporal consistency.** No choice of window
//!    expresses "these two samples must come from the same moment":
//!    both samples can be individually young yet straddle a reboot.
//!
//! [`evaluate_expiry`] replays a committed observation trace under a
//! given window and scores it against ground truth (the era-based
//! checker of [`crate::detect::check_trace`], i.e. Definitions 2/3).

use crate::detect::{check_trace, ViolationKind};
use crate::obs::Obs;
use ocelot_analysis::taint::Prov;
use ocelot_core::{PolicyKind, PolicySet};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of replaying one trace under an expiry window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpiryReport {
    /// Uses where the expiry check tripped (TICS would run a handler).
    pub trips: usize,
    /// Uses that really violated freshness (ground truth).
    pub true_freshness_violations: usize,
    /// Ground-truth freshness violations the expiry check *missed*
    /// (stale data sailed under the window) — the paper's headline
    /// failure mode.
    pub missed: usize,
    /// Expiry trips on uses that were *not* violations (handler runs on
    /// fresh data).
    pub spurious: usize,
    /// Ground-truth temporal-consistency violations, which no expiry
    /// window can express (always missed by TICS).
    pub consistency_violations_unexpressible: usize,
}

impl ExpiryReport {
    /// Fraction of real freshness violations caught; 1.0 when there were
    /// none to catch.
    pub fn recall(&self) -> f64 {
        if self.true_freshness_violations == 0 {
            1.0
        } else {
            1.0 - self.missed as f64 / self.true_freshness_violations as f64
        }
    }
}

/// Replays `trace` with a TICS-style check: at each recorded use of a
/// fresh policy, every input chain's most recent collection must be no
/// older than `window_us` of wall-clock time. Scores the result against
/// the era-based ground truth.
pub fn evaluate_expiry(policies: &PolicySet, trace: &[Obs], window_us: u64) -> ExpiryReport {
    // Ground truth, keyed by (use site, tau) for freshness events.
    let truth = check_trace(policies, trace);
    let mut true_fresh: BTreeSet<(ocelot_ir::InstrRef, u64)> = BTreeSet::new();
    let mut consistency = 0usize;
    for v in &truth {
        match v.kind {
            ViolationKind::Freshness => {
                true_fresh.insert((v.at, v.tau));
            }
            ViolationKind::Consistency => consistency += 1,
        }
    }

    let mut collected_at: BTreeMap<std::sync::Arc<Prov>, u64> = BTreeMap::new();
    let mut report = ExpiryReport {
        true_freshness_violations: true_fresh.len(),
        consistency_violations_unexpressible: consistency,
        ..Default::default()
    };
    let mut caught: BTreeSet<(ocelot_ir::InstrRef, u64)> = BTreeSet::new();

    for o in trace {
        match o {
            Obs::Input { chain, time_us, .. } => {
                collected_at.insert(std::sync::Arc::clone(chain), *time_us);
            }
            Obs::Use {
                at, tau, time_us, ..
            } => {
                for pol in policies.iter() {
                    if pol.kind != PolicyKind::Fresh || !pol.uses.contains(at) {
                        continue;
                    }
                    let expired = pol.inputs.iter().any(|chain| {
                        match collected_at.get(chain) {
                            Some(t) => time_us.saturating_sub(*t) > window_us,
                            // Never collected: TICS treats missing
                            // timestamps as expired.
                            None => true,
                        }
                    });
                    if expired {
                        report.trips += 1;
                        if true_fresh.contains(&(*at, *tau)) {
                            caught.insert((*at, *tau));
                        } else {
                            report.spurious += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    report.missed = true_fresh.difference(&caught).count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::model::{build, ExecModel};
    use ocelot_hw::energy::CostModel;
    use ocelot_hw::power::{RandomPower, ScriptedPower};
    use ocelot_hw::sensors::{Environment, Signal};

    /// Runs a small fresh-constrained program under JIT, failing every
    /// ~3 µJ with a fixed `off_us` charging gap.
    fn jit_trace_fixed_off(off_us: u64) -> (PolicySet, Vec<Obs>) {
        let src = r#"
            sensor s;
            fn main() {
                let x = in(s);
                fresh(x);
                let y = x * 2;
                out(log, x);
            }
        "#;
        let built = build(ocelot_ir::compile(src).unwrap(), ExecModel::Jit).unwrap();
        let mut m = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            Environment::new().with("s", Signal::Constant(5)),
            CostModel::default(),
            Box::new(ScriptedPower::new(
                // Budgets drift across the run so failures land at
                // every program point, including between the input's
                // completion and its uses.
                (0..200)
                    .map(|i| 4_300.0 + (i % 11) as f64 * 150.0)
                    .collect(),
                off_us,
            )),
        );
        for _ in 0..40 {
            m.run_once(1_000_000);
        }
        (built.policies, m.take_trace())
    }

    /// Same program under exponential random failures.
    fn jit_trace(seed: u64) -> (PolicySet, Vec<Obs>) {
        let src = r#"
            sensor s;
            fn main() {
                let x = in(s);
                fresh(x);
                let y = x * 2;
                out(log, x);
            }
        "#;
        let built = build(ocelot_ir::compile(src).unwrap(), ExecModel::Jit).unwrap();
        let mut m = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            Environment::new().with("s", Signal::Constant(5)),
            CostModel::default(),
            Box::new(RandomPower::new(3_000.0, 100_000, seed)),
        );
        for _ in 0..40 {
            m.run_once(1_000_000);
        }
        (built.policies, m.take_trace())
    }

    #[test]
    fn infinite_window_misses_every_real_violation() {
        let (policies, trace) = jit_trace(5);
        let truth = check_trace(&policies, &trace);
        assert!(!truth.is_empty(), "random failures must cause violations");
        let r = evaluate_expiry(&policies, &trace, u64::MAX / 2);
        assert!(r.true_freshness_violations > 0);
        assert_eq!(r.missed, r.true_freshness_violations, "all missed");
        assert_eq!(r.trips, 0, "a huge window never trips");
        assert_eq!(r.recall(), 0.0);
    }

    #[test]
    fn zero_window_trips_on_everything() {
        let (policies, trace) = jit_trace(5);
        let r = evaluate_expiry(&policies, &trace, 0);
        // Every use trips (the collection is always >0 µs old).
        assert!(r.trips >= r.true_freshness_violations);
        assert_eq!(r.missed, 0, "nothing missed");
        assert!(
            r.spurious > 0,
            "fresh uses also tripped: handlers for nothing"
        );
        assert_eq!(r.recall(), 1.0);
    }

    #[test]
    fn well_chosen_window_works_for_one_deployment() {
        // Off-time is exactly 100 ms; a 10 ms window catches every
        // reboot-straddling use without tripping on same-era uses.
        let (policies, trace) = jit_trace_fixed_off(100_000);
        let r = evaluate_expiry(&policies, &trace, 10_000);
        assert!(r.true_freshness_violations > 0);
        assert_eq!(r.missed, 0, "10ms window sees 100ms gaps");
        assert_eq!(r.spurious, 0, "same-era uses are far younger than 10ms");
        assert_eq!(r.recall(), 1.0);
    }

    #[test]
    fn same_window_fails_in_a_faster_deployment() {
        // The identical 10 ms window deployed where charging takes only
        // 5 ms: every era break now sails under the window — the program
        // "misbehaves without an expiration time violation" (§2.3).
        let (policies, trace) = jit_trace_fixed_off(5_000);
        let r = evaluate_expiry(&policies, &trace, 10_000);
        assert!(r.true_freshness_violations > 0);
        assert_eq!(r.missed, r.true_freshness_violations, "all missed");
        assert_eq!(r.recall(), 0.0);
    }

    #[test]
    fn consistency_is_unexpressible() {
        let src = r#"
            sensor a; sensor b;
            fn main() {
                let x = in(a);
                consistent(x, 1);
                let y = in(b);
                consistent(y, 1);
                out(log, x, y);
            }
        "#;
        let built = build(ocelot_ir::compile(src).unwrap(), ExecModel::Jit).unwrap();
        let mut m = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            Environment::new(),
            CostModel::default(),
            Box::new(RandomPower::new(5_000.0, 50_000, 3)),
        );
        for _ in 0..60 {
            m.run_once(1_000_000);
        }
        let trace = m.take_trace();
        let r = evaluate_expiry(&built.policies, &trace, 1);
        assert!(
            r.consistency_violations_unexpressible > 0,
            "failures between the pair must have split some sets"
        );
        // Even a 1 µs window — maximal paranoia — cannot express the
        // property: there are no Fresh uses to check at all here.
        assert_eq!(r.trips, 0);
    }
}
