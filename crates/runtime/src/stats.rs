//! Execution statistics: the measurements behind Figures 7–8 and
//! Table 2.

/// Counters accumulated by a [`crate::machine::Machine`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Active CPU cycles.
    pub on_cycles: u64,
    /// Active wall-clock time in µs.
    pub on_time_us: u64,
    /// Off/charging wall-clock time in µs.
    pub off_time_us: u64,
    /// Power failures survived.
    pub reboots: u64,
    /// JIT checkpoints taken (at low-power interrupts in JIT mode).
    pub jit_checkpoints: u64,
    /// Atomic regions entered (outermost only).
    pub region_entries: u64,
    /// Atomic regions committed.
    pub region_commits: u64,
    /// Atomic region re-executions after in-region failures.
    pub region_reexecs: u64,
    /// Words written to undo logs.
    pub log_words: u64,
    /// Words of volatile state checkpointed.
    pub ckpt_words: u64,
    /// Output operations committed.
    pub outputs: u64,
    /// Detector violations (total).
    pub violations: u64,
    /// Freshness violations.
    pub fresh_violations: u64,
    /// Temporal-consistency violations.
    pub consistency_violations: u64,
    /// Completed program runs.
    pub runs_completed: u64,
    /// Completed runs containing at least one violation.
    pub runs_with_violation: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// TICS-mode expiry checks that tripped (the value's age exceeded
    /// the window at a use site).
    pub expiry_trips: u64,
    /// TICS-mode mitigation handlers run (the run restarted to
    /// re-collect inputs).
    pub expiry_restarts: u64,
    /// TICS-mode trips that exceeded the per-run mitigation cap and
    /// proceeded with the stale value anyway.
    pub expiry_giveups: u64,
    /// Cycle breakdown by category.
    pub breakdown: Breakdown,
}

/// Where the active cycles went — the denominators of the overhead
/// figures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Plain compute: ALU, branches, calls.
    pub compute: u64,
    /// Sensor sampling.
    pub input: u64,
    /// Output operations (UART/radio).
    pub output: u64,
    /// Volatile checkpoints: JIT low-power saves and region-entry
    /// snapshots.
    pub checkpoint: u64,
    /// Undo-log writes (eager ω plus dynamic first-writes).
    pub undo_log: u64,
    /// Restores after reboot (volatile state, log application).
    pub restore: u64,
}

impl Breakdown {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.compute + self.input + self.output + self.checkpoint + self.undo_log + self.restore
    }
}

impl Stats {
    /// Total wall-clock time (on + off) in µs.
    pub fn total_time_us(&self) -> u64 {
        self.on_time_us + self.off_time_us
    }

    /// Fraction of completed runs that violated a policy — the
    /// Table 2(b) metric. Returns 0 when no runs completed.
    pub fn violating_fraction(&self) -> f64 {
        if self.runs_completed == 0 {
            0.0
        } else {
            self.runs_with_violation as f64 / self.runs_completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violating_fraction_handles_zero_runs() {
        let s = Stats::default();
        assert_eq!(s.violating_fraction(), 0.0);
    }

    #[test]
    fn violating_fraction_is_ratio() {
        let s = Stats {
            runs_completed: 4,
            runs_with_violation: 1,
            ..Default::default()
        };
        assert!((s.violating_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn total_time_sums_on_and_off() {
        let s = Stats {
            on_time_us: 10,
            off_time_us: 90,
            ..Default::default()
        };
        assert_eq!(s.total_time_us(), 100);
    }
}
