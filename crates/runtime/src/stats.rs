//! Execution statistics: the measurements behind Figures 7–8 and
//! Table 2.

/// Counters accumulated by a [`crate::machine::Machine`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Active CPU cycles.
    pub on_cycles: u64,
    /// Active wall-clock time in µs.
    pub on_time_us: u64,
    /// Off/charging wall-clock time in µs.
    pub off_time_us: u64,
    /// Power failures survived.
    pub reboots: u64,
    /// JIT checkpoints taken (at low-power interrupts in JIT mode).
    pub jit_checkpoints: u64,
    /// Atomic regions entered (outermost only).
    pub region_entries: u64,
    /// Atomic regions committed.
    pub region_commits: u64,
    /// Atomic region re-executions after in-region failures.
    pub region_reexecs: u64,
    /// Words written to undo logs.
    pub log_words: u64,
    /// Words of volatile state checkpointed.
    pub ckpt_words: u64,
    /// Output operations committed.
    pub outputs: u64,
    /// Detector violations (total).
    pub violations: u64,
    /// Freshness violations.
    pub fresh_violations: u64,
    /// Temporal-consistency violations.
    pub consistency_violations: u64,
    /// Completed program runs.
    pub runs_completed: u64,
    /// Completed runs containing at least one violation.
    pub runs_with_violation: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// TICS-mode expiry checks that tripped (the value's age exceeded
    /// the window at a use site).
    pub expiry_trips: u64,
    /// TICS-mode mitigation handlers run (the run restarted to
    /// re-collect inputs).
    pub expiry_restarts: u64,
    /// TICS-mode trips that exceeded the per-run mitigation cap and
    /// proceeded with the stale value anyway.
    pub expiry_giveups: u64,
    /// Cycle breakdown by category.
    pub breakdown: Breakdown,
}

/// Where the active cycles went — the denominators of the overhead
/// figures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Plain compute: ALU, branches, calls.
    pub compute: u64,
    /// Sensor sampling.
    pub input: u64,
    /// Output operations (UART/radio).
    pub output: u64,
    /// Volatile checkpoints: JIT low-power saves and region-entry
    /// snapshots.
    pub checkpoint: u64,
    /// Undo-log writes (eager ω plus dynamic first-writes).
    pub undo_log: u64,
    /// Restores after reboot (volatile state, log application).
    pub restore: u64,
}

impl Breakdown {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.compute + self.input + self.output + self.checkpoint + self.undo_log + self.restore
    }

    /// Every counter as a `(name, value)` pair, in declaration order —
    /// the serialization surface used by the bench harness's persisted
    /// result artifacts. Adding a field here (and to [`Breakdown`])
    /// keeps serializers from silently drifting out of sync.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("compute", self.compute),
            ("input", self.input),
            ("output", self.output),
            ("checkpoint", self.checkpoint),
            ("undo_log", self.undo_log),
            ("restore", self.restore),
        ]
    }

    /// Sets the counter called `name`; returns `false` for unknown
    /// names (deserializers treat that as a schema mismatch).
    pub fn set_counter(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "compute" => &mut self.compute,
            "input" => &mut self.input,
            "output" => &mut self.output,
            "checkpoint" => &mut self.checkpoint,
            "undo_log" => &mut self.undo_log,
            "restore" => &mut self.restore,
            _ => return false,
        };
        *slot = value;
        true
    }
}

impl Stats {
    /// Every scalar counter as a `(name, value)` pair, in declaration
    /// order ([`Breakdown`] is exposed separately via
    /// [`Breakdown::counters`]). This is the stable serialization
    /// surface for persisted bench artifacts.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("on_cycles", self.on_cycles),
            ("on_time_us", self.on_time_us),
            ("off_time_us", self.off_time_us),
            ("reboots", self.reboots),
            ("jit_checkpoints", self.jit_checkpoints),
            ("region_entries", self.region_entries),
            ("region_commits", self.region_commits),
            ("region_reexecs", self.region_reexecs),
            ("log_words", self.log_words),
            ("ckpt_words", self.ckpt_words),
            ("outputs", self.outputs),
            ("violations", self.violations),
            ("fresh_violations", self.fresh_violations),
            ("consistency_violations", self.consistency_violations),
            ("runs_completed", self.runs_completed),
            ("runs_with_violation", self.runs_with_violation),
            ("instructions", self.instructions),
            ("expiry_trips", self.expiry_trips),
            ("expiry_restarts", self.expiry_restarts),
            ("expiry_giveups", self.expiry_giveups),
        ]
    }

    /// Sets the scalar counter called `name`; returns `false` for
    /// unknown names (deserializers treat that as a schema mismatch).
    pub fn set_counter(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "on_cycles" => &mut self.on_cycles,
            "on_time_us" => &mut self.on_time_us,
            "off_time_us" => &mut self.off_time_us,
            "reboots" => &mut self.reboots,
            "jit_checkpoints" => &mut self.jit_checkpoints,
            "region_entries" => &mut self.region_entries,
            "region_commits" => &mut self.region_commits,
            "region_reexecs" => &mut self.region_reexecs,
            "log_words" => &mut self.log_words,
            "ckpt_words" => &mut self.ckpt_words,
            "outputs" => &mut self.outputs,
            "violations" => &mut self.violations,
            "fresh_violations" => &mut self.fresh_violations,
            "consistency_violations" => &mut self.consistency_violations,
            "runs_completed" => &mut self.runs_completed,
            "runs_with_violation" => &mut self.runs_with_violation,
            "instructions" => &mut self.instructions,
            "expiry_trips" => &mut self.expiry_trips,
            "expiry_restarts" => &mut self.expiry_restarts,
            "expiry_giveups" => &mut self.expiry_giveups,
            _ => return false,
        };
        *slot = value;
        true
    }

    /// Total wall-clock time (on + off) in µs.
    pub fn total_time_us(&self) -> u64 {
        self.on_time_us + self.off_time_us
    }

    /// Fraction of completed runs that violated a policy — the
    /// Table 2(b) metric. Returns 0 when no runs completed.
    pub fn violating_fraction(&self) -> f64 {
        if self.runs_completed == 0 {
            0.0
        } else {
            self.runs_with_violation as f64 / self.runs_completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violating_fraction_handles_zero_runs() {
        let s = Stats::default();
        assert_eq!(s.violating_fraction(), 0.0);
    }

    #[test]
    fn violating_fraction_is_ratio() {
        let s = Stats {
            runs_completed: 4,
            runs_with_violation: 1,
            ..Default::default()
        };
        assert!((s.violating_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn counters_cover_every_field_and_round_trip() {
        // Exhaustive struct literal: adding a field without extending
        // `counters`/`set_counter` makes `b` below differ from `a`.
        let a = Stats {
            on_cycles: 1,
            on_time_us: 2,
            off_time_us: 3,
            reboots: 4,
            jit_checkpoints: 5,
            region_entries: 6,
            region_commits: 7,
            region_reexecs: 8,
            log_words: 9,
            ckpt_words: 10,
            outputs: 11,
            violations: 12,
            fresh_violations: 13,
            consistency_violations: 14,
            runs_completed: 15,
            runs_with_violation: 16,
            instructions: 17,
            expiry_trips: 18,
            expiry_restarts: 19,
            expiry_giveups: 20,
            breakdown: Breakdown {
                compute: 21,
                input: 22,
                output: 23,
                checkpoint: 24,
                undo_log: 25,
                restore: 26,
            },
        };
        // Rebuild a second Stats from the pair lists alone.
        let mut b = Stats::default();
        for (name, v) in a.counters() {
            assert!(b.set_counter(name, v), "unknown counter {name}");
        }
        for (name, v) in a.breakdown.counters() {
            assert!(b.breakdown.set_counter(name, v), "unknown counter {name}");
        }
        assert_eq!(a, b, "counters()/set_counter must cover every field");
        assert!(!b.set_counter("no_such_counter", 1));
        assert!(!b.breakdown.set_counter("no_such_counter", 1));
    }

    #[test]
    fn total_time_sums_on_and_off() {
        let s = Stats {
            on_time_us: 10,
            off_time_us: 90,
            ..Default::default()
        };
        assert_eq!(s.total_time_us(), 100);
    }
}
