//! Violation detection.
//!
//! Two detectors, cross-validating each other:
//!
//! * [`BitVector`] — the paper's §7.3 mechanism: a non-volatile bit
//!   vector with one bit per *input collection*, where a collection is
//!   identified by its provenance call chain (the paper's
//!   context-sensitivity: two calls to the same sensor helper are two
//!   distinct collections, Figure 6(b)). A bit is set when its input
//!   executes under that chain, all bits clear on power failure, and
//!   the bits of a policy's inputs are checked at the use of a fresh
//!   variable / at each later input of a consistent set. A clear bit at
//!   a check site means the input was not re-collected since the last
//!   failure — a freshness/consistency violation.
//! * [`check_trace`] — validates the *formal* Definitions 2 and 3 over
//!   the committed observation trace using the dynamic taint
//!   timestamps: a use whose dependencies were sampled in an earlier
//!   power-on era, or a consistent collection spanning eras, can match
//!   no continuous execution (the off-time is unbounded), hence
//!   violates the definitions.

#[cfg(test)]
use crate::memory::Deps;
use crate::obs::Obs;
use ocelot_analysis::taint::Prov;
use ocelot_core::{PolicyId, PolicyKind, PolicySet};
use ocelot_ir::InstrRef;
use std::collections::BTreeMap;

/// Which property a violation event breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A stale input reached a use (Definition 2).
    Freshness,
    /// A consistent set mixed inputs from different power-on intervals
    /// (Definition 3).
    Consistency,
}

/// A detected violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationEvent {
    /// The violated policy.
    pub policy: PolicyId,
    /// Freshness or consistency.
    pub kind: ViolationKind,
    /// The check site that caught it.
    pub at: InstrRef,
    /// Logical time of the check.
    pub tau: u64,
    /// Era of the check.
    pub era: u64,
    /// The input operations whose bits were clear (stale or missing).
    pub stale_ops: Vec<InstrRef>,
}

/// One check: the listed collections must all have executed since the
/// last power failure.
#[derive(Debug, Clone)]
pub struct Check {
    /// The policy being checked.
    pub policy: PolicyId,
    /// Freshness (at uses) or consistency (at later inputs of a set).
    pub kind: ViolationKind,
    /// The input chains whose bits must all be set.
    pub requires: Vec<Prov>,
}

/// Static detector configuration derived from the policy set.
#[derive(Debug, Clone, Default)]
pub struct DetectorConfig {
    /// Bit index per input collection (provenance chain).
    pub bit_of: BTreeMap<Prov, usize>,
    /// Freshness checks keyed by the use instruction.
    pub use_checks: BTreeMap<InstrRef, Vec<Check>>,
    /// Consistency checks keyed by the executing collection's chain.
    pub input_checks: BTreeMap<Prov, Vec<Check>>,
}

impl DetectorConfig {
    /// Builds the configuration from policies: fresh policies check all
    /// their input bits at every use; consistent policies check, at each
    /// collection of the set, the bits of the collections that precede
    /// it (§7.3).
    pub fn from_policies(policies: &PolicySet) -> Self {
        let mut cfg = DetectorConfig::default();
        let mut next_bit = 0usize;
        for pol in policies.iter() {
            if pol.is_vacuous() {
                continue;
            }
            let chains: Vec<Prov> = pol.inputs.iter().cloned().collect();
            for c in &chains {
                if let std::collections::btree_map::Entry::Vacant(e) = cfg.bit_of.entry(c.clone()) {
                    e.insert(next_bit);
                    next_bit += 1;
                }
            }
            match pol.kind {
                PolicyKind::Fresh => {
                    for u in &pol.uses {
                        cfg.use_checks.entry(*u).or_default().push(Check {
                            policy: pol.id,
                            kind: ViolationKind::Freshness,
                            requires: chains.clone(),
                        });
                    }
                }
                PolicyKind::Consistent(_) => {
                    // `chains` is in BTreeSet order ≈ program order of
                    // the top-level call sites; each collection checks
                    // its predecessors.
                    for (i, c) in chains.iter().enumerate() {
                        if i == 0 {
                            continue;
                        }
                        cfg.input_checks.entry(c.clone()).or_default().push(Check {
                            policy: pol.id,
                            kind: ViolationKind::Consistency,
                            requires: chains[..i].to_vec(),
                        });
                    }
                }
            }
        }
        cfg
    }

    /// Number of distinct bits.
    pub fn bits(&self) -> usize {
        self.bit_of.len()
    }

    /// Pre-resolves a check's required chains into bit indices, so the
    /// hot path never compares provenance vectors. Chains without a bit
    /// can never be stale (matching [`BitVector`]'s map-keyed path) and
    /// are dropped here, as are chains with no reporting input op.
    pub fn resolve(&self, c: &Check) -> ResolvedCheck {
        ResolvedCheck {
            policy: c.policy,
            kind: c.kind,
            requires: c
                .requires
                .iter()
                .filter_map(|ch| {
                    let b = self.bit_of.get(ch)?;
                    let op = ch.last()?;
                    Some((*b as u32, *op))
                })
                .collect(),
        }
    }
}

/// A [`Check`] with its required collections pre-resolved to bit
/// indices — what the machine binds to each check site up front.
#[derive(Debug, Clone)]
pub struct ResolvedCheck {
    /// The policy being checked.
    pub policy: PolicyId,
    /// Freshness or consistency.
    pub kind: ViolationKind,
    /// `(bit, reporting input op)` per required collection.
    pub requires: Vec<(u32, InstrRef)>,
}

/// The non-volatile bit vector, stored as dense words.
#[derive(Debug, Clone, Default)]
pub struct BitVector {
    words: Vec<u64>,
}

impl BitVector {
    /// Sets a pre-resolved bit (obtained from
    /// [`DetectorConfig::bit_of`] — the machine binds bits to
    /// collections up front, so there is exactly one staleness
    /// implementation).
    pub fn set_bit(&mut self, b: usize) {
        let w = b / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (b % 64);
    }

    fn is_set(&self, b: usize) -> bool {
        self.words
            .get(b / 64)
            .is_some_and(|w| w & (1u64 << (b % 64)) != 0)
    }

    /// Clears all bits — called on every power failure (§7.3). Keeps
    /// the word storage.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Runs pre-resolved checks against the current bits.
    pub fn run_resolved(
        &self,
        checks: &[ResolvedCheck],
        at: InstrRef,
        tau: u64,
        era: u64,
    ) -> Vec<ViolationEvent> {
        let mut out = Vec::new();
        for c in checks {
            let stale: Vec<InstrRef> = c
                .requires
                .iter()
                .filter(|(b, _)| !self.is_set(*b as usize))
                .map(|(_, op)| *op)
                .collect();
            if !stale.is_empty() {
                out.push(ViolationEvent {
                    policy: c.policy,
                    kind: c.kind,
                    at,
                    tau,
                    era,
                    stale_ops: stale,
                });
            }
        }
        out
    }
}

/// Validates the formal definitions on a committed trace.
///
/// * **Freshness (Definition 2)** — at every `Use` of a fresh policy,
///   the *most recent* collection of each of the policy's input chains
///   must lie in the use's power-on era: an intervening reboot spends
///   unbounded off-time, so no continuous execution has the same span.
/// * **Consistency (Definition 3)** — collections of one consistent set
///   arrive in rounds (one *instance* per program round). Within an
///   instance, every collection must share the era of the collections
///   before it. A fresh instance starts when the set's first chain (in
///   program order) is collected again — history from *previous* rounds
///   is old in continuous executions too and does not violate.
///
/// Returns one entry per violation.
pub fn check_trace(policies: &PolicySet, trace: &[Obs]) -> Vec<ViolationEvent> {
    let mut out = Vec::new();
    // Last committed era per chain.
    let mut last_era_of_chain: BTreeMap<std::sync::Arc<Prov>, u64> = BTreeMap::new();
    // Per consistent policy: the eras of the current instance's
    // collections.
    let mut instance: BTreeMap<PolicyId, BTreeMap<std::sync::Arc<Prov>, u64>> = BTreeMap::new();

    // Consistent-policy membership per chain.
    let mut members: BTreeMap<Prov, Vec<PolicyId>> = BTreeMap::new();
    for pol in policies.iter() {
        if matches!(pol.kind, PolicyKind::Consistent(_)) && !pol.is_vacuous() {
            for c in &pol.inputs {
                members.entry(c.clone()).or_default().push(pol.id);
            }
        }
    }

    for o in trace {
        match o {
            Obs::Input {
                at,
                tau,
                era,
                chain,
                ..
            } => {
                if let Some(pids) = members.get(&**chain) {
                    for pid in pids {
                        let pol = policies.policy(*pid);
                        let first = pol.inputs.iter().next();
                        let inst = instance.entry(*pid).or_default();
                        if first == Some(&**chain) {
                            // A new round begins with the set's first
                            // collection.
                            inst.clear();
                        }
                        let mut stale = Vec::new();
                        for (other, e) in inst.iter() {
                            if other != chain && e != era {
                                if let Some(op) = other.last() {
                                    stale.push(*op);
                                }
                            }
                        }
                        if !stale.is_empty() {
                            out.push(ViolationEvent {
                                policy: *pid,
                                kind: ViolationKind::Consistency,
                                at: *at,
                                tau: *tau,
                                era: *era,
                                stale_ops: stale,
                            });
                        }
                        inst.insert(std::sync::Arc::clone(chain), *era);
                    }
                }
                last_era_of_chain.insert(std::sync::Arc::clone(chain), *era);
            }
            Obs::Use { at, tau, era, .. } => {
                for pol in policies.iter() {
                    if pol.kind != PolicyKind::Fresh || !pol.uses.contains(at) {
                        continue;
                    }
                    let mut stale = Vec::new();
                    for chain in &pol.inputs {
                        match last_era_of_chain.get(chain) {
                            Some(e) if e == era => {}
                            _ => {
                                if let Some(op) = chain.last() {
                                    stale.push(*op);
                                }
                            }
                        }
                    }
                    stale.sort();
                    stale.dedup();
                    if !stale.is_empty() {
                        out.push(ViolationEvent {
                            policy: pol.id,
                            kind: ViolationKind::Freshness,
                            at: *at,
                            tau: *tau,
                            era: *era,
                            stale_ops: stale,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_analysis::taint::TaintAnalysis;
    use ocelot_core::build_policies;
    use ocelot_ir::{compile, FuncId, Label};

    fn policies_for(src: &str) -> (ocelot_ir::Program, PolicySet) {
        let p = compile(src).unwrap();
        ocelot_ir::validate(&p).unwrap();
        let t = TaintAnalysis::run(&p);
        let ps = build_policies(&p, &t);
        (p, ps)
    }

    #[test]
    fn config_assigns_bits_and_checks() {
        let (_, ps) = policies_for(
            r#"
            sensor a; sensor b;
            fn main() {
                let x = in(a); consistent(x, 1);
                let y = in(b); consistent(y, 1);
            }
            "#,
        );
        let cfg = DetectorConfig::from_policies(&ps);
        assert_eq!(cfg.bits(), 2);
        // The second collection checks the first.
        assert_eq!(cfg.input_checks.len(), 1);
        let (chain, checks) = cfg.input_checks.iter().next().unwrap();
        assert_eq!(checks[0].requires.len(), 1);
        assert_ne!(&checks[0].requires[0], chain);
    }

    #[test]
    fn shared_helper_collections_get_distinct_bits() {
        // Two calls to the same sensor helper: one static input op, two
        // chains, two bits — the Figure 6(b) disambiguation.
        let (_, ps) = policies_for(
            r#"
            sensor s;
            fn grab() { let v = in(s); return v; }
            fn main() {
                let a = grab(); consistent(a, 1);
                let b = grab(); consistent(b, 1);
            }
            "#,
        );
        let cfg = DetectorConfig::from_policies(&ps);
        assert_eq!(cfg.bits(), 2, "two chains despite one static input op");
        assert_eq!(cfg.input_checks.len(), 1);
    }

    #[test]
    fn bitvector_detects_missing_bit() {
        let (_, ps) = policies_for("sensor s; fn main() { let x = in(s); fresh(x); out(log, x); }");
        let cfg = DetectorConfig::from_policies(&ps);
        let mut bv = BitVector::default();
        let use_site = *cfg.use_checks.keys().next().unwrap();
        let checks: Vec<ResolvedCheck> = cfg.use_checks[&use_site]
            .iter()
            .map(|c| cfg.resolve(c))
            .collect();
        // Without setting the bit (power failed in between): violation.
        let v = bv.run_resolved(&checks, use_site, 5, 1);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Freshness);
        // After the collection executes: clean.
        let chain = cfg.bit_of.keys().next().unwrap();
        bv.set_bit(cfg.bit_of[chain]);
        assert!(bv.run_resolved(&checks, use_site, 6, 1).is_empty());
        // Power failure clears.
        bv.clear();
        assert_eq!(bv.run_resolved(&checks, use_site, 7, 2).len(), 1);
    }

    #[test]
    fn trace_checker_flags_cross_era_use() {
        let (p, ps) = policies_for("sensor s; fn main() { let x = in(s); fresh(x); out(log, x); }");
        let chain = ps.policies[0].inputs.iter().next().unwrap().clone();
        let input_op = *chain.last().unwrap();
        let use_site = *ps.policies[0].uses.iter().next().unwrap();
        let mk_input = |tau, era| Obs::Input {
            at: input_op,
            tau,
            time_us: tau,
            era,
            sensor: "s".into(),
            value: 1,
            chain: std::sync::Arc::new(chain.clone()),
        };
        let mk_use = |tau, era, dep| Obs::Use {
            at: use_site,
            tau,
            time_us: tau,
            era,
            deps: Deps::from([dep]),
        };
        let clean = vec![mk_input(1, 0), mk_use(2, 0, 1)];
        assert!(check_trace(&ps, &clean).is_empty());
        let dirty = vec![
            mk_input(1, 0),
            Obs::Reboot {
                off_us: 500,
                ended_era: 0,
            },
            mk_use(2, 1, 1),
        ];
        let v = check_trace(&ps, &dirty);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Freshness);
        let _ = p;
    }

    #[test]
    fn trace_checker_flags_split_consistent_set() {
        let (_, ps) = policies_for(
            r#"
            sensor a; sensor b;
            fn main() {
                let x = in(a); consistent(x, 1);
                let y = in(b); consistent(y, 1);
            }
            "#,
        );
        let chains: Vec<Prov> = ps.policies[0].inputs.iter().cloned().collect();
        let mk = |chain: &Prov, tau, era| Obs::Input {
            at: *chain.last().unwrap(),
            tau,
            time_us: tau,
            era,
            sensor: "x".into(),
            value: 0,
            chain: std::sync::Arc::new(chain.clone()),
        };
        let clean = vec![mk(&chains[0], 1, 0), mk(&chains[1], 2, 0)];
        assert!(check_trace(&ps, &clean).is_empty());
        let dirty = vec![mk(&chains[0], 1, 0), mk(&chains[1], 2, 1)];
        let v = check_trace(&ps, &dirty);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Consistency);
    }

    #[test]
    fn resolve_drops_untracked_chains() {
        // A check requiring a chain with no bit can never report it
        // stale (the map-keyed semantics resolve() must preserve), and
        // running no checks reports nothing.
        let (_, ps) = policies_for("sensor s; fn main() { let x = in(s); fresh(x); out(log, x); }");
        let cfg = DetectorConfig::from_policies(&ps);
        let bv = BitVector::default();
        let bogus = InstrRef {
            func: FuncId(7),
            label: Label(99),
        };
        let check = Check {
            policy: ocelot_core::PolicyId(0),
            kind: ViolationKind::Freshness,
            requires: vec![vec![bogus]], // never interned, never bitted
        };
        let resolved = cfg.resolve(&check);
        assert!(resolved.requires.is_empty(), "untracked chain dropped");
        assert!(bv.run_resolved(&[resolved], bogus, 0, 0).is_empty());
        assert!(bv.run_resolved(&[], bogus, 0, 0).is_empty());
    }
}
