//! A Samoyed-style execution model: atomic *functions* with scaling
//! rules and software fallbacks (§7.4, Table 3).
//!
//! Samoyed \[34\] asks the programmer to move code that must execute
//! atomically into a dedicated function, which the runtime executes as
//! one undo-logged region. Two extra constructs handle functions that
//! are too expensive to complete on one charge of the buffer:
//!
//! * a **scaling rule** shrinks a workload parameter (e.g. the number of
//!   samples averaged) and retries;
//! * a **software fallback** runs a non-atomic version when scaling
//!   bottoms out.
//!
//! Ocelot deliberately provides neither (§9): its inferred regions are
//! the *smallest* that satisfy the timing constraints, so if one still
//! does not fit, "the specified timing constraints are fundamentally
//! unsatisfiable with the energy capacity of the device" (§8) — but a
//! Samoyed programmer can trade constraint strength for progress. This
//! module makes that trade-off measurable:
//! [`run_scaled`] drives a parameterized application, halving the
//! parameter on [`RunOutcome::Livelock`] and falling back to JIT
//! execution below the minimum, exactly the strategy column of Table 3.

use crate::machine::{Machine, RunOutcome};
use crate::model::{build, Built, ExecModel};
use crate::stats::Stats;
use ocelot_core::CoreError;
use ocelot_hw::energy::CostModel;
use ocelot_hw::power::PowerSupply;
use ocelot_hw::sensors::Environment;
use ocelot_ir::{FuncId, Op, Program};

/// Wraps each function named in `atomic_fns` in its own atomic region —
/// Samoyed's `atomic fn` construct — and prepares the program for
/// execution (policies are kept for violation detection).
///
/// The `startatom` lands at the entry block's first instruction slot and
/// the `endatom` immediately before the return landing pad's terminator,
/// so the whole body (including callees) executes atomically.
///
/// # Errors
///
/// Returns [`CoreError`] if a named function does not exist or the
/// resulting regions are malformed.
pub fn samoyed_transform(mut p: Program, atomic_fns: &[&str]) -> Result<Built, CoreError> {
    let targets: Vec<FuncId> = atomic_fns
        .iter()
        .map(|name| {
            p.func_by_name(name).ok_or_else(|| {
                CoreError::region(format!("atomic function `{name}` is not declared"))
            })
        })
        .collect::<Result<_, _>>()?;
    for func in targets {
        let region = p.fresh_region();
        let f = p.func_mut(func);
        let start_label = f.fresh_label();
        let end_label = f.fresh_label();
        let entry = f.entry;
        let exit = f.exit;
        // Markers adopt a neighboring instruction's span (or the block
        // terminator's) so spanned diagnostics keep working here too.
        let entry_span = f
            .block(entry)
            .instrs
            .first()
            .map_or(f.block(entry).term_span, |i| i.span);
        let exit_span = f
            .block(exit)
            .instrs
            .last()
            .map_or(f.block(exit).term_span, |i| i.span);
        f.block_mut(entry).instrs.insert(
            0,
            ocelot_ir::Inst {
                label: start_label,
                op: Op::AtomStart { region },
                span: entry_span,
            },
        );
        f.block_mut(exit).instrs.push(ocelot_ir::Inst {
            label: end_label,
            op: Op::AtomEnd { region },
            span: exit_span,
        });
    }
    build(p, ExecModel::AtomicsOnly)
}

/// A parameterized Samoyed application: `source_for(n)` renders the
/// program at workload size `n`; `atomic_fns` names the functions to
/// execute atomically.
pub struct ScaledApp<'a> {
    /// Renders the source at a given workload parameter.
    pub source_for: &'a dyn Fn(u64) -> String,
    /// Initial workload parameter (e.g. photo readings to average).
    pub initial: u64,
    /// Smallest acceptable parameter; scaling below it triggers the
    /// fallback.
    pub min: u64,
    /// Functions executed atomically.
    pub atomic_fns: Vec<String>,
}

/// What one scaled run produced.
#[derive(Debug, Clone)]
pub struct ScaledOutcome {
    /// The run completed (atomically or via fallback).
    pub completed: bool,
    /// The workload parameter of the completing configuration.
    pub final_param: u64,
    /// How many times the scaling rule fired.
    pub scalings: u32,
    /// True when the non-atomic software fallback ran.
    pub fell_back: bool,
    /// Detector violations during the completing run (only the fallback
    /// can violate; atomic completions cannot).
    pub violations: u64,
    /// Stats of the completing (or final) machine.
    pub stats: Stats,
}

/// Runs `app` to completion under Samoyed semantics: execute atomically;
/// on livelock halve the parameter; below `app.min`, run the software
/// fallback (plain JIT, atomicity abandoned).
///
/// `supply` is rebuilt per attempt so each configuration starts from a
/// full buffer; `reexec_limit` bounds how many consecutive rollbacks
/// diagnose a livelock.
///
/// # Errors
///
/// Propagates build errors from the transform.
///
/// # Panics
///
/// Panics if `app.source_for` renders source that does not compile —
/// the rule author's responsibility, as in Samoyed.
pub fn run_scaled(
    app: &ScaledApp<'_>,
    env: &Environment,
    costs: &CostModel,
    supply: &dyn Fn() -> Box<dyn PowerSupply>,
    reexec_limit: u64,
    max_steps: u64,
) -> Result<ScaledOutcome, CoreError> {
    let atomic_fns: Vec<&str> = app.atomic_fns.iter().map(String::as_str).collect();
    let mut param = app.initial;
    let mut scalings = 0u32;
    loop {
        let src = (app.source_for)(param);
        let program = ocelot_ir::compile(&src).expect("scaled source must compile");
        let built = samoyed_transform(program, &atomic_fns)?;
        let mut m = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            env.clone(),
            costs.clone(),
            supply(),
        )
        .with_reexec_limit(reexec_limit);
        match m.run_once(max_steps) {
            RunOutcome::Completed { violated } => {
                return Ok(ScaledOutcome {
                    completed: true,
                    final_param: param,
                    scalings,
                    fell_back: false,
                    violations: violated as u64,
                    stats: m.stats().clone(),
                });
            }
            RunOutcome::Livelock { .. } if param / 2 >= app.min => {
                // Scaling rule: halve the workload and retry.
                param /= 2;
                scalings += 1;
            }
            RunOutcome::Livelock { .. } => {
                // Fallback: the non-atomic software path.
                return run_fallback(app, param, env, costs, supply, max_steps, scalings);
            }
            RunOutcome::StepLimit => {
                return Ok(ScaledOutcome {
                    completed: false,
                    final_param: param,
                    scalings,
                    fell_back: false,
                    violations: 0,
                    stats: m.stats().clone(),
                });
            }
        }
    }
}

fn run_fallback(
    app: &ScaledApp<'_>,
    param: u64,
    env: &Environment,
    costs: &CostModel,
    supply: &dyn Fn() -> Box<dyn PowerSupply>,
    max_steps: u64,
    scalings: u32,
) -> Result<ScaledOutcome, CoreError> {
    let src = (app.source_for)(param);
    let program = ocelot_ir::compile(&src).expect("fallback source must compile");
    let built = build(program, ExecModel::Jit)?;
    let mut m = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        env.clone(),
        costs.clone(),
        supply(),
    );
    let outcome = m.run_once(max_steps);
    Ok(ScaledOutcome {
        completed: matches!(outcome, RunOutcome::Completed { .. }),
        final_param: param,
        scalings,
        fell_back: true,
        violations: m.stats().violations,
        stats: m.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_hw::energy::Capacitor;
    use ocelot_hw::harvest::Harvester;
    use ocelot_hw::power::{ContinuousPower, HarvestedPower};
    use ocelot_hw::sensors::Signal;

    fn photo_src(n: u64) -> String {
        format!(
            r#"
            sensor photo;
            fn sample_avg() {{
                let sum = 0;
                repeat {n} {{
                    let v = in(photo);
                    consistent(v, 1);
                    sum = sum + v;
                }}
                return sum / {n};
            }}
            fn main() {{
                let avg = sample_avg();
                out(log, avg);
            }}
            "#
        )
    }

    fn tiny_supply(capacity_nj: f64) -> Box<dyn PowerSupply> {
        Box::new(HarvestedPower::new(
            Capacitor::new(capacity_nj, 3_000.0),
            Harvester::Constant { power_nw: 1.0 },
        ))
    }

    #[test]
    fn transform_wraps_named_function() {
        let p = ocelot_ir::compile(&photo_src(5)).unwrap();
        let b = samoyed_transform(p, &["sample_avg"]).unwrap();
        assert_eq!(b.regions.len(), 1);
        let host = b.program.func(b.regions[0].func);
        assert_eq!(host.name, "sample_avg");
        // The region must cover the loop inputs: the checker agrees the
        // consistency policy is satisfied.
        let report = ocelot_core::check_regions(&b.program, &b.policies).unwrap();
        assert!(report.passes(), "{report:?}");
    }

    #[test]
    fn transform_rejects_unknown_function() {
        let p = ocelot_ir::compile("fn main() { skip; }").unwrap();
        let err = samoyed_transform(p, &["nope"]).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn ample_energy_completes_unscaled() {
        let app = ScaledApp {
            source_for: &photo_src,
            initial: 5,
            min: 1,
            atomic_fns: vec!["sample_avg".into()],
        };
        let env = Environment::new().with("photo", Signal::Constant(10));
        let out = run_scaled(
            &app,
            &env,
            &CostModel::default(),
            &|| Box::new(ContinuousPower),
            10,
            1_000_000,
        )
        .unwrap();
        assert!(out.completed);
        assert_eq!(out.final_param, 5);
        assert_eq!(out.scalings, 0);
        assert!(!out.fell_back);
        assert_eq!(out.violations, 0);
    }

    #[test]
    fn tight_buffer_triggers_scaling_rule() {
        // 5 readings at ~4 µJ each can't fit a ~13 µJ usable budget, but
        // 2 (after one halving) can.
        let app = ScaledApp {
            source_for: &photo_src,
            initial: 5,
            min: 1,
            atomic_fns: vec!["sample_avg".into()],
        };
        let env = Environment::new().with("photo", Signal::Constant(10));
        let out = run_scaled(
            &app,
            &env,
            &CostModel::default(),
            &|| tiny_supply(16_000.0),
            8,
            2_000_000,
        )
        .unwrap();
        assert!(out.completed, "scaling must rescue the run");
        assert!(out.scalings >= 1, "the rule fired");
        assert!(out.final_param < 5);
        assert!(!out.fell_back);
        assert_eq!(out.violations, 0, "atomic completion keeps the constraint");
    }

    #[test]
    fn exhausted_scaling_falls_back_to_jit() {
        // Usable energy (9 µJ − 3 µJ trigger = 6 µJ) passes one 4 µJ
        // sensor read under JIT but never fits two reads in one atomic
        // body: scaling bottoms out and the fallback runs non-atomically.
        let app = ScaledApp {
            source_for: &photo_src,
            initial: 4,
            min: 2,
            atomic_fns: vec!["sample_avg".into()],
        };
        let env = Environment::new().with("photo", Signal::Constant(10));
        let out = run_scaled(
            &app,
            &env,
            &CostModel::default(),
            &|| tiny_supply(9_000.0),
            6,
            4_000_000,
        )
        .unwrap();
        assert!(out.fell_back, "fallback must run");
        assert!(out.completed, "JIT always makes progress");
    }
}
