//! Execution backends: the interpreter oracle and the compiled engine.
//!
//! The paper's evaluation simulates millions of instruction steps per
//! (benchmark, model, seed) cell. The interpreter in
//! [`crate::machine`] re-dispatches every step through nested matches
//! on the IR — cloning the operation, re-deriving its cycle cost, and
//! probing three `BTreeMap`s (injector targets, detector check sites,
//! fresh-use logging) that are almost always empty at the current site.
//!
//! The compiled backend removes all of that from the hot path by
//! resolving it **once per program**:
//!
//! * every instruction is pre-matched into a `compile::Action` with
//!   globals resolved to [`crate::memory::NvMem`] slots and expressions
//!   lowered to a pre-classified form (`compile::CExpr`);
//! * cycle costs and their µs conversions are pre-computed wherever the
//!   interpreter's cost is static (everything except `startatom`'s
//!   state-dependent checkpoint and stores through references);
//! * detector/fresh-use check sites and injector targets become
//!   per-step booleans, so unchecked steps skip the lookups entirely;
//! * maximal runs of "pure compute" steps are pre-grouped into
//!   *batches* whose energy is drawn in one
//!   [`ocelot_hw::power::PowerSupply::consume_batch`] call — taken only
//!   on continuous supplies, where the comparator cannot trip mid-run,
//!   so per-instruction failure semantics are preserved exactly.
//!
//! The seam between the backends is semantic, not structural: anything
//! *checked or observable* — inputs, outputs, detector checks, region
//! entry/commit/rollback, checkpoints, power failure, TICS mitigation —
//! runs through the same [`crate::machine::Machine`] helpers in both
//! engines, over the same machine state. The differential suites in
//! `ocelot-bench` hold the two backends to identical
//! [`crate::stats::Stats`], observation traces, and
//! [`crate::machine::RunOutcome`] sequences.

pub(crate) mod compile;
mod run;

pub(crate) use compile::CompiledProgram;

/// Which engine a [`crate::machine::Machine`] drives its runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecBackend {
    /// The instruction-at-a-time interpreter — the semantics oracle.
    #[default]
    Interp,
    /// The pre-resolved engine compiled by the `compile` pass:
    /// identical observable behavior, no per-step map lookups or op
    /// matching.
    Compiled,
}

impl ExecBackend {
    /// Stable lowercase name, used by CLI flags and persisted bench
    /// artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            ExecBackend::Interp => "interp",
            ExecBackend::Compiled => "compiled",
        }
    }

    /// Inverse of [`ExecBackend::name`], for tooling that reads backend
    /// names back from flags or artifacts.
    pub fn parse(name: &str) -> Option<ExecBackend> {
        match name {
            "interp" => Some(ExecBackend::Interp),
            "compiled" => Some(ExecBackend::Compiled),
            _ => None,
        }
    }

    /// Both backends, interpreter (oracle) first.
    pub fn all() -> [ExecBackend; 2] {
        [ExecBackend::Interp, ExecBackend::Compiled]
    }
}

/// How aggressively the compile pass optimizes. Every level produces
/// byte-identical [`crate::stats::Stats`], observation traces, and
/// [`crate::machine::RunOutcome`] sequences — optimization only removes
/// host-side work (taint bookkeeping, expression walking, check probes
/// whose outcome is statically known), never simulated cycles, time, or
/// observations. The interpreter ignores the level entirely: it is the
/// unoptimized oracle every level is differentially tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// Direct 1:1 compilation of the lowered IR (the PR 3 backend).
    O0,
    /// SSA-driven constant propagation and folding, constant-branch
    /// straightening, and dead-store shrinking.
    O1,
    /// Everything in `O1`, plus taint-free evaluation of expressions
    /// whose dependency sets are provably empty or unobservable, and
    /// elision of dynamic check probes that are dominated by the
    /// collections they require.
    #[default]
    O2,
}

impl OptLevel {
    /// Stable numeric name (`"0"`/`"1"`/`"2"`), used by `--opt` and
    /// persisted nowhere (artifacts are opt-level independent by
    /// construction).
    pub fn name(&self) -> &'static str {
        match self {
            OptLevel::O0 => "0",
            OptLevel::O1 => "1",
            OptLevel::O2 => "2",
        }
    }

    /// Inverse of [`OptLevel::name`].
    pub fn parse(name: &str) -> Option<OptLevel> {
        match name {
            "0" => Some(OptLevel::O0),
            "1" => Some(OptLevel::O1),
            "2" => Some(OptLevel::O2),
            _ => None,
        }
    }

    /// All levels, unoptimized first.
    pub fn all() -> [OptLevel; 3] {
        [OptLevel::O0, OptLevel::O1, OptLevel::O2]
    }

    /// Dense index for per-level caches.
    pub(crate) fn index(&self) -> usize {
        *self as usize
    }

    /// The CI knob: reads `OCELOT_OPT`. Unset (or set to the empty
    /// string) means the default level; a non-empty value must be
    /// `0`/`1`/`2`. Test suites that exercise the compiled backend at
    /// "whatever level CI asked for" construct their machines with this.
    ///
    /// An invalid non-empty value **aborts the process** (exit code 2)
    /// with a message naming the accepted values: silently falling back
    /// to the default would make a CI matrix typo like `OCELOT_OPT=O2`
    /// vacuously test the default level instead of the requested one.
    pub fn from_env() -> OptLevel {
        match Self::level_from_env_value(std::env::var("OCELOT_OPT").ok().as_deref()) {
            Ok(level) => level,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// The decision behind [`OptLevel::from_env`], factored over the
    /// raw variable value so the rejection is testable without racing
    /// other threads on the process environment.
    pub fn level_from_env_value(value: Option<&str>) -> Result<OptLevel, String> {
        match value {
            None | Some("") => Ok(OptLevel::default()),
            Some(v) => OptLevel::parse(v).ok_or_else(|| {
                format!(
                    "invalid OCELOT_OPT value `{v}`: accepted values are \
                     `0`, `1` or `2` (or unset for the default level)"
                )
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in ExecBackend::all() {
            assert_eq!(ExecBackend::parse(b.name()), Some(b));
        }
        assert_eq!(ExecBackend::parse("jit"), None);
        assert_eq!(ExecBackend::default(), ExecBackend::Interp);
    }

    #[test]
    fn opt_level_names_round_trip() {
        for (i, o) in OptLevel::all().into_iter().enumerate() {
            assert_eq!(OptLevel::parse(o.name()), Some(o));
            assert_eq!(o.index(), i);
        }
        assert_eq!(OptLevel::parse("3"), None);
        assert_eq!(OptLevel::default(), OptLevel::O2);
    }

    #[test]
    fn env_level_accepts_unset_empty_and_valid_values() {
        assert_eq!(OptLevel::level_from_env_value(None), Ok(OptLevel::O2));
        assert_eq!(OptLevel::level_from_env_value(Some("")), Ok(OptLevel::O2));
        for o in OptLevel::all() {
            assert_eq!(OptLevel::level_from_env_value(Some(o.name())), Ok(o));
        }
    }

    #[test]
    fn env_level_rejects_unparsable_values_naming_the_accepted_ones() {
        for bad in ["O2", "3", "fast", " 2", "two"] {
            let err = OptLevel::level_from_env_value(Some(bad))
                .expect_err("an invalid non-empty OCELOT_OPT must not fall back silently");
            assert!(err.contains(bad), "names the offending value: {err}");
            assert!(
                err.contains("`0`, `1` or `2`"),
                "names the accepted values: {err}"
            );
        }
    }
}
