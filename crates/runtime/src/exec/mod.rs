//! Execution backends: the interpreter oracle and the compiled engine.
//!
//! The paper's evaluation simulates millions of instruction steps per
//! (benchmark, model, seed) cell. The interpreter in
//! [`crate::machine`] re-dispatches every step through nested matches
//! on the IR — cloning the operation, re-deriving its cycle cost, and
//! probing three `BTreeMap`s (injector targets, detector check sites,
//! fresh-use logging) that are almost always empty at the current site.
//!
//! The compiled backend removes all of that from the hot path by
//! resolving it **once per program**:
//!
//! * every instruction is pre-matched into a `compile::Action` with
//!   globals resolved to [`crate::memory::NvMem`] slots and expressions
//!   lowered to a pre-classified form (`compile::CExpr`);
//! * cycle costs and their µs conversions are pre-computed wherever the
//!   interpreter's cost is static (everything except `startatom`'s
//!   state-dependent checkpoint and stores through references);
//! * detector/fresh-use check sites and injector targets become
//!   per-step booleans, so unchecked steps skip the lookups entirely;
//! * maximal runs of "pure compute" steps are pre-grouped into
//!   *batches* whose energy is drawn in one
//!   [`ocelot_hw::power::PowerSupply::consume_batch`] call — taken only
//!   on continuous supplies, where the comparator cannot trip mid-run,
//!   so per-instruction failure semantics are preserved exactly.
//!
//! The seam between the backends is semantic, not structural: anything
//! *checked or observable* — inputs, outputs, detector checks, region
//! entry/commit/rollback, checkpoints, power failure, TICS mitigation —
//! runs through the same [`crate::machine::Machine`] helpers in both
//! engines, over the same machine state. The differential suites in
//! `ocelot-bench` hold the two backends to identical
//! [`crate::stats::Stats`], observation traces, and
//! [`crate::machine::RunOutcome`] sequences.

pub(crate) mod compile;
mod run;

pub(crate) use compile::CompiledProgram;

/// Which engine a [`crate::machine::Machine`] drives its runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecBackend {
    /// The instruction-at-a-time interpreter — the semantics oracle.
    #[default]
    Interp,
    /// The pre-resolved engine compiled by the `compile` pass:
    /// identical observable behavior, no per-step map lookups or op
    /// matching.
    Compiled,
}

impl ExecBackend {
    /// Stable lowercase name, used by CLI flags and persisted bench
    /// artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            ExecBackend::Interp => "interp",
            ExecBackend::Compiled => "compiled",
        }
    }

    /// Inverse of [`ExecBackend::name`], for tooling that reads backend
    /// names back from flags or artifacts.
    pub fn parse(name: &str) -> Option<ExecBackend> {
        match name {
            "interp" => Some(ExecBackend::Interp),
            "compiled" => Some(ExecBackend::Compiled),
            _ => None,
        }
    }

    /// Both backends, interpreter (oracle) first.
    pub fn all() -> [ExecBackend; 2] {
        [ExecBackend::Interp, ExecBackend::Compiled]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in ExecBackend::all() {
            assert_eq!(ExecBackend::parse(b.name()), Some(b));
        }
        assert_eq!(ExecBackend::parse("jit"), None);
        assert_eq!(ExecBackend::default(), ExecBackend::Interp);
    }
}
