//! The compiled engine's run loop.
//!
//! Mirrors `Machine::step` attempt-for-attempt — injector check, cost
//! charge, detector checks, execute — but over pre-resolved
//! [`Step`]s, and lifts maximal pure-compute runs into single batched
//! charges when the supply is continuous (see [`super::compile`] for
//! what makes a step batchable). Everything checked or observable
//! delegates to the shared `Machine` helpers, so both backends execute
//! the paper's semantics through one implementation.

use super::compile::{
    self, Action, ArgBind, Batch, CExpr, CompiledBlock, Cost, LocalDst, RefArgPlan, Step,
};
use super::CompiledProgram;
use crate::machine::{eval_binop, Machine, RunOutcome};
use crate::memory::{RefTarget, RetSlot, Tainted};
use crate::obs::Obs;
use ocelot_hw::energy::PowerEvent;
use ocelot_ir::ast::UnOp;
use ocelot_ir::FuncId;
use std::sync::Arc;

/// Breakdown/charge bookkeeping for one whole batch: the same totals
/// the interpreter accumulates per instruction, applied in one shot.
impl<'p> Machine<'p> {
    /// Runs `main` once on the compiled engine. Counts *attempts*
    /// exactly like the interpreter's `run_once`, so `StepLimit`
    /// boundaries agree between backends.
    pub(crate) fn run_once_compiled(&mut self, max_steps: u64) -> RunOutcome {
        if self.compiled.is_none() {
            // Injector-free machines share one compiled program per
            // core (compilation bakes in only core data plus the NV
            // slot layout, which is a pure function of the declared
            // globals); injector targets are baked into steps, so those
            // machines compile privately.
            let cp = if self.injector_targets.is_empty() {
                Arc::clone(
                    self.core.shared_compiled[self.opt.index()]
                        .get_or_init(|| Arc::new(compile::compile(self))),
                )
            } else {
                Arc::new(compile::compile(self))
            };
            self.compiled = Some(cp);
        }
        let cp = Arc::clone(self.compiled.as_ref().expect("just compiled"));
        let violations_before = self.dev.stats.violations;
        // Batched draws are exact only when the comparator cannot trip
        // mid-run (see `PowerSupply::consume_batch`).
        let batching = self.supply.is_continuous();
        // Check elision leans on bit monotonicity: bits are only cleared
        // by power failure, so a supply that can fail mid-run (or an
        // injector that forces failures, or a TICS window whose expiry
        // probe elision would also skip) keeps every probe dynamic.
        self.elide_checks =
            batching && self.injector_targets.is_empty() && self.expiry_window.is_none();
        let mut steps = 0u64;
        loop {
            if batching {
                if let Some(top) = self.dev.vol.top() {
                    let (func, block, index) = (top.func, top.block, top.index);
                    let cb = &cp.funcs[func.0 as usize].blocks[block.0 as usize];
                    let batch = &cb.batches[index];
                    // Take the fast path only when every attempt in the
                    // run fits under the step budget, so the limit lands
                    // on the same instruction as the per-step loop.
                    if batch.totals.len > 0 && steps + u64::from(batch.totals.len) <= max_steps {
                        steps += u64::from(batch.totals.len);
                        if self.exec_batch(&cp, func, cb, index, batch) {
                            return self.complete_run(violations_before);
                        }
                        continue;
                    }
                }
            }
            steps += 1;
            if steps > max_steps {
                return RunOutcome::StepLimit;
            }
            if self.compiled_step(&cp) {
                return self.complete_run(violations_before);
            }
            if let Some(region) = self.dev.livelocked {
                return RunOutcome::Livelock { region };
            }
        }
    }

    /// Charges a whole batch (possibly spanning unconditional jumps) in
    /// one draw, then runs its steps flat-out. Returns true when `main`
    /// returned.
    fn exec_batch(
        &mut self,
        cp: &CompiledProgram<'p>,
        func: FuncId,
        cb: &CompiledBlock<'p>,
        start: usize,
        batch: &Batch,
    ) -> bool {
        self.dev.stats.breakdown.compute += batch.totals.compute_cycles;
        self.dev.stats.breakdown.output += batch.totals.output_cycles;
        self.dev.stats.on_cycles += batch.totals.cycles;
        self.dev.now_us += batch.totals.us;
        self.dev.stats.on_time_us += batch.totals.us;
        // On a continuous supply this cannot report LowPower; the value
        // is ignored for the same reason the interpreter ignores
        // `consume` results after completion.
        let _ = self
            .supply
            .consume_batch(self.core.costs.cycles_to_nj(batch.totals.cycles));
        for step in &cb.steps[start..start + batch.head as usize] {
            self.dev.tau += 1;
            self.dev.stats.instructions += 1;
            if self.exec_action(step) {
                return true;
            }
        }
        // Continuation segments: the jump that ended the previous
        // segment repositioned the frame at the segment's offset 0.
        for (blk, len) in &batch.cont {
            let cb2 = &cp.funcs[func.0 as usize].blocks[blk.0 as usize];
            debug_assert_eq!(
                self.dev.vol.top().map(|t| (t.func, t.block, t.index)),
                Some((func, *blk, 0)),
                "the followed jump landed where the batch plan expected"
            );
            for step in &cb2.steps[..*len as usize] {
                self.dev.tau += 1;
                self.dev.stats.instructions += 1;
                if self.exec_action(step) {
                    return true;
                }
            }
        }
        false
    }

    /// One checked attempt, mirroring the interpreter's `step` stage
    /// for stage. Returns true when the program run completed.
    fn compiled_step(&mut self, cp: &CompiledProgram<'p>) -> bool {
        let Some(top) = self.dev.vol.top() else {
            return true;
        };
        let cb = &cp.funcs[top.func.0 as usize].blocks[top.block.0 as usize];
        let step = &cb.steps[top.index];
        let here = step.iref;

        // 1. Pathological injection (pre-bound site flag).
        if step.inject && !self.injector_fired.contains(&here) {
            self.injector_fired.insert(here);
            self.power_fail();
            return false;
        }

        // 2. Pay for the operation; exhaustion fails before it takes
        //    effect.
        let low = match step.cost {
            Cost::Static { cycles, us } => {
                self.book_breakdown(step, cycles);
                self.dev.stats.on_cycles += cycles;
                self.dev.now_us += us;
                self.dev.stats.on_time_us += us;
                self.supply.consume(self.core.costs.cycles_to_nj(cycles))
            }
            Cost::Dynamic => {
                let cycles = self.dynamic_cost(&step.action);
                self.book_breakdown(step, cycles);
                self.charge(cycles)
            }
        };
        if low == PowerEvent::LowPower {
            self.power_fail();
            return false;
        }

        // 3. Detector / expiry checks, only at pre-bound sites. Probes
        //    the optimizer proved redundant (see
        //    `MachineCore::elidable_sites`) are skipped when this run's
        //    supply cannot clear bits mid-run; the fresh-use trace
        //    observations are still recorded identically.
        if step.checked {
            if step.elidable && self.elide_checks {
                ocelot_telemetry::metrics::CHECKS_ELIDED.incr();
                self.log_fresh_uses(here);
            } else if self.run_checks(here) {
                self.mitigation_restart();
                return false;
            }
        }

        // 4. Execute.
        self.dev.tau += 1;
        self.dev.stats.instructions += 1;
        self.exec_action(step)
    }

    fn book_breakdown(&mut self, step: &Step<'p>, cycles: u64) {
        match step.cat {
            compile::Cat::Compute => self.dev.stats.breakdown.compute += cycles,
            compile::Cat::Input => self.dev.stats.breakdown.input += cycles,
            compile::Cat::Output => self.dev.stats.breakdown.output += cycles,
            compile::Cat::Checkpoint => self.dev.stats.breakdown.checkpoint += cycles,
        }
    }

    /// State-dependent costs — charged through the same shared helpers
    /// the interpreter's `op_cost` uses.
    fn dynamic_cost(&self, action: &Action<'p>) -> u64 {
        match action {
            Action::AtomStart { region } => self.atom_start_cost(*region),
            Action::AssignDeref { var, .. } => self.deref_write_cost(var),
            Action::AssignDyn { place, .. } => self.assign_place_cost(place),
            _ => unreachable!("only state-dependent actions carry Cost::Dynamic"),
        }
    }

    /// Executes one pre-resolved step. Returns true when `main`
    /// returned.
    fn exec_action(&mut self, step: &Step<'p>) -> bool {
        let here = step.iref;
        match &step.action {
            Action::Skip => {
                self.advance();
            }
            Action::Bind { dst, src } => {
                let v = self.ceval(src);
                let top = self.dev.vol.top_mut().expect("frame exists");
                match dst {
                    LocalDst::Slot(s) => top.set_slot(*s, v),
                    LocalDst::Spill(name) => top.set_extra(name, v),
                }
                self.advance();
            }
            Action::AssignLocal {
                slot,
                var,
                bind,
                src,
            } => {
                let v = self.ceval(src);
                let top = self.dev.vol.top_mut().expect("frame exists");
                if *bind || top.get_slot(*slot).is_some() {
                    // A reclassified always-bound local binds its slot
                    // on first store (dead-on-reboot by SSA liveness).
                    top.set_slot(*slot, v);
                } else if let Some(t) = top.refs.get(*var).cloned() {
                    // Unreachable in validated programs (classification
                    // excludes by-ref params), kept for exactness.
                    self.write_target(&t, v);
                } else {
                    self.nv_write_scalar(var, v);
                }
                self.advance();
            }
            Action::AssignGlobal { slot, src } => {
                let v = self.ceval(src);
                self.nv_write_scalar_slot(*slot, v);
                self.advance();
            }
            Action::AssignIndex {
                name,
                slot,
                idx,
                src,
            } => {
                let v = self.ceval(src);
                let i = self.ceval(idx);
                match slot {
                    Some(s) => {
                        let (cell, old) = self.dev.nv.write_idx_slot(*s, i.value, v);
                        let arc = Arc::clone(self.dev.nv.array_name(*s));
                        self.log_cell_undo(arc, cell, old);
                    }
                    None => {
                        let (cell, old) = self.dev.nv.write_idx(name, i.value, v);
                        self.log_cell_undo(Arc::from(*name), cell, old);
                    }
                }
                self.advance();
            }
            Action::AssignDeref { var, src } => {
                let v = self.ceval(src);
                let t = self
                    .ref_target(var)
                    .unwrap_or_else(|| RefTarget::Global(self.global_name(var)));
                self.write_target(&t, v);
                self.advance();
            }
            Action::AssignDyn { place, src } => {
                let v = self.ceval(src);
                self.write_place(place, v);
                self.advance();
            }
            Action::Input {
                dst,
                sensor,
                sensor_name,
                chan,
                chain,
            } => {
                let (slot, var) = match dst {
                    LocalDst::Slot(s) => (Some(*s), ""),
                    LocalDst::Spill(name) => (None, *name),
                };
                match chain {
                    // Fixed call stack: everything pre-resolved.
                    Some(id) => self.input_core(
                        here,
                        slot,
                        var,
                        sensor,
                        Arc::clone(sensor_name),
                        *chan,
                        Some(*id),
                        None,
                    ),
                    // Data-dependent call path: rebuild and probe.
                    None => {
                        let chain = self.dynamic_chain(here);
                        let id = self.core.chains.lookup(&chain);
                        self.input_core(
                            here,
                            slot,
                            var,
                            sensor,
                            Arc::clone(sensor_name),
                            *chan,
                            id,
                            Some(chain),
                        );
                    }
                }
            }
            Action::Call { plan } => {
                let caller_idx = self.dev.vol.frames.len() - 1;
                let mut frame = self.take_frame(
                    plan.callee,
                    plan.entry,
                    plan.nslots as usize,
                    plan.ret_dst.clone(),
                    here,
                );
                for bind in &plan.binds {
                    match bind {
                        ArgBind::Value { slot, src } => {
                            let v = self.ceval(src);
                            frame.set_slot(*slot, v);
                        }
                        ArgBind::ValueSpill { name, src } => {
                            let v = self.ceval(src);
                            frame.set_extra(name, v);
                        }
                        ArgBind::Ref { param, plan } => {
                            let target = self.resolve_ref_plan(caller_idx, plan);
                            frame.refs.insert(Arc::clone(param), target);
                        }
                    }
                }
                // Resume point: after the call.
                self.advance();
                self.dev.vol.frames.push(frame);
            }
            Action::Output { channel, args } => {
                let vals: Vec<Tainted> = args.iter().map(|e| self.ceval(e)).collect();
                let mut deps = crate::memory::Deps::new();
                for v in &vals {
                    deps.extend(v.deps.iter().copied());
                }
                self.dev.obs.push(Obs::Output {
                    at: here,
                    tau: self.dev.tau,
                    era: self.dev.era,
                    channel: Arc::clone(channel),
                    values: vals.iter().map(|v| v.value).collect(),
                    deps,
                });
                self.dev.stats.outputs += 1;
                self.advance();
            }
            Action::AtomStart { region } => {
                // Advance first: rollback resumes after the marker.
                self.advance();
                self.atom_start(*region);
            }
            Action::AtomEnd { region } => {
                self.atom_end(*region);
                self.advance();
            }
            Action::Jump(b) => {
                let top = self.dev.vol.top_mut().expect("frame exists");
                top.block = *b;
                top.index = 0;
            }
            Action::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let v = self.ceval(cond);
                let top = self.dev.vol.top_mut().expect("frame exists");
                top.block = if v.value != 0 { *then_bb } else { *else_bb };
                top.index = 0;
            }
            Action::Ret(e) => {
                let v = e
                    .as_ref()
                    .map(|e| self.ceval(e))
                    .unwrap_or_else(|| Tainted::pure(0));
                let done = self.dev.vol.frames.pop().expect("frame exists");
                let ret_dst = done.ret_dst.clone();
                self.recycle_frame(done);
                match self.dev.vol.top_mut() {
                    Some(caller) => match ret_dst {
                        Some(RetSlot::Slot(s)) => caller.set_slot(s, v),
                        Some(RetSlot::Spill(name)) => caller.set_extra(&name, v),
                        None => {}
                    },
                    None => return true, // main returned
                }
            }
        }
        false
    }

    /// Resolves a pre-classified by-ref argument against the live
    /// caller frame, mirroring the interpreter's `resolve_ref` order
    /// exactly (incoming references first, then bound locals and
    /// spilled bindings, then the global) — the frame-dependent parts
    /// are the only dynamic work left.
    fn resolve_ref_plan(&self, caller_idx: usize, plan: &RefArgPlan<'p>) -> RefTarget {
        match plan {
            RefArgPlan::Forward(x) => self.resolve_ref(caller_idx, x),
            RefArgPlan::LocalOrGlobal { slot, global } => {
                let caller = &self.dev.vol.frames[caller_idx];
                if let Some(t) = caller.refs.get(&**global) {
                    // Possible only in hand-built IR (a value-parameter
                    // name seated in the reference map).
                    return t.clone();
                }
                if caller.get_slot(*slot).is_some() {
                    RefTarget::Local {
                        frame: caller_idx,
                        slot: *slot,
                    }
                } else {
                    RefTarget::Global(Arc::clone(global))
                }
            }
            RefArgPlan::Global(g) => {
                let caller = &self.dev.vol.frames[caller_idx];
                if let Some(t) = caller.refs.get(&**g) {
                    return t.clone();
                }
                if caller.get_extra(g).is_some() {
                    // A spilled (out-of-layout) caller binding:
                    // hand-built IR only.
                    return RefTarget::Extra {
                        frame: caller_idx,
                        name: Arc::clone(g),
                    };
                }
                RefTarget::Global(Arc::clone(g))
            }
        }
    }

    /// Evaluates a pre-classified expression; equivalent to the
    /// interpreter's `eval` over the original [`ocelot_ir::ast::Expr`].
    fn ceval(&self, e: &CExpr<'p>) -> Tainted {
        match e {
            CExpr::Const(n) => Tainted::pure(*n),
            CExpr::Local { slot, name } => {
                match self.dev.vol.top().and_then(|t| t.get_slot(*slot)) {
                    Some(v) => v.clone(),
                    // Declared but unbound: the interpreter's full
                    // lookup order (ends at the named global).
                    None => self.read_var(name),
                }
            }
            CExpr::RefParam(x) => match self.ref_target(x) {
                Some(t) => self.read_target(&t),
                None => self.read_var(x),
            },
            CExpr::Global(slot) => self.dev.nv.read_slot(*slot),
            CExpr::DynVar(x) => self.read_var(x),
            CExpr::Deref(x) => match self.ref_target(x) {
                Some(t) => self.read_target(&t),
                None => self.dev.nv.read(x),
            },
            CExpr::Index { name, slot, idx } => {
                let i = self.ceval(idx);
                let mut v = match slot {
                    Some(s) => self.dev.nv.read_idx_slot(*s, i.value),
                    None => self.dev.nv.read_idx(name, i.value),
                };
                v.deps.extend(i.deps);
                v
            }
            CExpr::Binary(op, l, r) => {
                let a = self.ceval(l);
                let b = self.ceval(r);
                Tainted::combine(eval_binop(*op, a.value, b.value), &a, &b)
            }
            CExpr::Unary(op, x) => {
                let a = self.ceval(x);
                let value = match op {
                    UnOp::Neg => a.value.wrapping_neg(),
                    UnOp::Not => (a.value == 0) as i64,
                };
                Tainted {
                    value,
                    deps: a.deps,
                }
            }
            CExpr::RefArg => Tainted::pure(0),
            // The optimizer proved this subtree's dependency set empty
            // or unobservable at this consumption site: evaluate by
            // value only, skipping every taint-set clone and merge.
            CExpr::PureOf(e) => Tainted::pure(self.ceval_value(e)),
        }
    }

    /// Value-only twin of [`Runner::ceval`]: computes the same `i64`
    /// without touching dependency sets. Only reachable under
    /// [`CExpr::PureOf`], i.e. when the O2 flow analysis justified
    /// dropping the taint.
    fn ceval_value(&self, e: &CExpr<'p>) -> i64 {
        match e {
            CExpr::Const(n) => *n,
            CExpr::Local { slot, name } => {
                match self.dev.vol.top().and_then(|t| t.get_slot(*slot)) {
                    Some(v) => v.value,
                    None => self.read_var(name).value,
                }
            }
            CExpr::RefParam(x) => match self.ref_target(x) {
                Some(t) => self.read_target(&t).value,
                None => self.read_var(x).value,
            },
            CExpr::Global(slot) => self.dev.nv.read_slot_value(*slot),
            CExpr::DynVar(x) => self.read_var(x).value,
            CExpr::Deref(x) => match self.ref_target(x) {
                Some(t) => self.read_target(&t).value,
                None => self.dev.nv.read(x).value,
            },
            CExpr::Index { name, slot, idx } => {
                let i = self.ceval_value(idx);
                match slot {
                    Some(s) => self.dev.nv.read_idx_slot_value(*s, i),
                    None => self.dev.nv.read_idx_value(name, i),
                }
            }
            CExpr::Binary(op, l, r) => eval_binop(*op, self.ceval_value(l), self.ceval_value(r)),
            CExpr::Unary(op, x) => {
                let a = self.ceval_value(x);
                match op {
                    UnOp::Neg => a.wrapping_neg(),
                    UnOp::Not => (a == 0) as i64,
                }
            }
            CExpr::RefArg => 0,
            CExpr::PureOf(e) => self.ceval_value(e),
        }
    }
}
