//! The compile pass: lowers a [`Program`] into pre-resolved steps.
//!
//! Compilation runs once per machine (lazily, on the first compiled
//! run) and bakes in everything the interpreter re-derives per step:
//!
//! * **operation shape** — each instruction/terminator is matched once
//!   into an [`Action`], so the hot loop never touches [`Op`] again
//!   (and never clones its expression trees);
//! * **storage resolution** — global scalars/arrays become
//!   [`crate::memory::NvMem`] slot indices and frame locals become
//!   dense [`crate::memory::FrameLayouts`] slots; variable reads are
//!   classified local / by-ref / global / dynamic using the IR's
//!   declaration metadata ([`ocelot_ir::Function::declares`]);
//! * **input sites** — the sensor name is pre-interned and, for sites
//!   whose enclosing call stack is statically fixed, the provenance
//!   chain is pre-resolved to an interned
//!   [`ocelot_analysis::chains::ChainId`]; only sites reachable
//!   through several call paths rebuild the chain dynamically;
//! * **call plans** — argument bindings resolve to callee slots, the
//!   return destination to a caller slot, and by-ref arguments to a
//!   pre-classified target, so a call allocates nothing but the frame;
//! * **cycle costs** — static wherever the interpreter's
//!   `Machine::op_cost` is state-independent, including the µs
//!   conversion (summed per instruction, so batched time advances agree
//!   with per-instruction rounding to the microsecond);
//! * **check sites** — whether the §7.3 detectors, the TICS expiry
//!   check, or fresh-use trace logging can fire here, and whether the
//!   pathological injector targets this instruction;
//! * **batches** — for every entry offset into a block, the maximal run
//!   of pure-compute steps whose energy can be drawn in one
//!   [`ocelot_hw::power::PowerSupply::consume_batch`] call on a
//!   continuous supply. Since locals are slot-addressed, a run no
//!   longer stops at the block edge: it follows unconditional jumps
//!   into the batchable prefix of the target block (cycle-guarded), so
//!   straight-line code split across blocks still charges once.
//!
//! The classification is exact for lowered programs: alpha-renaming
//! guarantees locals never shadow globals and are bound before any
//! assignment, which is what licenses the static local/global split.
//! Accesses that cannot be proven fall back to [`Action::AssignDyn`] /
//! [`CExpr::DynVar`], which run the interpreter's own resolution path.

use super::OptLevel;
use crate::machine::{eval_binop, static_op_cost, static_term_cost, Machine};
use ocelot_analysis::chains::ChainId;
use ocelot_analysis::dom::{point_dominates, DomTree, Point};
use ocelot_analysis::FuncSsa;
use ocelot_ir::ast::{Arg, BinOp, Expr, UnOp};
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{BlockId, FuncId, Function, InstrRef, Label, Op, Place, RegionId, Terminator};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::memory::{ParamBind, RetSlot};

/// A program lowered to pre-resolved steps, indexed `[func][block]`.
pub(crate) struct CompiledProgram<'p> {
    /// One entry per [`Program::funcs`] entry, same order.
    pub(crate) funcs: Vec<CompiledFunc<'p>>,
}

/// One function's compiled blocks, indexed by [`BlockId`].
pub(crate) struct CompiledFunc<'p> {
    /// One entry per [`Function::blocks`] entry, same order.
    pub(crate) blocks: Vec<CompiledBlock<'p>>,
}

/// One basic block: its instructions plus the terminator as the final
/// step, and per-offset batch metadata.
pub(crate) struct CompiledBlock<'p> {
    /// `instrs.len() + 1` steps; the last is the terminator.
    pub(crate) steps: Vec<Step<'p>>,
    /// `batches[i]` describes the maximal batchable run starting at
    /// step `i` (`len == 0`: step `i` must go through the checked
    /// per-step path).
    pub(crate) batches: Vec<Batch>,
}

/// Step/cycle/time totals of a batchable run — the quantities charged
/// in one draw. There is exactly one summing site ([`RunTotals::add`]),
/// shared by intra-block absorption, cross-block span building, and
/// span attachment, so a future cost bucket cannot be summed in some
/// combinations and silently dropped in others.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RunTotals {
    /// Total steps in the run (0 = not batchable here).
    pub(crate) len: u32,
    /// Total cycles, charged in one draw.
    pub(crate) cycles: u64,
    /// Total µs — the *sum of per-instruction* µs conversions, so
    /// batched wall-clock time matches the interpreter's per-step
    /// round-up exactly.
    pub(crate) us: u64,
    /// Cycles booked to the `compute` breakdown category.
    pub(crate) compute_cycles: u64,
    /// Cycles booked to the `output` breakdown category.
    pub(crate) output_cycles: u64,
}

impl RunTotals {
    /// Folds another run's totals into this one.
    fn add(&mut self, o: &RunTotals) {
        self.len += o.len;
        self.cycles += o.cycles;
        self.us += o.us;
        self.compute_cycles += o.compute_cycles;
        self.output_cycles += o.output_cycles;
    }
}

/// Precomputed totals of a maximal pure-compute run, possibly spanning
/// unconditional jumps into other blocks of the same function.
#[derive(Debug, Clone, Default)]
pub(crate) struct Batch {
    /// Charged totals across all segments.
    pub(crate) totals: RunTotals,
    /// Steps executed in the starting block (`cont` holds the rest).
    pub(crate) head: u32,
    /// Continuation segments after each followed jump: `(block, steps
    /// from its offset 0)`.
    pub(crate) cont: Vec<(BlockId, u32)>,
}

/// One pre-resolved instruction or terminator.
pub(crate) struct Step<'p> {
    /// The paper's `(f, ℓ)` site, pre-built.
    pub(crate) iref: InstrRef,
    /// Cycle cost: pre-computed, or state-dependent.
    pub(crate) cost: Cost,
    /// Which breakdown counter the cycles land in.
    pub(crate) cat: Cat,
    /// True when detector checks, expiry checks, or fresh-use logging
    /// can fire at this site (pre-bound from the policy-derived maps).
    pub(crate) checked: bool,
    /// True when this checked site's probe is provably redundant (every
    /// required chain must-collected; see
    /// `MachineCore::elidable_sites`) and the opt level elides it. The
    /// runtime additionally gates on the per-run supply (bits must be
    /// un-clearable mid-run).
    pub(crate) elidable: bool,
    /// True when the pathological injector targets this site.
    pub(crate) inject: bool,
    /// What the step does.
    pub(crate) action: Action<'p>,
}

/// A step's cycle cost.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Cost {
    /// State-independent: cycles and their µs conversion, fixed at
    /// compile time.
    Static {
        /// Cycles charged.
        cycles: u64,
        /// `cycles_to_us(cycles)`, precomputed.
        us: u64,
    },
    /// Depends on machine state (`startatom` checkpoints the live
    /// stack; stores through references depend on the binding).
    Dynamic,
}

/// Breakdown category of a step's cycles (mirrors the interpreter's
/// per-work-item accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cat {
    /// ALU, branches, calls, checkpoints' bookkeeping-free cousins.
    Compute,
    /// Sensor sampling.
    Input,
    /// Output operations.
    Output,
    /// Region-entry checkpointing (`startatom`).
    Checkpoint,
}

/// A pre-resolved local destination.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LocalDst<'p> {
    /// A frame slot from the function's layout.
    Slot(u32),
    /// A name outside the layout (hand-built IR): spills by name.
    Spill(&'p str),
}

/// How one by-ref argument resolves, classified at compile time.
pub(crate) enum RefArgPlan<'p> {
    /// The argument is itself a by-ref parameter of the caller:
    /// forward its incoming target (dynamic probe).
    Forward(&'p str),
    /// A declared caller local: its slot when bound at call time,
    /// otherwise the named global (the paper model's unbound-local
    /// fallback).
    LocalOrGlobal {
        /// Caller-frame slot.
        slot: u32,
        /// Fallback global name (shared).
        global: Arc<str>,
    },
    /// An undeclared name: always the named global.
    Global(Arc<str>),
}

/// One pre-resolved argument binding of a call.
pub(crate) enum ArgBind<'p> {
    /// A by-value argument into a callee slot.
    Value {
        /// Callee-frame slot.
        slot: u32,
        /// Argument expression.
        src: CExpr<'p>,
    },
    /// A by-value argument to a by-ref parameter (hand-built IR):
    /// spills into the callee frame by name.
    ValueSpill {
        /// Callee parameter name (shared).
        name: Arc<str>,
        /// Argument expression.
        src: CExpr<'p>,
    },
    /// A by-ref argument bound into the callee's reference map.
    Ref {
        /// Callee parameter name (shared, pre-interned).
        param: Arc<str>,
        /// Pre-classified target.
        plan: RefArgPlan<'p>,
    },
}

/// Everything a call step needs, resolved once.
pub(crate) struct CallPlan<'p> {
    /// Callee.
    pub(crate) callee: FuncId,
    /// Callee entry block.
    pub(crate) entry: BlockId,
    /// Callee local slot count.
    pub(crate) nslots: u32,
    /// Caller-frame return destination.
    pub(crate) ret_dst: Option<RetSlot>,
    /// Argument bindings, in parameter order.
    pub(crate) binds: Vec<ArgBind<'p>>,
}

/// A pre-matched operation with pre-resolved storage.
pub(crate) enum Action<'p> {
    /// `skip` and (unerased) annotations.
    Skip,
    /// `let var = src`.
    Bind {
        /// The local introduced.
        dst: LocalDst<'p>,
        /// Its initializer.
        src: CExpr<'p>,
    },
    /// Store to a declared local or value parameter with a dominating
    /// binding.
    AssignLocal {
        /// The volatile destination slot.
        slot: u32,
        /// Name, for the (unreachable in lowered programs) unbound
        /// fallback.
        var: &'p str,
        /// True for a reclassified always-bound local: the store binds
        /// the slot when it is unbound instead of falling back to the
        /// non-volatile cell (no read can observe the difference — every
        /// read is dominated by a write).
        bind: bool,
        /// Stored value.
        src: CExpr<'p>,
    },
    /// Store to a declared scalar global, slot-resolved.
    AssignGlobal {
        /// Pre-resolved [`crate::memory::NvMem`] scalar slot.
        slot: usize,
        /// Stored value.
        src: CExpr<'p>,
    },
    /// Store to an array cell.
    AssignIndex {
        /// Array name, for the undo-log key fallback.
        name: &'p str,
        /// Pre-resolved [`crate::memory::NvMem`] array slot, if declared.
        slot: Option<usize>,
        /// Cell index expression.
        idx: CExpr<'p>,
        /// Stored value.
        src: CExpr<'p>,
    },
    /// Store through a by-reference parameter (`*x = e`).
    AssignDeref {
        /// The reference parameter.
        var: &'p str,
        /// Stored value.
        src: CExpr<'p>,
    },
    /// Fallback store: runs the interpreter's dynamic `write_place`.
    AssignDyn {
        /// The unresolved destination.
        place: &'p Place,
        /// Stored value.
        src: CExpr<'p>,
    },
    /// `let var = IN(sensor)` — the collection core is shared with the
    /// interpreter; everything resolvable is resolved here.
    Input {
        /// Receiving local.
        dst: LocalDst<'p>,
        /// Sensor channel (environment lookup key, fallback path).
        sensor: &'p str,
        /// Interned sensor name (what the observation records).
        sensor_name: Arc<str>,
        /// Pre-resolved environment channel index.
        chan: Option<usize>,
        /// Pre-resolved chain for a statically-fixed call stack;
        /// `None` falls back to the dynamic rebuild.
        chain: Option<ChainId>,
    },
    /// Function call, fully pre-planned.
    Call {
        /// The plan.
        plan: CallPlan<'p>,
    },
    /// `out(channel, args)`.
    Output {
        /// Interned output channel name.
        channel: Arc<str>,
        /// Pre-lowered argument expressions.
        args: Vec<CExpr<'p>>,
    },
    /// `startatom` — delegated to the shared region-entry helper.
    AtomStart {
        /// The region entered.
        region: RegionId,
    },
    /// `endatom` — delegated to the shared commit helper.
    AtomEnd {
        /// The region ended.
        region: RegionId,
    },
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch.
    Branch {
        /// Branch condition.
        cond: CExpr<'p>,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<CExpr<'p>>),
}

/// An expression with variable references classified at compile time.
pub(crate) enum CExpr<'p> {
    /// Integer or boolean literal.
    Const(i64),
    /// A declared local or value parameter: read the frame slot (falls
    /// back to the interpreter's resolution if unbound).
    Local {
        /// Frame slot.
        slot: u32,
        /// Name, for the unbound fallback.
        name: &'p str,
    },
    /// A by-reference parameter: read through the resolved target.
    RefParam(&'p str),
    /// A declared scalar global: direct [`crate::memory::NvMem`] slot
    /// read.
    Global(usize),
    /// Unresolvable name: the interpreter's full lookup order.
    DynVar(&'p str),
    /// `*x`.
    Deref(&'p str),
    /// `a[idx]`.
    Index {
        /// Array name (fallback path).
        name: &'p str,
        /// Pre-resolved array slot, if declared.
        slot: Option<usize>,
        /// Index expression.
        idx: Box<CExpr<'p>>,
    },
    /// Binary operation.
    Binary(BinOp, Box<CExpr<'p>>, Box<CExpr<'p>>),
    /// Unary operation.
    Unary(UnOp, Box<CExpr<'p>>),
    /// `&x` in expression position (only valid in call args; evaluates
    /// to untainted 0, as in the interpreter).
    RefArg,
    /// Evaluate the inner expression *by value only* and return it with
    /// an empty dependency set. Emitted at `O2` where the optimizer
    /// proved the dependency set is empty anyway (value purity) or can
    /// never reach an observation (dependency liveness) or is dropped
    /// by the consumer (branch conditions, store indices) — the
    /// taint-free fast path.
    PureOf(Box<CExpr<'p>>),
}

/// Wraps an expression for taint-free evaluation (no-op for constants,
/// which are already dependency-free).
fn pure_of(e: CExpr<'_>) -> CExpr<'_> {
    match e {
        CExpr::Const(_) | CExpr::RefArg | CExpr::PureOf(_) => e,
        e => CExpr::PureOf(Box::new(e)),
    }
}

/// Compiles the machine's program against its detector configuration,
/// check-site map, injector target set, non-volatile slot layout,
/// frame layouts, chain table, and sensor interner.
pub(crate) fn compile<'p>(m: &Machine<'p>) -> CompiledProgram<'p> {
    let _span = ocelot_telemetry::span!("compile");
    let cx = Cx { m };
    CompiledProgram {
        funcs: m
            .core
            .p
            .funcs
            .iter()
            .map(|f| {
                let binds = Bindings::of(f);
                let mut blocks: Vec<CompiledBlock<'p>> =
                    f.blocks.iter().map(|b| cx.block(f, &binds, b)).collect();
                extend_batches_across_jumps(&mut blocks);
                CompiledFunc { blocks }
            })
            .collect(),
    }
}

/// Definite-assignment information for one function: where each local
/// is bound (`let`, input, call destination). The surface language has
/// no block scoping, so a local introduced inside a `repeat 0 { .. }`
/// body is *in scope* but possibly never bound at a later assignment —
/// the interpreter then charges an NV write and stores non-volatile.
/// Static local classification is licensed only when a binding site
/// dominates the store.
struct Bindings {
    dom: DomTree,
    defs: BTreeMap<String, Vec<Point>>,
}

impl Bindings {
    fn of(f: &Function) -> Self {
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let mut defs: BTreeMap<String, Vec<Point>> = BTreeMap::new();
        for b in &f.blocks {
            for (i, inst) in b.instrs.iter().enumerate() {
                let var = match &inst.op {
                    Op::Bind { var, .. } | Op::Input { var, .. } => Some(var),
                    Op::Call { dst: Some(d), .. } => Some(d),
                    _ => None,
                };
                if let Some(v) = var {
                    defs.entry(v.clone()).or_default().push(Point::new(b.id, i));
                }
            }
        }
        Bindings { dom, defs }
    }

    /// True when every path to `at` binds `x` first (a value parameter,
    /// or a dominating binding site).
    fn surely_bound(&self, f: &Function, x: &str, at: Point) -> bool {
        if f.params.iter().any(|p| p.name == x && !p.by_ref) {
            return true;
        }
        self.defs
            .get(x)
            .is_some_and(|ds| ds.iter().any(|d| point_dominates(&self.dom, *d, at)))
    }
}

/// Compile-time context: the machine whose pre-resolved tables the pass
/// bakes into steps.
struct Cx<'a, 'p> {
    m: &'a Machine<'p>,
}

impl<'p> Cx<'_, 'p> {
    fn block(
        &self,
        f: &'p Function,
        binds: &Bindings,
        b: &'p ocelot_ir::Block,
    ) -> CompiledBlock<'p> {
        let mut steps: Vec<Step<'p>> = b
            .instrs
            .iter()
            .enumerate()
            .map(|(i, inst)| self.instr(f, binds, Point::new(b.id, i), inst.label, &inst.op))
            .collect();
        steps.push(self.terminator(f, b.term_label, &b.term));
        let batches = intra_block_batches(&steps);
        CompiledBlock { steps, batches }
    }

    fn step(
        &self,
        f: &'p Function,
        label: ocelot_ir::Label,
        cost: Cost,
        cat: Cat,
        action: Action<'p>,
    ) -> Step<'p> {
        let iref = InstrRef { func: f.id, label };
        let checked = self.m.core.use_rt.contains_key(&iref);
        Step {
            iref,
            cost,
            cat,
            checked,
            elidable: checked
                && self.m.opt == OptLevel::O2
                && self.m.core.elidable_sites.contains(&iref),
            inject: self.m.injector_targets.contains(&iref),
            action,
        }
    }

    fn fixed(&self, cycles: u64) -> Cost {
        Cost::Static {
            cycles,
            us: self.m.core.costs.cycles_to_us(cycles),
        }
    }

    /// SSA facts for `f`.
    fn facts(&self, f: &Function) -> &FuncSsa {
        &self.m.core.ssa.funcs[f.id.0 as usize]
    }

    /// At `O2`, wraps `e` for taint-free evaluation when `justified`
    /// holds (the two sound justifications are value purity and
    /// dependency deadness; consumers that drop dependency sets pass
    /// `|| true`).
    fn wrap_o2(&self, e: CExpr<'p>, justified: impl FnOnce() -> bool) -> CExpr<'p> {
        if self.m.opt == OptLevel::O2 && justified() {
            pure_of(e)
        } else {
            e
        }
    }

    /// The compiled source of a store to slot-guaranteed local `var`
    /// (`Bind`, or `Assign` classified as `AssignLocal`): a dead
    /// definition of an always-bound local shrinks to an untainted 0
    /// (the slot write still happens, keeping binding state and
    /// checkpoint word counts identical, but the unread value's
    /// evaluation is gone); otherwise the source compiles normally and
    /// is taint-free-wrapped when the value is pure or its dependency
    /// set provably unobservable. Always-boundedness matters for the
    /// shrink: a dead store to a *possibly-unbound* local would reach
    /// the non-volatile fallback, which a later run could read.
    fn store_src(&self, f: &'p Function, label: Label, var: &str, src: &'p Expr) -> CExpr<'p> {
        let facts = self.facts(f);
        if self.m.opt >= OptLevel::O1
            && facts.dead_defs.contains(&label)
            && facts.always_bound.contains(var)
        {
            return CExpr::Const(0);
        }
        let c = self.expr(f, label, src);
        self.wrap_o2(c, || {
            self.m.core.flow.expr_is_pure(f, src)
                || (f.declares(var) && self.m.core.flow.var_deps_dead(f.id, var))
        })
    }

    fn local_dst(&self, f: &Function, var: &'p str) -> LocalDst<'p> {
        match self.m.core.layouts.slot(f.id, var) {
            Some(s) => LocalDst::Slot(s),
            None => LocalDst::Spill(var),
        }
    }

    /// Classifies a by-ref argument (see [`RefArgPlan`]).
    fn ref_arg(&self, f: &'p Function, x: &'p str) -> RefArgPlan<'p> {
        if f.is_by_ref_param(x) {
            RefArgPlan::Forward(x)
        } else if let Some(slot) = self.m.core.layouts.slot(f.id, x) {
            RefArgPlan::LocalOrGlobal {
                slot,
                global: self.m.global_name(x),
            }
        } else {
            RefArgPlan::Global(self.m.global_name(x))
        }
    }

    fn call_plan(
        &self,
        f: &'p Function,
        label: Label,
        dst: Option<&'p str>,
        callee: FuncId,
        args: &'p [Arg],
    ) -> CallPlan<'p> {
        let callee_layout = self.m.core.layouts.layout(callee);
        let ret_dst = dst.map(|d| match self.m.core.layouts.slot(f.id, d) {
            Some(s) => RetSlot::Slot(s),
            None => RetSlot::Spill(Arc::from(d)),
        });
        let binds = args
            .iter()
            .zip(callee_layout.params())
            .map(|(a, bind)| match (a, bind) {
                (Arg::Value(e), ParamBind::Value(slot)) => ArgBind::Value {
                    slot: *slot,
                    src: {
                        let c = self.expr(f, label, e);
                        // The argument's taint only matters through the
                        // callee parameter it binds; dead there, the
                        // walk is unobservable.
                        self.wrap_o2(c, || {
                            self.m.core.flow.expr_is_pure(f, e)
                                || self
                                    .m
                                    .core
                                    .flow
                                    .var_deps_dead(callee, callee_layout.name(*slot))
                        })
                    },
                },
                (Arg::Ref(x), ParamBind::Ref(name)) => ArgBind::Ref {
                    param: Arc::clone(name),
                    plan: self.ref_arg(f, x),
                },
                // Mismatched kinds: impossible in validated programs,
                // mirrored for hand-built IR.
                (Arg::Value(e), ParamBind::Ref(name)) => ArgBind::ValueSpill {
                    name: Arc::clone(name),
                    src: self.expr(f, label, e),
                },
                (Arg::Ref(x), ParamBind::Value(slot)) => ArgBind::Ref {
                    param: Arc::clone(callee_layout.name(*slot)),
                    plan: self.ref_arg(f, x),
                },
            })
            .collect();
        CallPlan {
            callee,
            entry: callee_layout.entry,
            nslots: callee_layout.len() as u32,
            ret_dst,
            binds,
        }
    }

    fn instr(
        &self,
        f: &'p Function,
        binds: &Bindings,
        at: Point,
        label: ocelot_ir::Label,
        op: &'p Op,
    ) -> Step<'p> {
        let c = &self.m.core.costs;
        // One source of truth for state-independent costs: the same
        // formulas the interpreter charges.
        let fixed_op = || self.fixed(static_op_cost(c, op).expect("op has a static cost"));
        let (cost, cat, action) = match op {
            Op::Skip | Op::Annot { .. } => (fixed_op(), Cat::Compute, Action::Skip),
            Op::Bind { var, src } => (
                fixed_op(),
                Cat::Compute,
                Action::Bind {
                    dst: self.local_dst(f, var),
                    src: self.store_src(f, label, var, src),
                },
            ),
            Op::Assign { place, src } => {
                let flow = &self.m.core.flow;
                match place {
                    // Static local classification needs a dominating
                    // binding — or the reclassification proof that the
                    // local is always bound before any read (then the
                    // store itself binds the slot; the interpreter's NV
                    // fallback for in-scope-but-unbound locals was
                    // over-conservative and is fixed to match).
                    Place::Var(x)
                        if f.declares(x)
                            && !f.is_by_ref_param(x)
                            && (binds.surely_bound(f, x, at)
                                || self.m.core.reclass[f.id.0 as usize].contains(x.as_str())) =>
                    {
                        let slot = self
                            .m
                            .core
                            .layouts
                            .slot(f.id, x)
                            .expect("declared locals have layout slots");
                        (
                            self.fixed(c.alu),
                            Cat::Compute,
                            Action::AssignLocal {
                                slot,
                                var: x,
                                bind: self.m.core.reclass[f.id.0 as usize].contains(x.as_str()),
                                src: self.store_src(f, label, x, src),
                            },
                        )
                    }
                    Place::Var(x) if f.declares(x) => {
                        let src_c = self.expr(f, label, src);
                        (
                            Cost::Dynamic,
                            Cat::Compute,
                            Action::AssignDyn {
                                place,
                                // The store may reach the NV fallback (a
                                // later run could read the cell), so only
                                // exact purity justifies the fast path.
                                src: self.wrap_o2(src_c, || flow.expr_is_pure(f, src)),
                            },
                        )
                    }
                    Place::Var(x) if !f.declares(x) => match self.m.dev.nv.scalar_slot(x) {
                        Some(slot) => {
                            let src_c = self.expr(f, label, src);
                            (
                                self.fixed(c.nv_write),
                                Cat::Compute,
                                Action::AssignGlobal {
                                    slot,
                                    src: self.wrap_o2(src_c, || {
                                        flow.expr_is_pure(f, src) || flow.global_deps_dead(x)
                                    }),
                                },
                            )
                        }
                        // Undeclared destination: keep the interpreter's
                        // dynamic cost and store path.
                        None => {
                            let src_c = self.expr(f, label, src);
                            (
                                Cost::Dynamic,
                                Cat::Compute,
                                Action::AssignDyn {
                                    place,
                                    src: self.wrap_o2(src_c, || flow.expr_is_pure(f, src)),
                                },
                            )
                        }
                    },
                    // A by-ref parameter reassignment is invalid in
                    // validated programs; run it dynamically.
                    Place::Var(_) => (
                        Cost::Dynamic,
                        Cat::Compute,
                        Action::AssignDyn {
                            place,
                            src: self.expr(f, label, src),
                        },
                    ),
                    Place::Index(a, i) => {
                        let src_c = self.expr(f, label, src);
                        let idx_c = self.expr(f, label, i);
                        (
                            self.fixed(c.nv_write),
                            Cat::Compute,
                            Action::AssignIndex {
                                name: a,
                                slot: self.m.dev.nv.array_slot(a),
                                // A store drops its index's dependency
                                // set (only the value is consumed).
                                idx: self.wrap_o2(idx_c, || true),
                                src: self.wrap_o2(src_c, || {
                                    flow.expr_is_pure(f, src) || flow.global_deps_dead(a)
                                }),
                            },
                        )
                    }
                    Place::Deref(x) => {
                        let src_c = self.expr(f, label, src);
                        (
                            Cost::Dynamic,
                            Cat::Compute,
                            Action::AssignDeref {
                                var: x,
                                src: self.wrap_o2(src_c, || {
                                    flow.expr_is_pure(f, src) || flow.refout_deps_dead(f.id, x)
                                }),
                            },
                        )
                    }
                }
            }
            Op::Input { var, sensor } => {
                let iref = InstrRef { func: f.id, label };
                let (sensor_name, chan) = match self.m.core.sensor_rt.get(sensor.as_str()) {
                    Some(rt) => (Arc::clone(&rt.name), rt.chan),
                    None => (Arc::from(sensor.as_str()), self.m.env.channel_index(sensor)),
                };
                (
                    fixed_op(),
                    Cat::Input,
                    Action::Input {
                        dst: self.local_dst(f, var),
                        sensor,
                        sensor_name,
                        chan,
                        chain: self.m.core.static_chain_of.get(&iref).copied(),
                    },
                )
            }
            Op::Call { dst, callee, args } => (
                fixed_op(),
                Cat::Compute,
                Action::Call {
                    plan: self.call_plan(f, label, dst.as_deref(), *callee, args),
                },
            ),
            Op::Output { channel, args } => (
                fixed_op(),
                Cat::Output,
                Action::Output {
                    channel: match self.m.core.channel_names.get(channel.as_str()) {
                        Some(a) => Arc::clone(a),
                        None => Arc::from(channel.as_str()),
                    },
                    // Output argument dependency sets are observed (they
                    // feed the fresh-use trace), so only exact purity
                    // justifies skipping the taint walk.
                    args: args
                        .iter()
                        .map(|e| {
                            let c = self.expr(f, label, e);
                            self.wrap_o2(c, || self.m.core.flow.expr_is_pure(f, e))
                        })
                        .collect(),
                },
            ),
            Op::AtomStart { region } => (
                Cost::Dynamic,
                Cat::Checkpoint,
                Action::AtomStart { region: *region },
            ),
            Op::AtomEnd { region } => (
                fixed_op(),
                Cat::Compute,
                Action::AtomEnd { region: *region },
            ),
        };
        self.step(f, label, cost, cat, action)
    }

    fn terminator(&self, f: &'p Function, label: ocelot_ir::Label, t: &'p Terminator) -> Step<'p> {
        // The cost is derived from the *original* terminator, so a
        // folded constant branch still charges Branch cycles — only the
        // host-side condition evaluation disappears.
        let cost = self.fixed(static_term_cost(&self.m.core.costs, t));
        let action = match t {
            Terminator::Jump(b) => Action::Jump(*b),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.expr(f, label, cond);
                if let (true, CExpr::Const(k)) = (self.m.opt >= OptLevel::O1, &c) {
                    Action::Jump(if *k != 0 { *then_bb } else { *else_bb })
                } else {
                    Action::Branch {
                        // Both backends branch on the value alone; the
                        // condition's dependency set is never observed.
                        cond: self.wrap_o2(c, || true),
                        then_bb: *then_bb,
                        else_bb: *else_bb,
                    }
                }
            }
            Terminator::Ret(e) => Action::Ret(e.as_ref().map(|e| {
                let c = self.expr(f, label, e);
                self.wrap_o2(c, || {
                    self.m.core.flow.expr_is_pure(f, e) || self.m.core.flow.ret_deps_dead(f.id)
                })
            })),
        };
        self.step(f, label, cost, Cat::Compute, action)
    }

    fn expr(&self, f: &'p Function, label: Label, e: &'p Expr) -> CExpr<'p> {
        match e {
            Expr::Int(n) => CExpr::Const(*n),
            Expr::Bool(b) => CExpr::Const(*b as i64),
            Expr::Var(x) => {
                // SSA constant propagation: a use reached only by one
                // constant-valued def (whose taint is provably pure)
                // reads the literal directly.
                if self.m.opt >= OptLevel::O1 {
                    if let Some(k) = self.facts(f).const_uses.get(&(label, x.clone())) {
                        return CExpr::Const(*k);
                    }
                }
                if f.is_by_ref_param(x) {
                    CExpr::RefParam(x)
                } else if f.declares(x) {
                    match self.m.core.layouts.slot(f.id, x) {
                        Some(slot) => CExpr::Local { slot, name: x },
                        None => CExpr::DynVar(x),
                    }
                } else if let Some(slot) = self.m.dev.nv.scalar_slot(x) {
                    CExpr::Global(slot)
                } else {
                    CExpr::DynVar(x)
                }
            }
            Expr::Deref(x) => CExpr::Deref(x),
            Expr::Ref(_) => CExpr::RefArg,
            Expr::Index(a, i) => CExpr::Index {
                name: a,
                slot: self.m.dev.nv.array_slot(a),
                idx: Box::new(self.expr(f, label, i)),
            },
            Expr::Binary(op, l, r) => {
                let (lc, rc) = (self.expr(f, label, l), self.expr(f, label, r));
                if let (true, CExpr::Const(a), CExpr::Const(b)) =
                    (self.m.opt >= OptLevel::O1, &lc, &rc)
                {
                    return CExpr::Const(eval_binop(*op, *a, *b));
                }
                CExpr::Binary(*op, Box::new(lc), Box::new(rc))
            }
            Expr::Unary(op, x) => {
                let xc = self.expr(f, label, x);
                if let (true, CExpr::Const(a)) = (self.m.opt >= OptLevel::O1, &xc) {
                    return CExpr::Const(match op {
                        UnOp::Neg => a.wrapping_neg(),
                        UnOp::Not => (*a == 0) as i64,
                    });
                }
                CExpr::Unary(*op, Box::new(xc))
            }
        }
    }
}

/// Intra-block batch metadata, computed backwards so each offset's run
/// extends the next one in O(block).
fn intra_block_batches(steps: &[Step<'_>]) -> Vec<Batch> {
    let mut batches = vec![Batch::default(); steps.len()];
    for i in (0..steps.len()).rev() {
        let s = &steps[i];
        if !batchable(s) {
            continue;
        }
        let Cost::Static { cycles, us } = s.cost else {
            continue;
        };
        let mut b = Batch {
            totals: RunTotals {
                len: 1,
                cycles,
                us,
                compute_cycles: if s.cat == Cat::Compute { cycles } else { 0 },
                output_cycles: if s.cat == Cat::Output { cycles } else { 0 },
            },
            head: 1,
            cont: Vec::new(),
        };
        // Control transfers end the intra-block run (a call's
        // continuation or a jump's target executes elsewhere); the
        // cross-block pass below re-attaches unconditional jump
        // targets. Otherwise absorb the run starting at the next step.
        if !transfers_control(&s.action) && i + 1 < steps.len() {
            let next = &batches[i + 1];
            if next.totals.len > 0 {
                b.totals.add(&next.totals);
                b.head += next.head;
            }
        }
        batches[i] = b;
    }
    batches
}

/// The cross-block totals of a batchable span starting at a block's
/// offset 0.
#[derive(Debug, Clone, Default)]
struct Span {
    segs: Vec<(BlockId, u32)>,
    totals: RunTotals,
}

/// Extends every run that reaches its block's unconditional jump with
/// the batchable prefix of the jump target (transitively, cycle-cut by
/// an in-progress marker — truncating at a cycle just ends the batch
/// early, which is always a valid shorter batch).
fn extend_batches_across_jumps(blocks: &mut [CompiledBlock<'_>]) {
    fn chase(bi: usize, blocks: &[CompiledBlock<'_>], memo: &mut [Option<Span>], state: &mut [u8]) {
        if state[bi] != 0 {
            return;
        }
        state[bi] = 1;
        let mut span = Span::default();
        let b0 = &blocks[bi].batches[0];
        if b0.totals.len > 0 {
            // At this point batches are intra-block only, so b0's
            // totals cover exactly its head segment.
            span.segs.push((BlockId(bi as u32), b0.head));
            span.totals = b0.totals;
            if b0.head as usize == blocks[bi].steps.len() {
                if let Action::Jump(t) = blocks[bi].steps[blocks[bi].steps.len() - 1].action {
                    let ti = t.0 as usize;
                    if state[ti] != 1 {
                        chase(ti, blocks, memo, state);
                        if let Some(rest) = &memo[ti] {
                            span.segs.extend(rest.segs.iter().copied());
                            span.totals.add(&rest.totals);
                        }
                    }
                }
            }
        }
        memo[bi] = Some(span);
        state[bi] = 2;
    }

    let n = blocks.len();
    let mut memo: Vec<Option<Span>> = vec![None; n];
    let mut state = vec![0u8; n];
    for bi in 0..n {
        chase(bi, blocks, &mut memo, &mut state);
    }
    // Attach each jump target's span to every run that reaches the
    // jump. Totals were computed from the (immutable) intra-block
    // batches above, so mutation order does not matter. (Indexing, not
    // iterating: each pass both reads a target block's memo entry and
    // mutates the current block's batches.)
    #[allow(clippy::needless_range_loop)]
    for bi in 0..n {
        let nsteps = blocks[bi].steps.len();
        let Action::Jump(t) = blocks[bi].steps[nsteps - 1].action else {
            continue;
        };
        let Some(span) = memo[t.0 as usize].clone() else {
            continue;
        };
        if span.totals.len == 0 {
            continue;
        }
        for i in 0..nsteps {
            let covers_jump = {
                let b = &blocks[bi].batches[i];
                b.totals.len > 0 && i + b.head as usize == nsteps
            };
            if covers_jump {
                let b = &mut blocks[bi].batches[i];
                b.totals.add(&span.totals);
                b.cont.extend(span.segs.iter().copied());
            }
        }
    }
}

/// A step the batched path may run without per-step supervision: its
/// cost is static, nothing checks or injects here, and it neither reads
/// the wall clock (inputs do) nor re-costs from live state
/// (`startatom` does).
fn batchable(s: &Step<'_>) -> bool {
    matches!(s.cost, Cost::Static { .. })
        && !s.checked
        && !s.inject
        && !matches!(s.action, Action::Input { .. } | Action::AtomStart { .. })
}

fn transfers_control(a: &Action<'_>) -> bool {
    matches!(
        a,
        Action::Call { .. } | Action::Jump(_) | Action::Branch { .. } | Action::Ret(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::DetectorConfig;
    use ocelot_hw::energy::CostModel;
    use ocelot_hw::power::ContinuousPower;
    use ocelot_hw::sensors::Environment;
    use ocelot_ir::{compile as irc, Program};

    fn machine_for(p: &Program) -> Machine<'_> {
        let taint = ocelot_analysis::taint::TaintAnalysis::run(p);
        let policies = ocelot_core::build_policies(p, &taint);
        Machine::new(
            p,
            &[],
            policies,
            Environment::new(),
            CostModel::default(),
            Box::new(ContinuousPower),
        )
    }

    fn compiled_shape(p: &Program) -> Vec<Vec<(bool, u32)>> {
        let m = machine_for(p);
        let cp = compile(&m);
        cp.funcs[p.main.0 as usize]
            .blocks
            .iter()
            .map(|b| {
                b.steps
                    .iter()
                    .zip(&b.batches)
                    .map(|(s, bt)| (matches!(s.cost, Cost::Static { .. }), bt.totals.len))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn straight_line_block_is_one_batch() {
        let p = irc("fn main() { let a = 1; let b = a + 1; out(log, b); }").unwrap();
        let shape = compiled_shape(&p);
        // Entry block: two binds, one output, and the jump to the exit
        // landing pad — all static; the run from offset 0 now spans the
        // jump into the exit block's batchable prefix.
        let entry = &shape[0];
        assert!(
            entry[0].1 as usize >= entry.len(),
            "whole block (and the jump target) batches: {entry:?}"
        );
        // Every suffix is also a valid batch: resuming mid-block after
        // a reboot still takes the fast path.
        for (is_static, len) in entry {
            assert!(*is_static);
            assert!(*len > 0);
        }
    }

    #[test]
    fn batches_span_unconditional_edges() {
        let p = irc("fn main() { let a = 1; let b = a + 2; out(log, a + b); }").unwrap();
        let m = machine_for(&p);
        let cp = compile(&m);
        let blocks = &cp.funcs[p.main.0 as usize].blocks;
        let total_steps: usize = blocks.iter().map(|b| b.steps.len()).sum();
        // The program is pure straight-line compute: one batch from the
        // entry offset should cover every step of every block on the
        // jump chain to the final return.
        let b0 = &blocks[0].batches[0];
        assert_eq!(
            b0.totals.len as usize, total_steps,
            "the entry batch spans the whole function: {b0:?}"
        );
        assert!(!b0.cont.is_empty(), "continuation segments were attached");
        assert_eq!(
            b0.head + b0.cont.iter().map(|(_, l)| *l).sum::<u32>(),
            b0.totals.len,
            "segment lengths add up"
        );
    }

    #[test]
    fn inputs_and_region_entries_break_batches() {
        let p = irc("sensor s; nv g = 0; fn main() { let v = in(s); atomic { g = v; } }").unwrap();
        let m = machine_for(&p);
        let cp = compile(&m);
        let mut saw_input_break = false;
        let mut saw_atom_break = false;
        for f in &cp.funcs {
            for b in &f.blocks {
                for (s, bt) in b.steps.iter().zip(&b.batches) {
                    match s.action {
                        Action::Input { .. } => {
                            assert_eq!(bt.totals.len, 0, "inputs read the clock");
                            saw_input_break = true;
                        }
                        Action::AtomStart { .. } => {
                            assert_eq!(bt.totals.len, 0, "region entry re-costs from live state");
                            assert!(matches!(s.cost, Cost::Dynamic));
                            saw_atom_break = true;
                        }
                        _ => {}
                    }
                }
            }
        }
        assert!(saw_input_break && saw_atom_break);
    }

    #[test]
    fn check_sites_and_injector_targets_are_prebound() {
        let p = irc("sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }").unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let policies = ocelot_core::build_policies(&p, &taint);
        let targets = crate::machine::pathological_targets(&policies);
        let m = Machine::new(
            &p,
            &[],
            policies,
            Environment::new(),
            CostModel::default(),
            Box::new(ContinuousPower),
        )
        .with_injector(targets.clone());
        let cp = compile(&m);
        let mut checked = 0;
        let mut injected = 0;
        for f in &cp.funcs {
            for b in &f.blocks {
                for (s, bt) in b.steps.iter().zip(&b.batches) {
                    if s.checked || s.inject {
                        assert_eq!(bt.totals.len, 0, "checked/injected sites never batch");
                    }
                    checked += s.checked as usize;
                    injected += s.inject as usize;
                }
            }
        }
        let det_cfg = DetectorConfig::from_policies(&m.core.policies);
        assert_eq!(
            checked,
            det_cfg.use_checks.len(),
            "every use-check site is pre-bound"
        );
        assert_eq!(injected, targets.len());
    }

    #[test]
    fn globals_resolve_to_their_nv_slots() {
        let p = irc("nv a = 1; nv arr[2]; nv b = 2; fn main() { b = a + arr[0]; }").unwrap();
        let m = machine_for(&p).with_opt(OptLevel::O0);
        let cp = compile(&m);
        let mut found = false;
        for f in &cp.funcs {
            for blk in &f.blocks {
                for s in &blk.steps {
                    if let Action::AssignGlobal { slot, src } = &s.action {
                        assert_eq!(Some(*slot), m.dev.nv.scalar_slot("b"));
                        let CExpr::Binary(_, l, r) = src else {
                            panic!("src shape")
                        };
                        assert!(
                            matches!(**l, CExpr::Global(s) if Some(s) == m.dev.nv.scalar_slot("a"))
                        );
                        assert!(
                            matches!(&**r, CExpr::Index { slot: Some(s), .. } if Some(*s) == m.dev.nv.array_slot("arr"))
                        );
                        found = true;
                    }
                }
            }
        }
        assert!(found, "the global store compiled to a slot write");
    }

    #[test]
    fn input_sites_with_fixed_stacks_get_interned_chains() {
        let p = irc(r#"
            sensor s;
            fn once() { let v = in(s); return v; }
            fn shared() { let v = in(s); return v; }
            fn main() {
                let a = once();
                let b = shared();
                let c = shared();
                let d = in(s);
                out(log, a + b + c + d);
            }
            "#)
        .unwrap();
        let m = machine_for(&p);
        let cp = compile(&m);
        let mut static_sites = 0;
        let mut dynamic_sites = 0;
        for f in &cp.funcs {
            for b in &f.blocks {
                for s in &b.steps {
                    if let Action::Input { chain, .. } = &s.action {
                        match chain {
                            Some(id) => {
                                static_sites += 1;
                                // The interned chain really ends at this
                                // input instruction.
                                assert_eq!(m.core.chains.get(*id).last(), Some(&s.iref));
                            }
                            None => dynamic_sites += 1,
                        }
                    }
                }
            }
        }
        assert_eq!(
            static_sites, 2,
            "the single-caller helper and the inline input pre-resolve"
        );
        assert_eq!(dynamic_sites, 1, "the shared helper stays dynamic");
    }

    #[test]
    fn locals_and_calls_resolve_to_slots() {
        let p = irc(r#"
            fn add(a, b) { return a + b; }
            fn main() { let x = 2; let y = add(x, 3); out(log, y); }
            "#)
        .unwrap();
        let m = machine_for(&p);
        let cp = compile(&m);
        let mut saw_call = false;
        for f in &cp.funcs {
            for b in &f.blocks {
                for s in &b.steps {
                    if let Action::Call { plan } = &s.action {
                        saw_call = true;
                        assert!(matches!(plan.ret_dst, Some(RetSlot::Slot(_))));
                        assert_eq!(plan.binds.len(), 2);
                        assert!(plan
                            .binds
                            .iter()
                            .all(|b| matches!(b, ArgBind::Value { .. })));
                        assert_eq!(
                            plan.nslots as usize,
                            m.core.layouts.layout(plan.callee).len()
                        );
                    }
                }
            }
        }
        assert!(saw_call);
    }

    // -----------------------------------------------------------------
    // Optimizer passes
    // -----------------------------------------------------------------

    /// Every `main` step of `p` compiled at `opt`.
    fn main_actions<'a>(cp: &'a CompiledProgram<'a>, p: &Program) -> Vec<&'a Action<'a>> {
        cp.funcs[p.main.0 as usize]
            .blocks
            .iter()
            .flat_map(|b| b.steps.iter().map(|s| &s.action))
            .collect()
    }

    fn contains_pure_of(e: &CExpr<'_>) -> bool {
        match e {
            CExpr::PureOf(_) => true,
            CExpr::Binary(_, l, r) => contains_pure_of(l) || contains_pure_of(r),
            CExpr::Unary(_, x) | CExpr::Index { idx: x, .. } => contains_pure_of(x),
            _ => false,
        }
    }

    fn action_exprs<'a>(a: &'a Action<'a>) -> Vec<&'a CExpr<'a>> {
        match a {
            Action::Bind { src, .. }
            | Action::AssignLocal { src, .. }
            | Action::AssignGlobal { src, .. }
            | Action::AssignDeref { src, .. }
            | Action::AssignDyn { src, .. } => vec![src],
            Action::AssignIndex { idx, src, .. } => vec![idx, src],
            Action::Output { args, .. } => args.iter().collect(),
            Action::Branch { cond, .. } => vec![cond],
            Action::Ret(e) => e.iter().collect(),
            Action::Call { plan } => plan
                .binds
                .iter()
                .filter_map(|b| match b {
                    ArgBind::Value { src, .. } | ArgBind::ValueSpill { src, .. } => Some(src),
                    ArgBind::Ref { .. } => None,
                })
                .collect(),
            _ => vec![],
        }
    }

    #[test]
    fn constants_propagate_and_fold_at_o1() {
        let p = irc("fn main() { let a = 2; let b = a * 3 + 1; out(log, b); }").unwrap();
        let m = machine_for(&p).with_opt(OptLevel::O1);
        let cp = compile(&m);
        // `b`'s definition folds to the literal 7, and the output reads
        // it back as a propagated constant.
        let folded = main_actions(&cp, &p).iter().any(|a| {
            matches!(
                a,
                Action::Bind {
                    src: CExpr::Const(7),
                    ..
                }
            ) || matches!(
                a,
                Action::AssignLocal {
                    src: CExpr::Const(7),
                    ..
                }
            )
        });
        assert!(folded, "b = a * 3 + 1 folds to 7");
        let out_const = main_actions(&cp, &p).iter().any(|a| {
            matches!(a, Action::Output { args, .. }
                if matches!(args.as_slice(), [CExpr::Const(7)]))
        });
        assert!(out_const, "out(log, b) reads the propagated constant");
        // O0 keeps the expression trees intact.
        let m0 = machine_for(&p).with_opt(OptLevel::O0);
        let cp0 = compile(&m0);
        assert!(
            main_actions(&cp0, &p)
                .iter()
                .flat_map(|a| action_exprs(a))
                .all(|e| !matches!(e, CExpr::Const(7))),
            "O0 performs no folding"
        );
    }

    #[test]
    fn constant_branches_straighten_to_jumps_keeping_branch_cost() {
        let p = irc("nv g = 0; fn main() { let a = 1; if a { g = 2; } else { g = 3; } }").unwrap();
        let m = machine_for(&p).with_opt(OptLevel::O1);
        let cp = compile(&m);
        let m0 = machine_for(&p).with_opt(OptLevel::O0);
        let cp0 = compile(&m0);
        let mut saw_fold = false;
        let main_o1 = &cp.funcs[p.main.0 as usize].blocks;
        let main_o0 = &cp0.funcs[p.main.0 as usize].blocks;
        for (b1, b0) in main_o1.iter().zip(main_o0) {
            for (s1, s0) in b1.steps.iter().zip(&b0.steps) {
                if let Action::Branch { .. } = s0.action {
                    if let Action::Jump(t) = s1.action {
                        saw_fold = true;
                        // The fold picked the then-edge (a == 1) and the
                        // step still charges the Branch's cycles.
                        let Action::Branch { then_bb, .. } = &s0.action else {
                            unreachable!()
                        };
                        assert_eq!(t, *then_bb);
                        match (&s1.cost, &s0.cost) {
                            (Cost::Static { cycles: c1, .. }, Cost::Static { cycles: c0, .. }) => {
                                assert_eq!(c1, c0, "folding never changes simulated cost")
                            }
                            _ => panic!("branch costs are static"),
                        }
                    }
                }
            }
        }
        assert!(saw_fold, "the constant branch became a jump");
    }

    #[test]
    fn dead_stores_to_always_bound_locals_shrink_to_const_zero() {
        // `a` is never read again: the stored value is unobservable, so
        // O1 shrinks the source to a literal (the slot write itself is
        // kept — binding state and checkpoint size must not change).
        let p = irc("nv g = 5; fn main() { let a = g; out(log, 1); }").unwrap();
        let zero_binds = |opt: OptLevel| {
            let m = machine_for(&p).with_opt(opt);
            let cp = compile(&m);
            main_actions(&cp, &p)
                .iter()
                .filter(|a| {
                    matches!(
                        a,
                        Action::Bind {
                            src: CExpr::Const(0),
                            ..
                        }
                    )
                })
                .count()
        };
        // The lowering's `let $ret = 0` is a literal zero bind at every
        // level; the shrink adds `a`'s.
        assert_eq!(zero_binds(OptLevel::O0), 1, "O0 keeps the full store");
        assert_eq!(
            zero_binds(OptLevel::O1),
            2,
            "the dead read of g was dropped"
        );
    }

    #[test]
    fn pure_of_wraps_only_at_o2_and_never_observed_deps() {
        // g's dependency set is never observed (no output or fresh use
        // reads it), so stores to it may skip the taint walk at O2.
        let p = irc("sensor s; nv g = 0; fn main() { let v = in(s); g = g + v; }").unwrap();
        for opt in [OptLevel::O0, OptLevel::O1] {
            let m = machine_for(&p).with_opt(opt);
            let cp = compile(&m);
            assert!(
                main_actions(&cp, &p)
                    .iter()
                    .flat_map(|a| action_exprs(a))
                    .all(|e| !contains_pure_of(e)),
                "PureOf is an O2-only rewrite"
            );
        }
        let m2 = machine_for(&p).with_opt(OptLevel::O2);
        let cp2 = compile(&m2);
        assert!(
            main_actions(&cp2, &p)
                .iter()
                .flat_map(|a| action_exprs(a))
                .any(contains_pure_of),
            "the dep-dead global store is evaluated taint-free at O2"
        );
        // An output argument's deps ARE observed: its expression must
        // keep the taint walk unless provably pure.
        let p2 = irc("sensor s; fn main() { let v = in(s); out(log, v); }").unwrap();
        let m = machine_for(&p2).with_opt(OptLevel::O2);
        let cp = compile(&m);
        for a in main_actions(&cp, &p2) {
            if let Action::Output { args, .. } = a {
                assert!(
                    args.iter().all(|e| !contains_pure_of(e)),
                    "input-derived output args keep their taint"
                );
            }
        }
    }

    #[test]
    fn dominated_use_checks_are_elidable_only_at_o2() {
        // Straight-line collect-then-use in one function: the input
        // dominates the use, so the freshness probe's outcome is
        // statically known under monotone detector bits.
        let p = irc("sensor s; fn main() { let x = in(s); fresh(x); out(log, x); }").unwrap();
        let count_elidable = |opt: OptLevel| {
            let m = machine_for(&p).with_opt(opt);
            let cp = compile(&m);
            let mut checked = 0;
            let mut elidable = 0;
            for f in &cp.funcs {
                for b in &f.blocks {
                    for s in &b.steps {
                        checked += s.checked as usize;
                        elidable += s.elidable as usize;
                    }
                }
            }
            (checked, elidable)
        };
        let (checked, elidable) = count_elidable(OptLevel::O2);
        assert!(checked > 0, "the fresh use is a check site");
        assert_eq!(elidable, checked, "the dominated probe is elidable");
        assert_eq!(count_elidable(OptLevel::O0), (checked, 0));
        assert_eq!(count_elidable(OptLevel::O1), (checked, 0));
    }

    #[test]
    fn reclassified_locals_compile_to_binding_slot_stores() {
        // `a` is declared on one branch only, then assigned and read on
        // the join path: in-scope-but-unbound at the assignment, but
        // provably dead-on-reboot (every read is preceded by the store),
        // so it is reclassified as a volatile slot store that binds.
        let p = irc("nv g = 0; fn main() { if g { let a = 1; out(log, a); } a = 2; out(log, a); }")
            .unwrap();
        let m = machine_for(&p);
        let cp = compile(&m);
        let bound = main_actions(&cp, &p)
            .iter()
            .any(|a| matches!(a, Action::AssignLocal { bind: true, .. }));
        assert!(
            bound,
            "the unbound-on-entry store compiles to a binding slot write"
        );
    }
}
