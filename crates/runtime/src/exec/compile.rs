//! The compile pass: lowers a [`Program`] into pre-resolved steps.
//!
//! Compilation runs once per machine (lazily, on the first compiled
//! run) and bakes in everything the interpreter re-derives per step:
//!
//! * **operation shape** — each instruction/terminator is matched once
//!   into an [`Action`], so the hot loop never touches [`Op`] again
//!   (and never clones its expression trees);
//! * **storage resolution** — global scalars/arrays become
//!   [`crate::memory::NvMem`] slot indices; variable reads are
//!   classified local / by-ref / global / dynamic using the IR's
//!   declaration metadata ([`ocelot_ir::Function::declares`]);
//! * **cycle costs** — static wherever the interpreter's
//!   `Machine::op_cost` is state-independent, including the µs
//!   conversion (summed per instruction, so batched time advances agree
//!   with per-instruction rounding to the microsecond);
//! * **check sites** — whether the §7.3 detectors, the TICS expiry
//!   check, or fresh-use trace logging can fire here, and whether the
//!   pathological injector targets this instruction;
//! * **batches** — for every entry offset into a block, the maximal run
//!   of pure-compute steps whose energy can be drawn in one
//!   [`ocelot_hw::power::PowerSupply::consume_batch`] call on a
//!   continuous supply.
//!
//! The classification is exact for lowered programs: alpha-renaming
//! guarantees locals never shadow globals and are bound before any
//! assignment, which is what licenses the static local/global split.
//! Accesses that cannot be proven fall back to [`Action::AssignDyn`] /
//! [`CExpr::DynVar`], which run the interpreter's own resolution path.

use crate::detect::DetectorConfig;
use crate::machine::{static_op_cost, static_term_cost};
use crate::memory::NvMem;
use ocelot_analysis::dom::{point_dominates, DomTree, Point};
use ocelot_hw::energy::CostModel;
use ocelot_ir::ast::{Arg, BinOp, Expr, UnOp};
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{BlockId, FuncId, Function, InstrRef, Op, Place, Program, RegionId, Terminator};
use std::collections::{BTreeMap, BTreeSet};

/// A program lowered to pre-resolved steps, indexed `[func][block]`.
pub(crate) struct CompiledProgram<'p> {
    /// One entry per [`Program::funcs`] entry, same order.
    pub(crate) funcs: Vec<CompiledFunc<'p>>,
}

/// One function's compiled blocks, indexed by [`BlockId`].
pub(crate) struct CompiledFunc<'p> {
    /// One entry per [`Function::blocks`] entry, same order.
    pub(crate) blocks: Vec<CompiledBlock<'p>>,
}

/// One basic block: its instructions plus the terminator as the final
/// step, and per-offset batch metadata.
pub(crate) struct CompiledBlock<'p> {
    /// `instrs.len() + 1` steps; the last is the terminator.
    pub(crate) steps: Vec<Step<'p>>,
    /// `batches[i]` describes the maximal batchable run starting at
    /// step `i` (`len == 0`: step `i` must go through the checked
    /// per-step path).
    pub(crate) batches: Vec<Batch>,
}

/// Precomputed totals of a maximal pure-compute run.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Batch {
    /// Steps in the run (0 = not batchable here).
    pub(crate) len: u32,
    /// Total cycles, charged in one draw.
    pub(crate) cycles: u64,
    /// Total µs — the *sum of per-instruction* µs conversions, so
    /// batched wall-clock time matches the interpreter's per-step
    /// round-up exactly.
    pub(crate) us: u64,
    /// Cycles booked to the `compute` breakdown category.
    pub(crate) compute_cycles: u64,
    /// Cycles booked to the `output` breakdown category.
    pub(crate) output_cycles: u64,
}

/// One pre-resolved instruction or terminator.
pub(crate) struct Step<'p> {
    /// The paper's `(f, ℓ)` site, pre-built.
    pub(crate) iref: InstrRef,
    /// Cycle cost: pre-computed, or state-dependent.
    pub(crate) cost: Cost,
    /// Which breakdown counter the cycles land in.
    pub(crate) cat: Cat,
    /// True when detector checks, expiry checks, or fresh-use logging
    /// can fire at this site (pre-bound from the policy-derived maps).
    pub(crate) checked: bool,
    /// True when the pathological injector targets this site.
    pub(crate) inject: bool,
    /// What the step does.
    pub(crate) action: Action<'p>,
}

/// A step's cycle cost.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Cost {
    /// State-independent: cycles and their µs conversion, fixed at
    /// compile time.
    Static {
        /// Cycles charged.
        cycles: u64,
        /// `cycles_to_us(cycles)`, precomputed.
        us: u64,
    },
    /// Depends on machine state (`startatom` checkpoints the live
    /// stack; stores through references depend on the binding).
    Dynamic,
}

/// Breakdown category of a step's cycles (mirrors the interpreter's
/// per-work-item accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cat {
    /// ALU, branches, calls, checkpoints' bookkeeping-free cousins.
    Compute,
    /// Sensor sampling.
    Input,
    /// Output operations.
    Output,
    /// Region-entry checkpointing (`startatom`).
    Checkpoint,
}

/// A pre-matched operation with pre-resolved storage.
pub(crate) enum Action<'p> {
    /// `skip` and (unerased) annotations.
    Skip,
    /// `let var = src`.
    Bind {
        /// The local introduced.
        var: &'p str,
        /// Its initializer.
        src: CExpr<'p>,
    },
    /// Store to a declared local or value parameter.
    AssignLocal {
        /// The volatile destination.
        var: &'p str,
        /// Stored value.
        src: CExpr<'p>,
    },
    /// Store to a declared scalar global, slot-resolved.
    AssignGlobal {
        /// Pre-resolved [`NvMem`] scalar slot.
        slot: usize,
        /// Name, for the undo-log key.
        name: &'p str,
        /// Stored value.
        src: CExpr<'p>,
    },
    /// Store to an array cell.
    AssignIndex {
        /// Array name, for the undo-log key.
        name: &'p str,
        /// Pre-resolved [`NvMem`] array slot, if declared.
        slot: Option<usize>,
        /// Cell index expression.
        idx: CExpr<'p>,
        /// Stored value.
        src: CExpr<'p>,
    },
    /// Store through a by-reference parameter (`*x = e`).
    AssignDeref {
        /// The reference parameter.
        var: &'p str,
        /// Stored value.
        src: CExpr<'p>,
    },
    /// Fallback store: runs the interpreter's dynamic `write_place`.
    AssignDyn {
        /// The unresolved destination.
        place: &'p Place,
        /// Stored value.
        src: CExpr<'p>,
    },
    /// `let var = IN(sensor)` — delegated to the shared input helper.
    Input {
        /// Receiving local.
        var: &'p str,
        /// Sensor channel.
        sensor: &'p str,
    },
    /// Function call — delegated to the shared call helper.
    Call {
        /// Return destination, if any.
        dst: Option<&'p str>,
        /// Callee.
        callee: FuncId,
        /// Argument list (evaluated by the shared helper).
        args: &'p [Arg],
    },
    /// `out(channel, args)`.
    Output {
        /// Output channel.
        channel: &'p str,
        /// Pre-lowered argument expressions.
        args: Vec<CExpr<'p>>,
    },
    /// `startatom` — delegated to the shared region-entry helper.
    AtomStart {
        /// The region entered.
        region: RegionId,
    },
    /// `endatom` — delegated to the shared commit helper.
    AtomEnd {
        /// The region ended.
        region: RegionId,
    },
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch.
    Branch {
        /// Branch condition.
        cond: CExpr<'p>,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<CExpr<'p>>),
}

/// An expression with variable references classified at compile time.
pub(crate) enum CExpr<'p> {
    /// Integer or boolean literal.
    Const(i64),
    /// A declared local or value parameter: read the top frame's
    /// binding (falls back to the interpreter's resolution if unbound).
    Local(&'p str),
    /// A by-reference parameter: read through the resolved target.
    RefParam(&'p str),
    /// A declared scalar global: direct [`NvMem`] slot read.
    Global(usize),
    /// Unresolvable name: the interpreter's full lookup order.
    DynVar(&'p str),
    /// `*x`.
    Deref(&'p str),
    /// `a[idx]`.
    Index {
        /// Array name (fallback path).
        name: &'p str,
        /// Pre-resolved array slot, if declared.
        slot: Option<usize>,
        /// Index expression.
        idx: Box<CExpr<'p>>,
    },
    /// Binary operation.
    Binary(BinOp, Box<CExpr<'p>>, Box<CExpr<'p>>),
    /// Unary operation.
    Unary(UnOp, Box<CExpr<'p>>),
    /// `&x` in expression position (only valid in call args; evaluates
    /// to untainted 0, as in the interpreter).
    RefArg,
}

/// Compiles `p` against the machine's detector configuration, fresh-use
/// logging map, injector target set, and non-volatile slot layout.
pub(crate) fn compile<'p>(
    p: &'p Program,
    costs: &CostModel,
    det_cfg: &DetectorConfig,
    fresh_use_vars: &BTreeMap<InstrRef, Vec<String>>,
    injector_targets: &BTreeSet<InstrRef>,
    nv: &NvMem,
) -> CompiledProgram<'p> {
    let cx = Cx {
        costs,
        det_cfg,
        fresh_use_vars,
        injector_targets,
        nv,
    };
    CompiledProgram {
        funcs: p
            .funcs
            .iter()
            .map(|f| {
                let binds = Bindings::of(f);
                CompiledFunc {
                    blocks: f.blocks.iter().map(|b| cx.block(f, &binds, b)).collect(),
                }
            })
            .collect(),
    }
}

/// Definite-assignment information for one function: where each local
/// is bound (`let`, input, call destination). The surface language has
/// no block scoping, so a local introduced inside a `repeat 0 { .. }`
/// body is *in scope* but possibly never bound at a later assignment —
/// the interpreter then charges an NV write and stores non-volatile.
/// Static local classification is licensed only when a binding site
/// dominates the store.
struct Bindings {
    dom: DomTree,
    defs: BTreeMap<String, Vec<Point>>,
}

impl Bindings {
    fn of(f: &Function) -> Self {
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let mut defs: BTreeMap<String, Vec<Point>> = BTreeMap::new();
        for b in &f.blocks {
            for (i, inst) in b.instrs.iter().enumerate() {
                let var = match &inst.op {
                    Op::Bind { var, .. } | Op::Input { var, .. } => Some(var),
                    Op::Call { dst: Some(d), .. } => Some(d),
                    _ => None,
                };
                if let Some(v) = var {
                    defs.entry(v.clone()).or_default().push(Point::new(b.id, i));
                }
            }
        }
        Bindings { dom, defs }
    }

    /// True when every path to `at` binds `x` first (a value parameter,
    /// or a dominating binding site).
    fn surely_bound(&self, f: &Function, x: &str, at: Point) -> bool {
        if f.params.iter().any(|p| p.name == x && !p.by_ref) {
            return true;
        }
        self.defs
            .get(x)
            .is_some_and(|ds| ds.iter().any(|d| point_dominates(&self.dom, *d, at)))
    }
}

/// Compile-time context threaded through the pass.
struct Cx<'a> {
    costs: &'a CostModel,
    det_cfg: &'a DetectorConfig,
    fresh_use_vars: &'a BTreeMap<InstrRef, Vec<String>>,
    injector_targets: &'a BTreeSet<InstrRef>,
    nv: &'a NvMem,
}

impl Cx<'_> {
    fn block<'p>(
        &self,
        f: &'p Function,
        binds: &Bindings,
        b: &'p ocelot_ir::Block,
    ) -> CompiledBlock<'p> {
        let mut steps: Vec<Step<'p>> = b
            .instrs
            .iter()
            .enumerate()
            .map(|(i, inst)| self.instr(f, binds, Point::new(b.id, i), inst.label, &inst.op))
            .collect();
        steps.push(self.terminator(f, b.term_label, &b.term));
        let batches = self.batches(&steps);
        CompiledBlock { steps, batches }
    }

    fn step<'p>(
        &self,
        f: &'p Function,
        label: ocelot_ir::Label,
        cost: Cost,
        cat: Cat,
        action: Action<'p>,
    ) -> Step<'p> {
        let iref = InstrRef { func: f.id, label };
        Step {
            iref,
            cost,
            cat,
            checked: self.det_cfg.use_checks.contains_key(&iref)
                || self.fresh_use_vars.contains_key(&iref),
            inject: self.injector_targets.contains(&iref),
            action,
        }
    }

    fn fixed(&self, cycles: u64) -> Cost {
        Cost::Static {
            cycles,
            us: self.costs.cycles_to_us(cycles),
        }
    }

    fn instr<'p>(
        &self,
        f: &'p Function,
        binds: &Bindings,
        at: Point,
        label: ocelot_ir::Label,
        op: &'p Op,
    ) -> Step<'p> {
        let c = self.costs;
        // One source of truth for state-independent costs: the same
        // formulas the interpreter charges.
        let fixed_op = || self.fixed(static_op_cost(c, op).expect("op has a static cost"));
        let (cost, cat, action) = match op {
            Op::Skip | Op::Annot { .. } => (fixed_op(), Cat::Compute, Action::Skip),
            Op::Bind { var, src } => (
                fixed_op(),
                Cat::Compute,
                Action::Bind {
                    var,
                    src: self.expr(f, src),
                },
            ),
            Op::Assign { place, src } => {
                let src_c = self.expr(f, src);
                match place {
                    // Static local classification needs a dominating
                    // binding: an in-scope-but-unbound local (possible —
                    // no block scoping) is stored non-volatile at NV
                    // cost by the interpreter.
                    Place::Var(x)
                        if f.declares(x)
                            && !f.is_by_ref_param(x)
                            && binds.surely_bound(f, x, at) =>
                    {
                        (
                            self.fixed(c.alu),
                            Cat::Compute,
                            Action::AssignLocal { var: x, src: src_c },
                        )
                    }
                    Place::Var(x) if f.declares(x) => (
                        Cost::Dynamic,
                        Cat::Compute,
                        Action::AssignDyn { place, src: src_c },
                    ),
                    Place::Var(x) if !f.declares(x) => match self.nv.scalar_slot(x) {
                        Some(slot) => (
                            self.fixed(c.nv_write),
                            Cat::Compute,
                            Action::AssignGlobal {
                                slot,
                                name: x,
                                src: src_c,
                            },
                        ),
                        // Undeclared destination: keep the interpreter's
                        // dynamic cost and store path.
                        None => (
                            Cost::Dynamic,
                            Cat::Compute,
                            Action::AssignDyn { place, src: src_c },
                        ),
                    },
                    // A by-ref parameter reassignment is invalid in
                    // validated programs; run it dynamically.
                    Place::Var(_) => (
                        Cost::Dynamic,
                        Cat::Compute,
                        Action::AssignDyn { place, src: src_c },
                    ),
                    Place::Index(a, i) => (
                        self.fixed(c.nv_write),
                        Cat::Compute,
                        Action::AssignIndex {
                            name: a,
                            slot: self.nv.array_slot(a),
                            idx: self.expr(f, i),
                            src: src_c,
                        },
                    ),
                    Place::Deref(x) => (
                        Cost::Dynamic,
                        Cat::Compute,
                        Action::AssignDeref { var: x, src: src_c },
                    ),
                }
            }
            Op::Input { var, sensor } => (fixed_op(), Cat::Input, Action::Input { var, sensor }),
            Op::Call { dst, callee, args } => (
                fixed_op(),
                Cat::Compute,
                Action::Call {
                    dst: dst.as_deref(),
                    callee: *callee,
                    args,
                },
            ),
            Op::Output { channel, args } => (
                fixed_op(),
                Cat::Output,
                Action::Output {
                    channel,
                    args: args.iter().map(|e| self.expr(f, e)).collect(),
                },
            ),
            Op::AtomStart { region } => (
                Cost::Dynamic,
                Cat::Checkpoint,
                Action::AtomStart { region: *region },
            ),
            Op::AtomEnd { region } => (
                fixed_op(),
                Cat::Compute,
                Action::AtomEnd { region: *region },
            ),
        };
        self.step(f, label, cost, cat, action)
    }

    fn terminator<'p>(
        &self,
        f: &'p Function,
        label: ocelot_ir::Label,
        t: &'p Terminator,
    ) -> Step<'p> {
        let cost = self.fixed(static_term_cost(self.costs, t));
        let action = match t {
            Terminator::Jump(b) => Action::Jump(*b),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Action::Branch {
                cond: self.expr(f, cond),
                then_bb: *then_bb,
                else_bb: *else_bb,
            },
            Terminator::Ret(e) => Action::Ret(e.as_ref().map(|e| self.expr(f, e))),
        };
        self.step(f, label, cost, Cat::Compute, action)
    }

    fn expr<'p>(&self, f: &'p Function, e: &'p Expr) -> CExpr<'p> {
        match e {
            Expr::Int(n) => CExpr::Const(*n),
            Expr::Bool(b) => CExpr::Const(*b as i64),
            Expr::Var(x) => {
                if f.is_by_ref_param(x) {
                    CExpr::RefParam(x)
                } else if f.declares(x) {
                    CExpr::Local(x)
                } else if let Some(slot) = self.nv.scalar_slot(x) {
                    CExpr::Global(slot)
                } else {
                    CExpr::DynVar(x)
                }
            }
            Expr::Deref(x) => CExpr::Deref(x),
            Expr::Ref(_) => CExpr::RefArg,
            Expr::Index(a, i) => CExpr::Index {
                name: a,
                slot: self.nv.array_slot(a),
                idx: Box::new(self.expr(f, i)),
            },
            Expr::Binary(op, l, r) => {
                CExpr::Binary(*op, Box::new(self.expr(f, l)), Box::new(self.expr(f, r)))
            }
            Expr::Unary(op, x) => CExpr::Unary(*op, Box::new(self.expr(f, x))),
        }
    }

    /// Batch metadata, computed backwards so each offset's run extends
    /// the next one in O(block).
    fn batches(&self, steps: &[Step<'_>]) -> Vec<Batch> {
        let mut batches = vec![Batch::default(); steps.len()];
        for i in (0..steps.len()).rev() {
            let s = &steps[i];
            if !batchable(s) {
                continue;
            }
            let Cost::Static { cycles, us } = s.cost else {
                continue;
            };
            let mut b = Batch {
                len: 1,
                cycles,
                us,
                compute_cycles: if s.cat == Cat::Compute { cycles } else { 0 },
                output_cycles: if s.cat == Cat::Output { cycles } else { 0 },
            };
            // Control transfers end the run (a call's continuation or a
            // jump's target executes elsewhere); otherwise absorb the
            // run starting at the next step.
            if !transfers_control(&s.action) && i + 1 < steps.len() {
                let next = batches[i + 1];
                if next.len > 0 {
                    b.len += next.len;
                    b.cycles += next.cycles;
                    b.us += next.us;
                    b.compute_cycles += next.compute_cycles;
                    b.output_cycles += next.output_cycles;
                }
            }
            batches[i] = b;
        }
        batches
    }
}

/// A step the batched path may run without per-step supervision: its
/// cost is static, nothing checks or injects here, and it neither reads
/// the wall clock (inputs do) nor re-costs from live state
/// (`startatom` does).
fn batchable(s: &Step<'_>) -> bool {
    matches!(s.cost, Cost::Static { .. })
        && !s.checked
        && !s.inject
        && !matches!(s.action, Action::Input { .. } | Action::AtomStart { .. })
}

fn transfers_control(a: &Action<'_>) -> bool {
    matches!(
        a,
        Action::Call { .. } | Action::Jump(_) | Action::Branch { .. } | Action::Ret(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile as irc;

    fn compiled_main(src: &str) -> (ocelot_ir::Program, Vec<Vec<(bool, u32)>>) {
        let p = irc(src).unwrap();
        let nv = NvMem::init(&p);
        let cp = compile(
            &p,
            &CostModel::default(),
            &DetectorConfig::default(),
            &BTreeMap::new(),
            &BTreeSet::new(),
            &nv,
        );
        let shape = cp.funcs[p.main.0 as usize]
            .blocks
            .iter()
            .map(|b| {
                b.steps
                    .iter()
                    .zip(&b.batches)
                    .map(|(s, bt)| (matches!(s.cost, Cost::Static { .. }), bt.len))
                    .collect()
            })
            .collect();
        (p, shape)
    }

    #[test]
    fn straight_line_block_is_one_batch() {
        let (_, shape) = compiled_main("fn main() { let a = 1; let b = a + 1; out(log, b); }");
        // Entry block: two binds, one output, and the jump to the exit
        // landing pad — all static, all one run from offset 0.
        let entry = &shape[0];
        assert_eq!(entry[0].1 as usize, entry.len(), "whole block batches");
        // Every suffix is also a valid (shorter) batch: resuming
        // mid-block after a reboot still takes the fast path.
        for (i, (is_static, len)) in entry.iter().enumerate() {
            assert!(*is_static);
            assert_eq!(*len as usize, entry.len() - i);
        }
    }

    #[test]
    fn inputs_and_region_entries_break_batches() {
        let p = irc("sensor s; nv g = 0; fn main() { let v = in(s); atomic { g = v; } }").unwrap();
        let nv = NvMem::init(&p);
        let cp = compile(
            &p,
            &CostModel::default(),
            &DetectorConfig::default(),
            &BTreeMap::new(),
            &BTreeSet::new(),
            &nv,
        );
        let mut saw_input_break = false;
        let mut saw_atom_break = false;
        for f in &cp.funcs {
            for b in &f.blocks {
                for (s, bt) in b.steps.iter().zip(&b.batches) {
                    match s.action {
                        Action::Input { .. } => {
                            assert_eq!(bt.len, 0, "inputs read the clock");
                            saw_input_break = true;
                        }
                        Action::AtomStart { .. } => {
                            assert_eq!(bt.len, 0, "region entry re-costs from live state");
                            assert!(matches!(s.cost, Cost::Dynamic));
                            saw_atom_break = true;
                        }
                        _ => {}
                    }
                }
            }
        }
        assert!(saw_input_break && saw_atom_break);
    }

    #[test]
    fn check_sites_and_injector_targets_are_prebound() {
        let p = irc("sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }").unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let policies = ocelot_core::build_policies(&p, &taint);
        let det_cfg = DetectorConfig::from_policies(&policies);
        let targets = crate::machine::pathological_targets(&policies);
        let nv = NvMem::init(&p);
        let cp = compile(
            &p,
            &CostModel::default(),
            &det_cfg,
            &BTreeMap::new(),
            &targets,
            &nv,
        );
        let mut checked = 0;
        let mut injected = 0;
        for f in &cp.funcs {
            for b in &f.blocks {
                for (s, bt) in b.steps.iter().zip(&b.batches) {
                    if s.checked || s.inject {
                        assert_eq!(bt.len, 0, "checked/injected sites never batch");
                    }
                    checked += s.checked as usize;
                    injected += s.inject as usize;
                }
            }
        }
        assert_eq!(
            checked,
            det_cfg.use_checks.len(),
            "every use-check site is pre-bound"
        );
        assert_eq!(injected, targets.len());
    }

    #[test]
    fn globals_resolve_to_their_nv_slots() {
        let p = irc("nv a = 1; nv arr[2]; nv b = 2; fn main() { b = a + arr[0]; }").unwrap();
        let nv = NvMem::init(&p);
        let cp = compile(
            &p,
            &CostModel::default(),
            &DetectorConfig::default(),
            &BTreeMap::new(),
            &BTreeSet::new(),
            &nv,
        );
        let mut found = false;
        for f in &cp.funcs {
            for blk in &f.blocks {
                for s in &blk.steps {
                    if let Action::AssignGlobal { slot, name, src } = &s.action {
                        assert_eq!(*name, "b");
                        assert_eq!(Some(*slot), nv.scalar_slot("b"));
                        let CExpr::Binary(_, l, r) = src else {
                            panic!("src shape")
                        };
                        assert!(matches!(**l, CExpr::Global(s) if Some(s) == nv.scalar_slot("a")));
                        assert!(
                            matches!(&**r, CExpr::Index { slot: Some(s), .. } if Some(*s) == nv.array_slot("arr"))
                        );
                        found = true;
                    }
                }
            }
        }
        assert!(found, "the global store compiled to a slot write");
    }
}
