//! The intermittent execution machine: the paper's JIT + Atomics
//! operational semantics (Appendix H) with the taint augmentation of
//! Appendix B, driven by a simulated power supply and sensor
//! environment.
//!
//! One [`Machine`] executes a lowered program instruction by
//! instruction, charging energy per operation. When the supply reports
//! low power the machine follows the paper's rules:
//!
//! * `JIT-LowPower` — checkpoint volatile state into the context, shut
//!   down, recharge, `JIT-Reboot` restore and continue;
//! * `Atom-LowPower` — shut down immediately; `Atom-Reboot` applies the
//!   undo log (`N ◁ L`), restores the region-entry snapshot, and
//!   re-executes the region from its start;
//! * `Atom-Start-Outer/Inner`, `Atom-End-Outer/Inner` — nested regions
//!   flatten via the `natom` counter.
//!
//! ## The input fast path
//!
//! Per-collection bookkeeping (timestamping, bit-vector checks,
//! provenance recording) dominates the runtime of input-bound apps, so
//! everything a fixed call stack determines is resolved **once at
//! construction**: provenance chains are interned into a
//! [`ocelot_analysis::chains::ChainTable`] (every policy chain plus
//! every input site with a statically-unique call stack), and each
//! interned chain carries its detector bit, its pre-resolved
//! consistency checks, and whether the TICS timekeeper stamps it. Input
//! sites reached through several call paths fall back to rebuilding the
//! dynamic chain and probing the table; chains outside the table belong
//! to no policy and skip the detector entirely (exactly what the
//! name-keyed maps used to conclude, one allocation later).

use crate::detect::{BitVector, DetectorConfig, ResolvedCheck, ViolationKind};
use crate::exec::{CompiledProgram, ExecBackend, OptLevel};
use crate::memory::{
    Frame, FrameLayouts, NvLoc, NvMem, ParamBind, RefTarget, RetSlot, Tainted, UndoLog, VolState,
};
use crate::obs::{Obs, ObsLog};
use crate::stats::Stats;
use ocelot_analysis::chains::{ChainId, ChainTable};
use ocelot_analysis::dom::{point_dominates, DomTree, Point};
use ocelot_analysis::taint::Prov;
use ocelot_analysis::{ProgramSsa, ValueFlow};
use ocelot_core::{PolicyKind, PolicySet, RegionInfo};
use ocelot_hw::energy::{CostModel, PowerEvent};
use ocelot_hw::power::PowerSupply;
use ocelot_hw::sensors::Environment;
use ocelot_ir::ast::{Arg, BinOp, Expr, UnOp};
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{FuncId, InstrRef, Op, Place, Program, RegionId, Terminator};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};

/// Saved execution context `κ` (non-volatile).
#[derive(Debug, Clone)]
pub(crate) enum Ctx {
    /// JIT mode; `None` until the first checkpoint (boot context points
    /// at the program start).
    Jit(Option<Box<VolState>>),
    /// Atomic mode: region-entry snapshot, undo log, nesting counter.
    Atom {
        /// Region-entry snapshot of volatile state.
        snap: Box<VolState>,
        /// Undo log of non-volatile pre-state.
        log: UndoLog,
        /// Nesting counter for flattened inner regions.
        natom: u32,
        /// The open region.
        region: RegionId,
    },
}

/// Result of driving one complete program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// `main` returned. `violated` reports whether the detector fired
    /// during this run.
    Completed {
        /// True when at least one policy violation was detected.
        violated: bool,
    },
    /// The step budget ran out before completion.
    StepLimit,
    /// An atomic region rolled back more times in a row than the
    /// configured [`Machine::with_reexec_limit`] allows: its worst-case
    /// attempt does not fit in the energy buffer, so the program can
    /// make no forward progress (§5.3). Samoyed-style scaling rules key
    /// off this outcome.
    Livelock {
        /// The region that never committed.
        region: RegionId,
    },
}

/// Instructions the pathological injector fails at, derived from
/// policies per §7.3: immediately before each use of a fresh variable,
/// and *between* the collections of a consistent set — concretely, at
/// the point where each collection's provenance chain diverges from the
/// previous one (the first call site or input op unique to it), so the
/// failure lands after one collection and before the next.
pub fn pathological_targets(policies: &PolicySet) -> BTreeSet<InstrRef> {
    let mut targets = BTreeSet::new();
    for pol in policies.iter() {
        if pol.is_vacuous() {
            continue;
        }
        match pol.kind {
            PolicyKind::Fresh => targets.extend(pol.uses.iter().copied()),
            PolicyKind::Consistent(_) => {
                let chains: Vec<&Prov> = pol.inputs.iter().collect();
                for w in chains.windows(2) {
                    let (prev, cur) = (w[0], w[1]);
                    let diverge = cur
                        .iter()
                        .zip(prev.iter())
                        .position(|(a, b)| a != b)
                        .unwrap_or_else(|| prev.len().min(cur.len()).saturating_sub(1));
                    if let Some(t) = cur.get(diverge).or_else(|| cur.last()) {
                        targets.insert(*t);
                    }
                }
            }
        }
    }
    targets
}

/// The unit of work for one step.
enum WorkItem {
    Inst(Op),
    Term(Terminator),
}

/// Runtime data pre-resolved for one interned provenance chain: what
/// the detector and the TICS timekeeper need at its collection, without
/// touching a chain-keyed map.
#[derive(Debug, Clone)]
pub(crate) struct ChainRt {
    /// The shared chain (what `Obs::Input` records).
    pub(crate) chain: Arc<Prov>,
    /// This collection's detector bit, if any policy tracks it.
    pub(crate) bit: Option<u32>,
    /// True when some freshness check reads this chain's timestamp —
    /// the only chains the TICS timekeeper needs to stamp. This is what
    /// keeps `chain_times` bounded: untracked dynamic chains are never
    /// stamped, so mitigation restarts cannot strand dead entries.
    pub(crate) timed: bool,
    /// Consistency checks firing at this collection, bits pre-resolved.
    pub(crate) checks: Arc<[ResolvedCheck]>,
}

/// Everything pre-resolved for one detector check site (a fresh-use
/// instruction): the §7.3 bit checks, the chains whose TICS timestamps
/// gate the use, and the variables whose taint the trace logger records.
#[derive(Debug, Clone, Default)]
pub(crate) struct UseSiteRt {
    /// Bit checks to run before the use.
    pub(crate) checks: Vec<ResolvedCheck>,
    /// Interned chains whose collection timestamps the TICS expiry
    /// check compares against the window.
    pub(crate) expiry_requires: Vec<ChainId>,
    /// Fresh-annotated variables whose dependencies are logged as
    /// [`Obs::Use`].
    pub(crate) fresh_vars: Vec<String>,
}

/// Pre-resolved per-sensor data: the interned name (one shared
/// allocation per sensor) and the environment's channel index.
#[derive(Debug, Clone)]
pub(crate) struct SensorRt {
    /// Interned sensor name (what the observation records).
    pub(crate) name: Arc<str>,
    /// The environment channel, pre-resolved.
    pub(crate) chan: Option<usize>,
}

/// How one eagerly-logged ω location is read at region entry: slots
/// resolved once, so entry never probes a name map.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OmegaSlot {
    /// A declared scalar at this [`NvMem`] slot.
    Scalar(usize),
    /// Cell `i` of the declared array at this slot.
    Cell(usize, usize),
    /// A WAR name with no declaration at machine construction
    /// (hand-built IR); re-read by name at region entry, capturing any
    /// slot a runtime store has allocated since — exactly the
    /// name-keyed lookup's behavior.
    Missing,
}

/// One entry of a region's eager checkpoint set.
#[derive(Debug, Clone)]
pub(crate) struct OmegaEntry {
    /// The undo-log key (shared name: cloning is a refcount bump).
    pub(crate) loc: NvLoc,
    /// Pre-resolved storage.
    pub(crate) resolved: OmegaSlot,
}

/// The shared, read-only half of a [`Machine`]: everything resolved
/// once per (program, regions, policies, cost model, environment
/// shape) and then only read — the chain table, frame layouts,
/// pre-resolved check sites, interned names, and the lazily compiled
/// program.
///
/// Build one with [`MachineCore::build`], wrap it in an [`Arc`], and
/// attach any number of devices via [`Machine::from_core`]. The fleet
/// driver shares a single core across all pool workers, so per-device
/// construction touches only [`DeviceState`].
pub struct MachineCore<'p> {
    pub(crate) p: &'p Program,
    pub(crate) policies: PolicySet,
    /// Per-function local slot layouts (shared with compiled frames).
    pub(crate) layouts: Arc<FrameLayouts>,
    pub(crate) region_omega: BTreeMap<RegionId, Vec<OmegaEntry>>,
    pub(crate) costs: CostModel,
    /// Interned provenance chains: every policy chain plus every
    /// statically-fixed input-site chain. Fixed after construction.
    pub(crate) chains: ChainTable,
    /// Pre-resolved per-chain runtime data, indexed by [`ChainId`].
    pub(crate) chain_rt: Vec<ChainRt>,
    /// Input sites whose call stack is fixed, pre-resolved to their
    /// interned chain (what the compile pass bakes into input steps).
    pub(crate) static_chain_of: BTreeMap<InstrRef, ChainId>,
    /// Pre-resolved detector check sites, keyed by use instruction.
    pub(crate) use_rt: BTreeMap<InstrRef, Arc<UseSiteRt>>,
    /// Interned sensor names + pre-resolved environment channels.
    pub(crate) sensor_rt: BTreeMap<String, SensorRt>,
    /// Interned output channel names.
    pub(crate) channel_names: BTreeMap<String, Arc<str>>,
    /// The channel layout `(name, index)` of the environment the core
    /// was built against. [`Machine::from_core`] validates device
    /// environments against it, because [`SensorRt::chan`] bakes these
    /// indexes into the input path.
    pub(crate) channels: Vec<(String, usize)>,
    /// Whole-program SSA facts (constant uses, dead defs, always-bound
    /// locals) the optimizing compile passes consume, indexed by
    /// [`ocelot_ir::ir::FuncId`].
    pub(crate) ssa: ProgramSsa,
    /// Data-only value-flow facts: which values provably carry empty
    /// dependency sets and which dependency sets are never observed.
    pub(crate) flow: ValueFlow,
    /// Per-function always-bound locals (declared, never address-taken,
    /// every read dominated by a write): stores to these never reach
    /// non-volatile memory, so both backends bind the volatile slot
    /// instead of falling back to an NV cell. Indexed by function id.
    pub(crate) reclass: Vec<BTreeSet<String>>,
    /// Check sites whose every required chain is provably collected on
    /// all paths before the use (the §7.3 bit is already set), making
    /// the dynamic probe redundant under batching-compatible runs.
    pub(crate) elidable_sites: BTreeSet<InstrRef>,
    /// The compiled programs shared by every injector-free device on
    /// this core, one per [`OptLevel`], each built once on the first
    /// compiled run at that level. Machines with injector targets
    /// compile privately (injection sites are baked into steps).
    pub(crate) shared_compiled: [OnceLock<Arc<CompiledProgram<'p>>>; 3],
}

/// The per-device mutable half of a [`Machine`]: non-volatile memory,
/// the volatile stack, detector state, the observation log, clocks,
/// and statistics.
///
/// A `DeviceState` owns every allocation the hot path reuses (frame
/// pool, undo log, observation buffer), so a fleet worker can run
/// thousands of devices by recycling one state: [`Machine::into_device`]
/// returns it after a run and [`Machine::from_core`] resets it for the
/// next device with near-zero allocation.
pub struct DeviceState {
    pub(crate) nv: NvMem,
    pub(crate) vol: VolState,
    pub(crate) ctx: Ctx,
    pub(crate) bitvec: BitVector,
    pub(crate) obs: ObsLog,
    pub(crate) tau: u64,
    pub(crate) now_us: u64,
    pub(crate) era: u64,
    pub(crate) stats: Stats,
    /// Recycled call frames: `Ret` returns a frame's allocations here,
    /// the next call reuses them.
    pub(crate) frame_pool: Vec<Frame>,
    pub(crate) consecutive_reexecs: u64,
    pub(crate) livelocked: Option<RegionId>,
    /// Collection wall-clock time per interned chain (the NV timestamps
    /// TICS's timekeeping hardware provides), indexed by [`ChainId`].
    /// Only chains some freshness check actually reads are stamped, so
    /// the table stays at its construction size forever — the bounded
    /// replacement for the chain-keyed map that used to accumulate
    /// entries for dead dynamic chains across mitigation restarts.
    pub(crate) chain_times: Vec<Option<u64>>,
    pub(crate) expiry_restarts_this_run: u32,
    /// Pooled undo log: region entry takes it, commit returns it, so
    /// the log's capacity is reused instead of re-allocated per entry.
    pub(crate) spare_log: UndoLog,
    /// Dynamic consistency-check probes actually executed (detector
    /// check sites reached and resolved against the bit vector). Not
    /// part of [`Stats`]: the optimizing backend elides provably
    /// redundant probes, and this counter is how the reduction is
    /// measured against the interpreter oracle.
    pub(crate) checks_probed: u64,
    /// Scalar writes that reached non-volatile memory through the
    /// unbound-local fallback or a global store. Not part of [`Stats`];
    /// measures the store-reclassification fix.
    pub(crate) nv_scalar_writes: u64,
}

impl Default for DeviceState {
    fn default() -> Self {
        DeviceState {
            nv: NvMem::default(),
            vol: VolState::default(),
            ctx: Ctx::Jit(None),
            bitvec: BitVector::default(),
            obs: ObsLog::with_capacity(200_000),
            tau: 0,
            now_us: 0,
            era: 0,
            stats: Stats::default(),
            frame_pool: Vec::new(),
            consecutive_reexecs: 0,
            livelocked: None,
            chain_times: Vec::new(),
            expiry_restarts_this_run: 0,
            spare_log: UndoLog::default(),
            checks_probed: 0,
            nv_scalar_writes: 0,
        }
    }
}

impl DeviceState {
    /// Resets this state to what a fresh device on `core` starts from,
    /// keeping every reusable allocation: the NV memory is re-initialized
    /// in place, drained frames return to the pool, and the observation
    /// buffer and undo log keep their capacity. After this, the state
    /// is observationally identical to [`DeviceState::default`] attached
    /// to the same core.
    pub(crate) fn reset_for(&mut self, core: &MachineCore<'_>) {
        self.nv.reset_from(core.p);
        for f in self.vol.frames.drain(..) {
            if self.frame_pool.len() < 32 {
                self.frame_pool.push(f);
            }
        }
        self.ctx = Ctx::Jit(None);
        self.bitvec.clear();
        self.obs.reset();
        self.tau = 0;
        self.now_us = 0;
        self.era = 0;
        self.stats = Stats::default();
        self.consecutive_reexecs = 0;
        self.livelocked = None;
        self.chain_times.clear();
        self.chain_times.resize(core.chains.len(), None);
        self.expiry_restarts_this_run = 0;
        self.spare_log.clear();
        self.checks_probed = 0;
        self.nv_scalar_writes = 0;
    }
}

/// The intermittent execution machine: a shared read-only
/// [`MachineCore`] plus one device's [`DeviceState`], environment, and
/// power supply.
///
/// Fields are crate-visible: the compiled execution backend
/// ([`crate::exec`]) drives the same state through the same
/// checked/observable helpers, so the two backends cannot drift apart
/// on anything the paper's semantics observe.
pub struct Machine<'p> {
    pub(crate) core: Arc<MachineCore<'p>>,
    pub(crate) dev: DeviceState,
    pub(crate) env: Environment,
    pub(crate) supply: Box<dyn PowerSupply>,
    pub(crate) injector_targets: BTreeSet<InstrRef>,
    pub(crate) injector_fired: BTreeSet<InstrRef>,
    /// Consecutive same-region rollbacks after which a run reports
    /// [`RunOutcome::Livelock`] (`None` = roll back forever, the
    /// paper's baseline semantics).
    pub(crate) reexec_limit: Option<u64>,
    /// TICS mode: expiration window in µs checked at fresh-use sites
    /// against an RTC that keeps time across power failures.
    pub(crate) expiry_window: Option<u64>,
    /// Which engine `run_once` drives.
    pub(crate) backend: ExecBackend,
    /// How aggressively the compiled backend optimizes. Ignored by the
    /// interpreter (the unoptimized oracle).
    pub(crate) opt: OptLevel,
    /// Per-run latch: true while the current compiled run may skip
    /// elidable check probes. Requires a continuous supply (detector
    /// bits are only cleared by power failure), no injector, and no
    /// TICS expiry window (elision skips the expiry probe too).
    pub(crate) elide_checks: bool,
    /// The pre-resolved program, built lazily on the first compiled
    /// run and invalidated by builders that change what compilation
    /// bakes in (the injector target set). Injector-free machines
    /// share [`MachineCore::shared_compiled`].
    pub(crate) compiled: Option<Arc<CompiledProgram<'p>>>,
}

/// Mitigation restarts one run may spend before giving up and using the
/// stale value — models a TICS deployment whose charging gaps always
/// exceed the window (the handler would otherwise thrash forever).
const EXPIRY_RESTART_CAP: u32 = 25;

impl<'p> MachineCore<'p> {
    /// The check sites whose dynamic probe this core elides under
    /// batching-compatible runs (continuous supply, no injector, no
    /// TICS window) — the set `--opt 2` removes. Exposed so the linter's
    /// OC004 report can be cross-validated against the machine's own
    /// elision decisions.
    pub fn elidable_sites(&self) -> &BTreeSet<InstrRef> {
        &self.elidable_sites
    }

    /// Pre-resolves everything shareable about a program: region ω
    /// sets, the interned chain table, per-chain and per-site detector
    /// data, sensor channels, and interned names.
    ///
    /// `regions` supplies each region's checkpoint set `ω` (from
    /// [`ocelot_core::collect_regions`]); `policies` configures the
    /// violation detectors (pass an empty set to disable detection).
    /// `env` is only inspected for its channel layout — the core
    /// records it and [`Machine::from_core`] checks each device's
    /// environment against it.
    pub fn build(
        p: &'p Program,
        regions: &[RegionInfo],
        policies: PolicySet,
        env: &Environment,
        costs: CostModel,
    ) -> Self {
        let det_cfg = DetectorConfig::from_policies(&policies);
        let layouts = Arc::new(FrameLayouts::new(p));
        let nv = NvMem::init(p);
        // Eagerly-logged set at region entry: the WAR locations, whose
        // pre-region values must be snapshotted before any read-then-
        // write corrupts them. EMW locations (written but never read
        // first) are logged dynamically on first write — the same split
        // prior work uses, and what keeps a write-only large structure
        // (cem's log table) off the eager checkpoint path. Slots and
        // undo-log keys are resolved here, once.
        let mut region_omega = BTreeMap::new();
        for r in regions {
            let mut locs = Vec::new();
            for g in &r.effects.war {
                match p.global(g).and_then(|gl| gl.array_len) {
                    Some(n) => {
                        let slot = nv.array_slot(g).expect("declared array has a slot");
                        let name = Arc::clone(nv.array_name(slot));
                        for i in 0..n {
                            locs.push(OmegaEntry {
                                loc: NvLoc::Cell(Arc::clone(&name), i),
                                resolved: OmegaSlot::Cell(slot, i),
                            });
                        }
                    }
                    None => match nv.scalar_slot(g) {
                        Some(slot) => locs.push(OmegaEntry {
                            loc: NvLoc::Scalar(Arc::clone(nv.scalar_name(slot))),
                            resolved: OmegaSlot::Scalar(slot),
                        }),
                        None => locs.push(OmegaEntry {
                            loc: NvLoc::Scalar(Arc::from(g.as_str())),
                            resolved: OmegaSlot::Missing,
                        }),
                    },
                }
            }
            region_omega.insert(r.id, locs);
        }

        // Intern every chain the detector can ever key off (policy
        // chains), then every statically-fixed input-site chain. The
        // table is immutable afterwards: dynamic chains outside it
        // belong to no policy and need no runtime state.
        let mut chains = ChainTable::new();
        for chain in det_cfg.bit_of.keys() {
            chains.intern(chain.clone());
        }
        for checks in det_cfg
            .use_checks
            .values()
            .chain(det_cfg.input_checks.values())
        {
            for c in checks {
                for ch in &c.requires {
                    chains.intern(ch.clone());
                }
            }
        }
        let mut static_chain_of = BTreeMap::new();
        for (iref, chain) in ocelot_analysis::chains::static_input_chains(p) {
            static_chain_of.insert(iref, chains.intern(chain));
        }

        // Which chains the TICS timekeeper must stamp: exactly those a
        // freshness check compares against the window.
        let mut timed = vec![false; chains.len()];
        for checks in det_cfg.use_checks.values() {
            for c in checks {
                if c.kind == ViolationKind::Freshness {
                    for ch in &c.requires {
                        if let Some(id) = chains.lookup(ch) {
                            timed[id as usize] = true;
                        }
                    }
                }
            }
        }
        let chain_rt: Vec<ChainRt> = chains
            .iter()
            .map(|(id, arc)| {
                let resolved: Vec<ResolvedCheck> = det_cfg
                    .input_checks
                    .get(&**arc)
                    .map(|cs| cs.iter().map(|c| det_cfg.resolve(c)).collect())
                    .unwrap_or_default();
                ChainRt {
                    chain: Arc::clone(arc),
                    bit: det_cfg.bit_of.get(&**arc).map(|&b| b as u32),
                    timed: timed[id as usize],
                    checks: resolved.into(),
                }
            })
            .collect();

        // Pre-resolve every detector check site (bit checks + expiry
        // requires + fresh-use trace logging) into one map probe.
        let mut fresh_use_vars: BTreeMap<InstrRef, Vec<String>> = BTreeMap::new();
        for pol in policies.iter() {
            if pol.kind == PolicyKind::Fresh && !pol.is_vacuous() {
                if let Some(d) = pol.decls.first() {
                    for u in &pol.uses {
                        fresh_use_vars.entry(*u).or_default().push(d.var.clone());
                    }
                }
            }
        }
        let sites: BTreeSet<InstrRef> = det_cfg
            .use_checks
            .keys()
            .chain(fresh_use_vars.keys())
            .copied()
            .collect();
        let mut use_rt = BTreeMap::new();
        for site in sites {
            let src = det_cfg.use_checks.get(&site);
            let checks = src
                .map(|cs| cs.iter().map(|c| det_cfg.resolve(c)).collect())
                .unwrap_or_default();
            let expiry_requires = src
                .map(|cs| {
                    cs.iter()
                        .filter(|c| c.kind == ViolationKind::Freshness)
                        .flat_map(|c| c.requires.iter())
                        .filter_map(|ch| chains.lookup(ch))
                        .collect()
                })
                .unwrap_or_default();
            let fresh_vars = fresh_use_vars.remove(&site).unwrap_or_default();
            use_rt.insert(
                site,
                Arc::new(UseSiteRt {
                    checks,
                    expiry_requires,
                    fresh_vars,
                }),
            );
        }

        // One shared allocation per sensor / output channel name, and
        // the sensor's environment index resolved once.
        let mut sensor_rt: BTreeMap<String, SensorRt> = BTreeMap::new();
        let mut channel_names: BTreeMap<String, Arc<str>> = BTreeMap::new();
        for f in &p.funcs {
            for (_, inst) in f.iter_insts() {
                match &inst.op {
                    Op::Input { sensor, .. } => {
                        sensor_rt.entry(sensor.clone()).or_insert_with(|| SensorRt {
                            name: Arc::from(sensor.as_str()),
                            chan: env.channel_index(sensor),
                        });
                    }
                    Op::Output { channel, .. } => {
                        channel_names
                            .entry(channel.clone())
                            .or_insert_with(|| Arc::from(channel.as_str()));
                    }
                    _ => {}
                }
            }
        }

        let channels: Vec<(String, usize)> = env
            .channels()
            .into_iter()
            .map(|ch| {
                let idx = env.channel_index(ch).expect("listed channel has an index");
                (ch.to_string(), idx)
            })
            .collect();

        let ssa = ProgramSsa::analyze(p);
        // Fresh-use logging observes each fresh variable's dependency
        // set at its use sites ([`Obs::Use`]); the region transforms may
        // strip the annotation from the instruction stream, so the flow
        // analysis is told about those observation points explicitly.
        let observed: Vec<(FuncId, String)> = use_rt
            .iter()
            .flat_map(|(site, rt)| rt.fresh_vars.iter().map(|v| (site.func, v.clone())))
            .collect();
        let flow = ValueFlow::analyze_observing(p, &observed);
        let reclass: Vec<BTreeSet<String>> =
            ssa.funcs.iter().map(|fs| fs.always_bound.clone()).collect();
        let elidable_sites = elidable_check_sites(p, &det_cfg, use_rt.keys().copied());

        MachineCore {
            p,
            policies,
            layouts,
            region_omega,
            costs,
            chains,
            chain_rt,
            static_chain_of,
            use_rt,
            sensor_rt,
            channel_names,
            channels,
            ssa,
            flow,
            reclass,
            elidable_sites,
            shared_compiled: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
        }
    }
}

/// Check sites whose dynamic probe is provably redundant: every chain a
/// site's checks require is *must-collected* — on every path of every
/// run that reaches the site, the chain's input has already executed
/// under exactly that call stack, so its §7.3 bit is set and
/// [`BitVector::run_resolved`] cannot report a violation.
///
/// Bits are only cleared by power failure, so the proof transfers to
/// execution only when the supply cannot fail mid-run — the runtime
/// gates elision on a continuous supply (and on no injector / no TICS
/// window); see [`Machine::run_once`]'s compiled path.
///
/// The proof obligation, for a site `S` (unique calling context `sctx`)
/// and a required chain `ch = [c0 .. c(n-1)]` (call sites descending
/// from `main`, ending at the input instruction):
///
/// * every function along `sctx` has a unique context (so dominance in
///   one function's CFG translates into execution order of the whole
///   interleaving);
/// * with `k` the common prefix length of `ch`'s call-site part and
///   `sctx`, the chain's divergence instruction `ch[k]` dominates the
///   point where S's context continues (`sctx[k]`, or `S` itself when
///   `k == sctx.len()`): every entry into that shared frame executes
///   `ch[k]` before it can proceed toward `S`;
/// * every deeper chain element `ch[k+1..]` dominates its function's
///   exit: once the divergence call fires, the descent to the input is
///   unavoidable before the callee can return.
///
/// Per-site elision witnesses: for every provably redundant site, the
/// *divergence instruction* of each required chain — the `ch[k]` whose
/// dominance carries the proof, i.e. the statically-earlier site whose
/// execution guarantees the chain is collected. This is what the O2
/// middle-end elides and what the static linter reports (OC004 names
/// the dominating site); both consume this one function, so the lint
/// report and the elision set cannot drift apart.
pub fn elision_witnesses(
    p: &Program,
    det_cfg: &DetectorConfig,
    sites: impl Iterator<Item = InstrRef>,
) -> BTreeMap<InstrRef, Vec<InstrRef>> {
    let uc = ocelot_analysis::chains::unique_contexts(p);
    let doms: Vec<DomTree> = p
        .funcs
        .iter()
        .map(|f| DomTree::dominators(f, &Cfg::new(f)))
        .collect();
    let point_of = |iref: InstrRef| -> Option<Point> {
        p.func(iref.func)
            .find_label(iref.label)
            .map(|(b, i)| Point::new(b, i))
    };
    let exit_point = |f: FuncId| -> Point {
        let func = p.func(f);
        Point::new(func.exit, func.block(func.exit).instrs.len())
    };

    // On success, hands back the divergence instruction `ch[k]`.
    let must_collected = |site: InstrRef, sctx: &Prov, ch: &Prov| -> Option<InstrRef> {
        let n = ch.len();
        if n == 0 {
            return None;
        }
        let calls = &ch[..n - 1];
        let k = calls
            .iter()
            .zip(sctx.iter())
            .take_while(|(a, b)| a == b)
            .count();
        // Where S's side of the interleaving continues inside the
        // deepest shared frame.
        let (next_func, next) = if k < sctx.len() {
            (sctx[k].func, point_of(sctx[k])?)
        } else {
            (site.func, point_of(site)?)
        };
        if ch[k].func != next_func {
            return None; // malformed chain (hand-built IR): stay dynamic
        }
        let at = point_of(ch[k])?;
        if at == next || !point_dominates(&doms[next_func.0 as usize], at, next) {
            return None;
        }
        for el in &ch[k + 1..] {
            let at = point_of(*el)?;
            if !point_dominates(&doms[el.func.0 as usize], at, exit_point(el.func)) {
                return None;
            }
        }
        Some(ch[k])
    };

    let mut out = BTreeMap::new();
    'site: for site in sites {
        // Uniqueness along S's own context: `unique_contexts` already
        // requires every prefix function to have a unique context.
        let Some(sctx) = uc[site.func.0 as usize].as_ref() else {
            continue;
        };
        let mut witnesses: Vec<InstrRef> = Vec::new();
        for check in det_cfg.use_checks.get(&site).into_iter().flatten() {
            for ch in &check.requires {
                // Chains without a bit (or without a reporting op) are
                // dropped by `DetectorConfig::resolve` and can never
                // report stale.
                if !det_cfg.bit_of.contains_key(ch) || ch.last().is_none() {
                    continue;
                }
                match must_collected(site, sctx, ch) {
                    Some(w) => witnesses.push(w),
                    None => continue 'site,
                }
            }
        }
        witnesses.sort();
        witnesses.dedup();
        out.insert(site, witnesses);
    }
    out
}

fn elidable_check_sites(
    p: &Program,
    det_cfg: &DetectorConfig,
    sites: impl Iterator<Item = InstrRef>,
) -> BTreeSet<InstrRef> {
    elision_witnesses(p, det_cfg, sites).into_keys().collect()
}

impl<'p> Machine<'p> {
    /// Creates a machine over a compiled program.
    ///
    /// `regions` supplies each region's checkpoint set `ω` (from
    /// [`ocelot_core::collect_regions`]); `policies` configures the
    /// violation detectors (pass an empty set to disable detection).
    pub fn new(
        p: &'p Program,
        regions: &[RegionInfo],
        policies: PolicySet,
        env: Environment,
        costs: CostModel,
        supply: Box<dyn PowerSupply>,
    ) -> Self {
        let core = Arc::new(MachineCore::build(p, regions, policies, &env, costs));
        Machine::from_core(core, DeviceState::default(), env, supply)
    }

    /// Attaches a device to a shared pre-resolved core: the cheap
    /// constructor the fleet driver uses to run many devices per core.
    ///
    /// `dev` is reset in place (allocations are kept), so recycling the
    /// state of a finished machine — via [`Machine::into_device`] —
    /// starts the next device from exactly the fresh-device state.
    ///
    /// # Panics
    ///
    /// Panics when `env`'s channel layout disagrees with the
    /// environment the core was built against: the core's pre-resolved
    /// sensor channels would silently read the wrong signals.
    pub fn from_core(
        core: Arc<MachineCore<'p>>,
        mut dev: DeviceState,
        env: Environment,
        supply: Box<dyn PowerSupply>,
    ) -> Self {
        let dev_channels = env.channels();
        assert_eq!(
            dev_channels.len(),
            core.channels.len(),
            "device environment and core disagree on channel count"
        );
        for (name, idx) in &core.channels {
            assert_eq!(
                env.channel_index(name),
                Some(*idx),
                "device environment disagrees with the core's channel layout for {name:?}"
            );
        }
        dev.reset_for(&core);
        Machine {
            core,
            dev,
            env,
            supply,
            injector_targets: BTreeSet::new(),
            injector_fired: BTreeSet::new(),
            reexec_limit: None,
            expiry_window: None,
            backend: ExecBackend::Interp,
            opt: OptLevel::default(),
            elide_checks: false,
            compiled: None,
        }
    }

    /// The shared read-only core this machine runs on.
    pub fn core(&self) -> &Arc<MachineCore<'p>> {
        &self.core
    }

    /// Tears the machine down, returning its per-device state so a
    /// pool can recycle the allocations for the next device.
    pub fn into_device(self) -> DeviceState {
        self.dev
    }

    /// Arms the pathological failure injector at `targets` (each fires
    /// once per run).
    pub fn with_injector(mut self, targets: BTreeSet<InstrRef>) -> Self {
        self.injector_targets = targets;
        // Injection sites are baked into compiled steps.
        self.compiled = None;
        self
    }

    /// Selects the execution engine: the instruction-at-a-time
    /// interpreter (the oracle) or the pre-resolved compiled backend.
    /// Both produce identical [`Stats`], observation traces, and
    /// [`RunOutcome`] sequences; the compiled backend is just faster.
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The engine this machine runs on.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Selects the compiled backend's optimization level. Every level
    /// is observably identical (same [`Stats`], traces, and
    /// [`RunOutcome`]s); higher levels only remove host-side work. The
    /// interpreter ignores the level.
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        if opt != self.opt {
            // Optimization decisions are baked into compiled steps.
            self.compiled = None;
        }
        self.opt = opt;
        self
    }

    /// The optimization level the compiled backend runs at.
    pub fn opt(&self) -> OptLevel {
        self.opt
    }

    /// Dynamic consistency-check probes executed so far (not part of
    /// [`Stats`]: check elision is *supposed* to change this, and only
    /// this).
    pub fn checks_probed(&self) -> u64 {
        self.dev.checks_probed
    }

    /// Scalar stores that reached non-volatile memory so far (globals
    /// plus any unbound-local fallback writes). Not part of [`Stats`].
    pub fn nv_scalar_writes(&self) -> u64 {
        self.dev.nv_scalar_writes
    }

    /// Reports [`RunOutcome::Livelock`] once a region rolls back `limit`
    /// times in a row without committing, instead of re-executing
    /// forever.
    pub fn with_reexec_limit(mut self, limit: u64) -> Self {
        self.reexec_limit = Some(limit);
        self
    }

    /// Enables the TICS-style execution model (§2.3): every fresh-use
    /// site checks that the value's inputs are at most `window_us` old
    /// on a clock that keeps time across power failures; expired values
    /// trigger a mitigation handler that restarts the run to re-collect.
    ///
    /// Temporal-consistency constraints have no expiry expression and
    /// remain unchecked by this mode — the paper's critique, measurable.
    pub fn with_expiry_window(mut self, window_us: u64) -> Self {
        self.expiry_window = Some(window_us);
        self
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.dev.stats
    }

    /// Current simulated wall-clock time in µs.
    pub fn now_us(&self) -> u64 {
        self.dev.now_us
    }

    /// Takes the committed observation trace accumulated so far.
    pub fn take_trace(&mut self) -> Vec<Obs> {
        self.dev.obs.take()
    }

    /// The policies this machine checks.
    pub fn policies(&self) -> &PolicySet {
        &self.core.policies
    }

    /// Runs `main` once to completion (or until `max_steps`).
    pub fn run_once(&mut self, max_steps: u64) -> RunOutcome {
        let _span = ocelot_telemetry::span!("execute", "device");
        self.reset_run();
        if self.backend == ExecBackend::Compiled {
            return self.run_once_compiled(max_steps);
        }
        let violations_before = self.dev.stats.violations;
        let mut steps = 0u64;
        loop {
            steps += 1;
            if steps > max_steps {
                return RunOutcome::StepLimit;
            }
            if self.step() {
                return self.complete_run(violations_before);
            }
            if let Some(region) = self.dev.livelocked {
                return RunOutcome::Livelock { region };
            }
        }
    }

    /// Resets per-run state (both backends share this preamble).
    pub(crate) fn reset_run(&mut self) {
        self.dev.vol = VolState {
            frames: vec![Frame::at_entry(&self.core.layouts, self.core.p.main)],
        };
        self.dev.ctx = Ctx::Jit(None);
        self.injector_fired.clear();
        self.dev.consecutive_reexecs = 0;
        self.dev.livelocked = None;
        self.dev.expiry_restarts_this_run = 0;
    }

    /// Books a completed run and reports whether it violated.
    pub(crate) fn complete_run(&mut self, violations_before: u64) -> RunOutcome {
        self.dev.stats.runs_completed += 1;
        let violated = self.dev.stats.violations > violations_before;
        if violated {
            self.dev.stats.runs_with_violation += 1;
        }
        RunOutcome::Completed { violated }
    }

    /// Runs the program back-to-back until `sim_duration_us` of
    /// simulated time has elapsed (the paper's fixed-wall-clock
    /// methodology for Table 2(b)). Returns the number of completed
    /// runs.
    pub fn run_for(&mut self, sim_duration_us: u64, max_steps_per_run: u64) -> u64 {
        let deadline = self.dev.now_us + sim_duration_us;
        let mut runs = 0;
        while self.dev.now_us < deadline {
            match self.run_once(max_steps_per_run) {
                RunOutcome::Completed { .. } => runs += 1,
                RunOutcome::StepLimit | RunOutcome::Livelock { .. } => break,
            }
        }
        runs
    }

    // ------------------------------------------------------------------
    // Stepping
    // ------------------------------------------------------------------

    /// Executes one instruction or terminator. Returns true when the
    /// program run completed.
    fn step(&mut self) -> bool {
        let Some(top) = self.dev.vol.top() else {
            return true;
        };
        let (top_func, top_block, top_index) = (top.func, top.block, top.index);
        let func = self.core.p.func(top_func);
        let block = func.block(top_block);
        let at_term = top_index >= block.instrs.len();
        let label = if at_term {
            block.term_label
        } else {
            block.instrs[top_index].label
        };
        let here = InstrRef {
            func: func.id,
            label,
        };

        // 1. Pathological injection: power fails immediately before the
        //    targeted operation (once per run).
        if self.injector_targets.contains(&here) && !self.injector_fired.contains(&here) {
            self.injector_fired.insert(here);
            self.power_fail();
            return false;
        }

        // 2. Pay for the operation; energy exhaustion fails *before* the
        //    operation takes effect.
        let work = if at_term {
            WorkItem::Term(block.term.clone())
        } else {
            WorkItem::Inst(block.instrs[top_index].op.clone())
        };
        let cycles = match &work {
            WorkItem::Term(t) => static_term_cost(&self.core.costs, t),
            WorkItem::Inst(op) => self.op_cost(op),
        };
        match &work {
            WorkItem::Inst(Op::Input { .. }) => self.dev.stats.breakdown.input += cycles,
            WorkItem::Inst(Op::Output { .. }) => self.dev.stats.breakdown.output += cycles,
            WorkItem::Inst(Op::AtomStart { .. }) => {
                self.dev.stats.breakdown.checkpoint += cycles;
            }
            _ => self.dev.stats.breakdown.compute += cycles,
        }
        if self.charge(cycles) == PowerEvent::LowPower {
            self.power_fail();
            return false;
        }

        // 3. Detector checks at this site (§7.3): bits are inspected
        //    before the operation executes. In TICS mode an expired
        //    value triggers the mitigation handler instead of the use.
        if self.run_checks(here) {
            self.mitigation_restart();
            return false;
        }

        // 4. Execute.
        self.dev.tau += 1;
        self.dev.stats.instructions += 1;
        match work {
            WorkItem::Term(term) => self.exec_terminator(&term),
            WorkItem::Inst(op) => {
                self.exec_op(here, &op);
                false
            }
        }
    }

    pub(crate) fn op_cost(&self, op: &Op) -> u64 {
        match op {
            Op::Assign { place, .. } => self.assign_place_cost(place),
            Op::AtomStart { region } => self.atom_start_cost(*region),
            _ => static_op_cost(&self.core.costs, op).expect("only Assign/AtomStart are dynamic"),
        }
    }

    /// Cost of a store to `place` in the current frame — dynamic
    /// because an unbound destination (or a reference into a global)
    /// pays the NV write. Shared by both backends' dynamic-cost paths.
    pub(crate) fn assign_place_cost(&self, place: &Place) -> u64 {
        match place {
            Place::Var(x) if !self.is_local(x) => {
                // Always-bound locals (every read dominated by a write)
                // bind their volatile slot on first store instead of
                // leaking to NV — the store-reclassification fix. This
                // is also what the WCET analysis already assumes when
                // it charges declared-local stores at ALU cost.
                if self.reclassified_local(x) {
                    self.core.costs.alu
                } else {
                    self.core.costs.nv_write
                }
            }
            Place::Index(..) => self.core.costs.nv_write,
            Place::Deref(x) => self.deref_write_cost(x),
            _ => self.core.costs.alu,
        }
    }

    /// Cost of a store through reference parameter `x` (globals pay the
    /// NV write; locals stay volatile).
    pub(crate) fn deref_write_cost(&self, x: &str) -> u64 {
        match self.ref_target(x) {
            Some(RefTarget::Global(_)) => self.core.costs.nv_write,
            _ => self.core.costs.alu,
        }
    }

    /// Cost of entering `region`: a counter bump when already atomic
    /// (Atom-Start-Inner), otherwise the checkpoint of the live
    /// volatile state plus the eager ω log.
    pub(crate) fn atom_start_cost(&self, region: RegionId) -> u64 {
        if matches!(self.dev.ctx, Ctx::Atom { .. }) {
            self.core.costs.alu
        } else {
            let omega = self
                .core
                .region_omega
                .get(&region)
                .map(|l| l.len())
                .unwrap_or(0);
            self.core.costs.checkpoint_cycles(self.dev.vol.words())
                + self.core.costs.log_cycles(omega)
        }
    }

    pub(crate) fn charge(&mut self, cycles: u64) -> PowerEvent {
        self.dev.stats.on_cycles += cycles;
        let us = self.core.costs.cycles_to_us(cycles);
        self.dev.now_us += us;
        self.dev.stats.on_time_us += us;
        self.supply.consume(self.core.costs.cycles_to_nj(cycles))
    }

    /// Charges time/cycles for shutdown-path work (checkpoint) from the
    /// comparator reserve: time passes but no further LowPower can fire.
    pub(crate) fn charge_reserve(&mut self, cycles: u64) {
        self.dev.stats.on_cycles += cycles;
        let us = self.core.costs.cycles_to_us(cycles);
        self.dev.now_us += us;
        self.dev.stats.on_time_us += us;
    }

    pub(crate) fn record_violations(&mut self, events: Vec<crate::detect::ViolationEvent>) {
        for ev in events {
            self.dev.stats.violations += 1;
            match ev.kind {
                ViolationKind::Freshness => self.dev.stats.fresh_violations += 1,
                ViolationKind::Consistency => self.dev.stats.consistency_violations += 1,
            }
            self.dev.obs.push(Obs::Violation(ev));
        }
    }

    /// Runs the per-site detectors. Returns true when a TICS expiry
    /// check tripped and the mitigation handler should run *instead of*
    /// this operation. One pre-resolved map probe covers the expiry
    /// check, the bit checks, and the fresh-use trace logging.
    pub(crate) fn run_checks(&mut self, here: InstrRef) -> bool {
        let Some(rt) = self.core.use_rt.get(&here) else {
            return false;
        };
        let rt = Arc::clone(rt);
        self.dev.checks_probed += 1;
        ocelot_telemetry::metrics::CHECKS_EXECUTED.incr();
        // TICS expiry check precedes the use: a tripped check prevents
        // the stale use (no violation) at the cost of a handler run.
        if self.expiry_check_trips(&rt) {
            self.dev.stats.expiry_trips += 1;
            if self.dev.expiry_restarts_this_run < EXPIRY_RESTART_CAP {
                return true;
            }
            // The handler already thrashed this run: proceed with the
            // stale value (a real deployment would drop the sample or
            // hang; either way the constraint is not met).
            self.dev.stats.expiry_giveups += 1;
        }
        if !rt.checks.is_empty() {
            let events = self
                .dev
                .bitvec
                .run_resolved(&rt.checks, here, self.dev.tau, self.dev.era);
            self.record_violations(events);
        }
        self.log_fresh_uses_rt(&rt, here);
        false
    }

    /// Records a [`Obs::Use`] observation (with dynamic taint) for each
    /// fresh-annotated variable at this site, for the formal trace
    /// checker. Split from [`Machine::run_checks`] so an elided check
    /// site — one whose probe the optimizer proved redundant — still
    /// produces the identical observation trace.
    pub(crate) fn log_fresh_uses(&mut self, here: InstrRef) {
        let Some(rt) = self.core.use_rt.get(&here) else {
            return;
        };
        let rt = Arc::clone(rt);
        self.log_fresh_uses_rt(&rt, here);
    }

    fn log_fresh_uses_rt(&mut self, rt: &UseSiteRt, here: InstrRef) {
        for var in &rt.fresh_vars {
            let deps = self.read_var(var).deps;
            self.dev.obs.push(Obs::Use {
                at: here,
                tau: self.dev.tau,
                time_us: self.dev.now_us,
                era: self.dev.era,
                deps,
            });
        }
    }

    /// True when TICS mode is on and any input collection this site
    /// depends on (by interned chain) is older than the window.
    fn expiry_check_trips(&self, rt: &UseSiteRt) -> bool {
        let Some(window) = self.expiry_window else {
            return false;
        };
        rt.expiry_requires
            .iter()
            .any(|&id| match self.dev.chain_times[id as usize] {
                Some(collected) => self.dev.now_us.saturating_sub(collected) > window,
                // No surviving timestamp: treat as expired.
                None => true,
            })
    }

    /// The TICS mitigation handler: abandon the current run and restart
    /// `main` so every input is re-collected. Aborts any open atomic
    /// region first (its partial NV writes roll back).
    ///
    /// Chain timestamps need no pruning here: only interned chains are
    /// ever stamped (`chain_times` is a fixed-size table), so a restart
    /// cannot strand entries for dead dynamic chains — the re-collected
    /// inputs simply overwrite their slots.
    pub(crate) fn mitigation_restart(&mut self) {
        ocelot_telemetry::metrics::MITIGATION_RESTARTS.incr();
        self.dev.stats.expiry_restarts += 1;
        self.dev.expiry_restarts_this_run += 1;
        match std::mem::replace(&mut self.dev.ctx, Ctx::Jit(None)) {
            Ctx::Atom { mut log, .. } => {
                log.apply(&mut self.dev.nv);
                self.dev.obs.abort_region();
                log.clear();
                self.dev.spare_log = log;
            }
            Ctx::Jit(saved) => self.dev.ctx = Ctx::Jit(saved),
        }
        self.dev.vol = VolState {
            frames: vec![Frame::at_entry(&self.core.layouts, self.core.p.main)],
        };
    }

    /// The dynamic provenance chain ending at `input_ref`: the call
    /// sites of every frame above `main`, then the input instruction.
    pub(crate) fn dynamic_chain(&self, input_ref: InstrRef) -> Prov {
        ocelot_telemetry::metrics::CHAIN_REBUILDS.incr();
        let mut chain: Vec<InstrRef> = self
            .dev
            .vol
            .frames
            .iter()
            .skip(1)
            .filter_map(|f| f.call_site)
            .collect();
        chain.push(input_ref);
        chain
    }

    // ------------------------------------------------------------------
    // Power failure handling (Appendix H)
    // ------------------------------------------------------------------

    pub(crate) fn power_fail(&mut self) {
        match &mut self.dev.ctx {
            Ctx::Jit(saved) => {
                // JIT-LowPower: checkpoint volatile state from the
                // comparator reserve, then shut down.
                let words = self.dev.vol.words();
                *saved = Some(Box::new(self.dev.vol.clone()));
                self.dev.stats.jit_checkpoints += 1;
                self.dev.stats.ckpt_words += words as u64;
                let c = self.core.costs.checkpoint_cycles(words);
                self.dev.stats.breakdown.checkpoint += c;
                self.charge_reserve(c);
            }
            Ctx::Atom { .. } => {
                // Atom-LowPower: shut down immediately; the region-entry
                // context is already saved.
            }
        }
        // Off / charging.
        let off = self.supply.recharge();
        self.dev.now_us += off;
        self.dev.stats.off_time_us += off;
        self.dev.stats.reboots += 1;
        ocelot_telemetry::metrics::REBOOTS.incr();
        self.dev.bitvec.clear();
        self.dev.obs.push_unbuffered(Obs::Reboot {
            off_us: off,
            ended_era: self.dev.era,
        });
        self.dev.era += 1;

        // Reboot.
        match &mut self.dev.ctx {
            Ctx::Jit(saved) => {
                match saved {
                    Some(snap) => {
                        self.dev.vol = (**snap).clone();
                    }
                    None => {
                        // Boot context: restart the program run.
                        self.dev.vol = VolState {
                            frames: vec![Frame::at_entry(&self.core.layouts, self.core.p.main)],
                        };
                    }
                }
                let words = self.dev.vol.words();
                let c = self.core.costs.restore_cycles(words);
                self.dev.stats.breakdown.restore += c;
                self.charge_reserve(c);
            }
            Ctx::Atom {
                snap,
                log,
                natom,
                region,
            } => {
                // Atom-Reboot: N ◁ L, restore snapshot, natom := 0.
                log.apply(&mut self.dev.nv);
                *natom = 0;
                self.dev.vol = (**snap).clone();
                self.dev.obs.abort_region();
                self.dev.obs.begin_region();
                self.dev.stats.region_reexecs += 1;
                self.dev.consecutive_reexecs += 1;
                if let Some(limit) = self.reexec_limit {
                    if self.dev.consecutive_reexecs >= limit {
                        self.dev.livelocked = Some(*region);
                    }
                }
                let words = self.dev.vol.words() + log.words();
                let c = self.core.costs.restore_cycles(words);
                self.dev.stats.breakdown.restore += c;
                self.charge_reserve(c);
            }
        }
    }

    // ------------------------------------------------------------------
    // Operation execution
    // ------------------------------------------------------------------

    fn exec_op(&mut self, here: InstrRef, op: &Op) {
        match op {
            Op::Skip | Op::Annot { .. } => {
                self.advance();
            }
            Op::Bind { var, src } => {
                let v = self.eval(src);
                self.bind_local(var, v);
                self.advance();
            }
            Op::Assign { place, src } => {
                let v = self.eval(src);
                self.write_place(place, v);
                self.advance();
            }
            Op::Input { var, sensor } => {
                self.exec_input(here, var, sensor);
            }
            Op::Call { dst, callee, args } => {
                self.exec_call(here, dst.as_deref(), *callee, args);
            }
            Op::Output { channel, args } => {
                let vals: Vec<Tainted> = args.iter().map(|e| self.eval(e)).collect();
                let mut deps = crate::memory::Deps::new();
                for v in &vals {
                    deps.extend(v.deps.iter().copied());
                }
                let channel = match self.core.channel_names.get(channel.as_str()) {
                    Some(a) => Arc::clone(a),
                    None => Arc::from(channel.as_str()),
                };
                self.dev.obs.push(Obs::Output {
                    at: here,
                    tau: self.dev.tau,
                    era: self.dev.era,
                    channel,
                    values: vals.iter().map(|v| v.value).collect(),
                    deps,
                });
                self.dev.stats.outputs += 1;
                self.advance();
            }
            Op::AtomStart { region } => {
                // Advance first: the saved continuation `c` resumes
                // *after* `startatom` (Appendix H), so rollback re-runs
                // the region body, not the marker.
                self.advance();
                self.atom_start(*region);
            }
            Op::AtomEnd { region } => {
                self.atom_end(*region);
                self.advance();
            }
        }
    }

    /// Binds a local in the top frame (slot when the layout has one,
    /// spill otherwise — the latter only for hand-built IR).
    pub(crate) fn bind_local(&mut self, var: &str, v: Tainted) {
        let func = self.dev.vol.top().expect("frame exists").func;
        match self.core.layouts.slot(func, var) {
            Some(s) => self.dev.vol.top_mut().expect("frame exists").set_slot(s, v),
            None => self
                .dev
                .vol
                .top_mut()
                .expect("frame exists")
                .set_extra(var, v),
        }
    }

    /// Executes one input operation on the interpreter: resolves the
    /// destination slot, the interned sensor name, and the chain
    /// dynamically, then runs the shared collection core.
    pub(crate) fn exec_input(&mut self, here: InstrRef, var: &str, sensor: &str) {
        let func = self.dev.vol.top().expect("frame exists").func;
        let slot = self.core.layouts.slot(func, var);
        let (sensor_name, chan) = match self.core.sensor_rt.get(sensor) {
            Some(rt) => (Arc::clone(&rt.name), rt.chan),
            None => (Arc::from(sensor), self.env.channel_index(sensor)),
        };
        let chain = self.dynamic_chain(here);
        let id = self.core.chains.lookup(&chain);
        self.input_core(here, slot, var, sensor, sensor_name, chan, id, Some(chain));
    }

    /// The collection core both backends share: sample, taint, stamp,
    /// run the consistency checks of this collection, set its bit,
    /// record the observation, and advance. For an interned chain every
    /// piece is a pre-resolved index; an uninterned chain belongs to no
    /// policy, so only the observation remains.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn input_core(
        &mut self,
        here: InstrRef,
        slot: Option<u32>,
        var: &str,
        sensor: &str,
        sensor_name: Arc<str>,
        chan: Option<usize>,
        id: Option<ChainId>,
        dyn_chain: Option<Prov>,
    ) {
        let value = match chan {
            Some(i) => self.env.sample_index(i, self.dev.now_us),
            None => self.env.sample(sensor, self.dev.now_us),
        };
        let t = Tainted::input(value, self.dev.tau);
        match slot {
            Some(s) => self.dev.vol.top_mut().expect("frame exists").set_slot(s, t),
            None => self
                .dev
                .vol
                .top_mut()
                .expect("frame exists")
                .set_extra(var, t),
        }
        let chain = match id {
            Some(id) => {
                let rt = &self.core.chain_rt[id as usize];
                let chain = Arc::clone(&rt.chain);
                let bit = rt.bit;
                let timed = rt.timed;
                let checks = Arc::clone(&rt.checks);
                if timed && self.expiry_window.is_some() {
                    // TICS's timekeeping hardware: stamp the collection.
                    self.dev.chain_times[id as usize] = Some(self.dev.now_us);
                }
                // Consistency checks fire at the collection, before its
                // own bit is set (§7.3).
                if !checks.is_empty() {
                    let events =
                        self.dev
                            .bitvec
                            .run_resolved(&checks, here, self.dev.tau, self.dev.era);
                    self.record_violations(events);
                }
                if let Some(b) = bit {
                    self.dev.bitvec.set_bit(b as usize);
                }
                chain
            }
            // A chain outside the table tracks no policy: no bit, no
            // checks, no timestamp — the observation still records it.
            None => Arc::new(dyn_chain.expect("uninterned chains carry their dynamic rebuild")),
        };
        self.dev.obs.push(Obs::Input {
            at: here,
            tau: self.dev.tau,
            time_us: self.dev.now_us,
            era: self.dev.era,
            sensor: sensor_name,
            value,
            chain,
        });
        self.advance();
    }

    pub(crate) fn atom_start(&mut self, region: RegionId) {
        match &mut self.dev.ctx {
            Ctx::Jit(_) => {
                // Atom-Start-Outer: snapshot volatiles, eagerly log ω.
                // The pooled log keeps its capacity across entries; the
                // ω set is iterated in place with pre-resolved slots.
                let mut log = std::mem::take(&mut self.dev.spare_log);
                let mut new_words = 0u64;
                if let Some(entries) = self.core.region_omega.get(&region) {
                    for e in entries {
                        let old = match e.resolved {
                            OmegaSlot::Scalar(s) => self.dev.nv.read_slot(s),
                            OmegaSlot::Cell(s, i) => self.dev.nv.read_idx_slot(s, i as i64),
                            // Undeclared at construction: resolve by
                            // name, in case a runtime store allocated
                            // the slot since.
                            OmegaSlot::Missing => match &e.loc {
                                NvLoc::Scalar(n) => self.dev.nv.read(n),
                                NvLoc::Cell(n, i) => self.dev.nv.read_idx(n, *i as i64),
                            },
                        };
                        if log.save(e.loc.clone(), old) {
                            new_words += 1;
                        }
                    }
                }
                self.dev.stats.log_words += new_words;
                let snap = Box::new(self.dev.vol.clone());
                self.dev.stats.region_entries += 1;
                self.dev.stats.ckpt_words += self.dev.vol.words() as u64;
                self.dev.obs.begin_region();
                self.dev.ctx = Ctx::Atom {
                    snap,
                    log,
                    natom: 0,
                    region,
                };
            }
            Ctx::Atom { natom, .. } => {
                // Atom-Start-Inner.
                *natom += 1;
            }
        }
    }

    pub(crate) fn atom_end(&mut self, _region: RegionId) {
        let commit = match &mut self.dev.ctx {
            Ctx::Atom { natom, region, .. } => {
                if *natom > 0 {
                    // Atom-End-Inner.
                    *natom -= 1;
                    None
                } else {
                    Some(*region)
                }
            }
            Ctx::Jit(_) => {
                // endatom outside a region: no-op (can happen only in
                // hand-built IR; validated programs pair regions).
                None
            }
        };
        if let Some(rid) = commit {
            // Atom-End-Outer: commit, and pool the log's capacity for
            // the next region entry.
            self.dev.obs.push(Obs::Commit {
                region: rid,
                tau: self.dev.tau,
            });
            self.dev.obs.commit_region();
            self.dev.stats.region_commits += 1;
            self.dev.consecutive_reexecs = 0;
            if let Ctx::Atom { mut log, .. } = std::mem::replace(&mut self.dev.ctx, Ctx::Jit(None))
            {
                log.clear();
                self.dev.spare_log = log;
            }
        }
    }

    pub(crate) fn exec_call(
        &mut self,
        here: InstrRef,
        dst: Option<&str>,
        callee: FuncId,
        args: &[Arg],
    ) {
        let caller_idx = self.dev.vol.frames.len() - 1;
        let caller_func = self.dev.vol.frames[caller_idx].func;
        let layouts = Arc::clone(&self.core.layouts);
        let ret_dst = dst.map(|d| match layouts.slot(caller_func, d) {
            Some(s) => RetSlot::Slot(s),
            None => RetSlot::Spill(Arc::from(d)),
        });
        let callee_layout = layouts.layout(callee);
        let mut frame = self.take_frame(
            callee,
            callee_layout.entry,
            callee_layout.len(),
            ret_dst,
            here,
        );
        for (a, bind) in args.iter().zip(callee_layout.params()) {
            match (a, bind) {
                (Arg::Value(e), ParamBind::Value(slot)) => frame.set_slot(*slot, self.eval(e)),
                (Arg::Ref(x), ParamBind::Ref(name)) => {
                    let target = self.resolve_ref(caller_idx, x);
                    frame.refs.insert(Arc::clone(name), target);
                }
                // Mismatched argument/parameter kinds are impossible in
                // validated programs; mirror the name-keyed semantics
                // for hand-built IR.
                (Arg::Value(e), ParamBind::Ref(name)) => {
                    let v = self.eval(e);
                    frame.set_extra(name, v);
                }
                (Arg::Ref(x), ParamBind::Value(slot)) => {
                    let target = self.resolve_ref(caller_idx, x);
                    frame
                        .refs
                        .insert(Arc::clone(callee_layout.name(*slot)), target);
                }
            }
        }
        // Resume point: after the call.
        self.advance();
        self.dev.vol.frames.push(frame);
    }

    /// A fresh frame for a call, reusing a recycled frame's
    /// allocations when one is pooled.
    pub(crate) fn take_frame(
        &mut self,
        func: FuncId,
        entry: ocelot_ir::BlockId,
        nslots: usize,
        ret_dst: Option<RetSlot>,
        call_site: InstrRef,
    ) -> Frame {
        match self.dev.frame_pool.pop() {
            Some(mut f) => {
                f.reuse(func, entry, nslots, ret_dst, call_site);
                f
            }
            None => Frame::for_call(func, entry, nslots, ret_dst, call_site),
        }
    }

    /// Returns a popped frame's allocations to the pool.
    pub(crate) fn recycle_frame(&mut self, frame: Frame) {
        if self.dev.frame_pool.len() < 32 {
            self.dev.frame_pool.push(frame);
        }
    }

    pub(crate) fn exec_terminator(&mut self, term: &Terminator) -> bool {
        match term {
            Terminator::Jump(b) => {
                let top = self.dev.vol.top_mut().expect("frame exists");
                top.block = *b;
                top.index = 0;
                false
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let v = self.eval(cond);
                let top = self.dev.vol.top_mut().expect("frame exists");
                top.block = if v.value != 0 { *then_bb } else { *else_bb };
                top.index = 0;
                false
            }
            Terminator::Ret(e) => {
                let v = e
                    .as_ref()
                    .map(|e| self.eval(e))
                    .unwrap_or_else(|| Tainted::pure(0));
                let done = self.dev.vol.frames.pop().expect("frame exists");
                let ret_dst = done.ret_dst.clone();
                self.recycle_frame(done);
                match self.dev.vol.top_mut() {
                    Some(caller) => {
                        match ret_dst {
                            Some(RetSlot::Slot(s)) => caller.set_slot(s, v),
                            Some(RetSlot::Spill(name)) => caller.set_extra(&name, v),
                            None => {}
                        }
                        false
                    }
                    None => true, // main returned
                }
            }
        }
    }

    pub(crate) fn advance(&mut self) {
        let top = self.dev.vol.top_mut().expect("frame exists");
        top.index += 1;
    }

    // ------------------------------------------------------------------
    // Values and memory
    // ------------------------------------------------------------------

    /// True when `name` is an always-bound local of the current frame's
    /// function (declared, never address-taken, no read can observe its
    /// uninitialized entry value). Stores to these bind the volatile
    /// slot even when it is not yet bound on this path — they can never
    /// be read before a write, so the non-volatile fallback the
    /// unbound-store path used to take was pure overhead (and leaked
    /// the value into a same-named global's NV cell).
    pub(crate) fn reclassified_local(&self, name: &str) -> bool {
        match self.dev.vol.top() {
            Some(f) => self.core.reclass[f.func.0 as usize].contains(name),
            None => false,
        }
    }

    pub(crate) fn is_local(&self, name: &str) -> bool {
        let Some(f) = self.dev.vol.top() else {
            return false;
        };
        if let Some(slot) = self.core.layouts.slot(f.func, name) {
            if f.get_slot(slot).is_some() {
                return true;
            }
        }
        f.get_extra(name).is_some() || f.refs.contains_key(name)
    }

    pub(crate) fn ref_target(&self, name: &str) -> Option<RefTarget> {
        self.dev.vol.top().and_then(|f| f.refs.get(name).cloned())
    }

    pub(crate) fn resolve_ref(&self, caller_idx: usize, x: &str) -> RefTarget {
        let caller = &self.dev.vol.frames[caller_idx];
        if let Some(t) = caller.refs.get(x) {
            return t.clone(); // forwarding an incoming reference
        }
        if let Some(slot) = self.core.layouts.slot(caller.func, x) {
            if caller.get_slot(slot).is_some() {
                return RefTarget::Local {
                    frame: caller_idx,
                    slot,
                };
            }
        }
        if caller.get_extra(x).is_some() {
            return RefTarget::Extra {
                frame: caller_idx,
                name: Arc::from(x),
            };
        }
        RefTarget::Global(self.global_name(x))
    }

    /// The shared name of global `x` (its NV slot name when declared, a
    /// fresh allocation otherwise).
    pub(crate) fn global_name(&self, x: &str) -> Arc<str> {
        match self.dev.nv.scalar_slot(x) {
            Some(s) => Arc::clone(self.dev.nv.scalar_name(s)),
            None => Arc::from(x),
        }
    }

    pub(crate) fn read_var(&self, name: &str) -> Tainted {
        if let Some(top) = self.dev.vol.top() {
            if let Some(slot) = self.core.layouts.slot(top.func, name) {
                if let Some(v) = top.get_slot(slot) {
                    return v.clone();
                }
            }
            if let Some(v) = top.get_extra(name) {
                return v.clone();
            }
            if let Some(t) = top.refs.get(name) {
                return self.read_target(t);
            }
        }
        self.dev.nv.read(name)
    }

    pub(crate) fn read_target(&self, t: &RefTarget) -> Tainted {
        match t {
            RefTarget::Local { frame, slot } => self.dev.vol.frames[*frame]
                .get_slot(*slot)
                .cloned()
                .unwrap_or_default(),
            RefTarget::Extra { frame, name } => self.dev.vol.frames[*frame]
                .get_extra(name)
                .cloned()
                .unwrap_or_default(),
            RefTarget::Global(g) => self.dev.nv.read(g),
        }
    }

    pub(crate) fn write_target(&mut self, t: &RefTarget, v: Tainted) {
        match t {
            RefTarget::Local { frame, slot } => {
                self.dev.vol.frames[*frame].set_slot(*slot, v);
            }
            RefTarget::Extra { frame, name } => {
                self.dev.vol.frames[*frame].set_extra(name, v);
            }
            RefTarget::Global(g) => {
                let g = Arc::clone(g);
                self.nv_write_scalar(&g, v);
            }
        }
    }

    /// Writes a non-volatile scalar, undo-logging inside atomic regions.
    pub(crate) fn nv_write_scalar(&mut self, name: &str, v: Tainted) {
        self.dev.nv_scalar_writes += 1;
        let slot = self.dev.nv.ensure_scalar(name);
        let old = self.dev.nv.write_slot(slot, v);
        self.log_scalar_undo(slot, old);
    }

    /// Slot-resolved variant of [`Machine::nv_write_scalar`], used by
    /// the compiled backend for declared globals.
    pub(crate) fn nv_write_scalar_slot(&mut self, slot: usize, v: Tainted) {
        self.dev.nv_scalar_writes += 1;
        let old = self.dev.nv.write_slot(slot, v);
        self.log_scalar_undo(slot, old);
    }

    /// Undo-logs the pre-write value of the scalar at `slot` when inside
    /// an atomic region, charging the dynamic log-write cost on a fresh
    /// entry. The single charging path behind both backends' scalar NV
    /// stores. The key reuses the slot's shared name — no allocation.
    fn log_scalar_undo(&mut self, slot: usize, old: Tainted) {
        if let Ctx::Atom { log, .. } = &mut self.dev.ctx {
            let key = NvLoc::Scalar(Arc::clone(self.dev.nv.scalar_name(slot)));
            if log.save(key, old) {
                self.dev.stats.log_words += 1;
                let c = self.core.costs.log_word;
                // Dynamic log writes cost cycles too.
                self.dev.stats.on_cycles += c;
                self.dev.stats.breakdown.undo_log += c;
                let us = self.core.costs.cycles_to_us(c);
                self.dev.now_us += us;
                self.dev.stats.on_time_us += us;
            }
        }
    }

    /// Undo-logs an array cell write (both backends' shared path).
    pub(crate) fn log_cell_undo(&mut self, name: Arc<str>, cell: usize, old: Tainted) {
        if let Ctx::Atom { log, .. } = &mut self.dev.ctx {
            if log.save(NvLoc::Cell(name, cell), old) {
                self.dev.stats.log_words += 1;
            }
        }
    }

    pub(crate) fn write_place(&mut self, place: &Place, v: Tainted) {
        match place {
            Place::Var(x) => {
                let func = self.dev.vol.top().expect("frame exists").func;
                let slot = self.core.layouts.slot(func, x);
                let top = self.dev.vol.top_mut().expect("frame exists");
                if let Some(s) = slot {
                    if top.get_slot(s).is_some() {
                        top.set_slot(s, v);
                        return;
                    }
                }
                if top.get_extra(x).is_some() {
                    top.set_extra(x, v);
                } else if let Some(t) = top.refs.get(x.as_str()).cloned() {
                    self.write_target(&t, v);
                } else if let Some(s) =
                    slot.filter(|_| self.core.reclass[func.0 as usize].contains(x.as_str()))
                {
                    // Always-bound local: bind the slot (see
                    // [`Machine::reclassified_local`]); never NV.
                    self.dev.vol.top_mut().expect("frame exists").set_slot(s, v);
                } else {
                    self.nv_write_scalar(x, v);
                }
            }
            Place::Index(a, i) => {
                let idx = self.eval(i);
                match self.dev.nv.array_slot(a) {
                    Some(s) => {
                        let (cell, old) = self.dev.nv.write_idx_slot(s, idx.value, v);
                        let name = Arc::clone(self.dev.nv.array_name(s));
                        self.log_cell_undo(name, cell, old);
                    }
                    None => {
                        let (cell, old) = self.dev.nv.write_idx(a, idx.value, v);
                        self.log_cell_undo(Arc::from(a.as_str()), cell, old);
                    }
                }
            }
            Place::Deref(x) => {
                let t = self
                    .ref_target(x)
                    .unwrap_or_else(|| RefTarget::Global(self.global_name(x)));
                self.write_target(&t, v);
            }
        }
    }

    pub(crate) fn eval(&self, e: &Expr) -> Tainted {
        match e {
            Expr::Int(n) => Tainted::pure(*n),
            Expr::Bool(b) => Tainted::pure(*b as i64),
            Expr::Var(x) => self.read_var(x),
            Expr::Deref(x) => match self.ref_target(x) {
                Some(t) => self.read_target(&t),
                None => self.dev.nv.read(x),
            },
            Expr::Ref(_) => Tainted::pure(0), // only valid in call args
            Expr::Index(a, i) => {
                let idx = self.eval(i);
                let mut v = self.dev.nv.read_idx(a, idx.value);
                v.deps.extend(idx.deps);
                v
            }
            Expr::Binary(op, l, r) => {
                let a = self.eval(l);
                let b = self.eval(r);
                let value = eval_binop(*op, a.value, b.value);
                Tainted::combine(value, &a, &b)
            }
            Expr::Unary(op, x) => {
                let a = self.eval(x);
                let value = match op {
                    UnOp::Neg => a.value.wrapping_neg(),
                    UnOp::Not => (a.value == 0) as i64,
                };
                Tainted {
                    value,
                    deps: a.deps,
                }
            }
        }
    }
}

/// State-independent cycle cost of `op`, or `None` for the two
/// operations whose cost depends on live machine state (`Assign`,
/// whose destination decides volatile vs NV, and `AtomStart`, which
/// checkpoints the live stack). The single source of the cost formulas
/// for both the interpreter ([`Machine::op_cost`]) and the compiled
/// backend's pre-computation ([`crate::exec`]).
pub(crate) fn static_op_cost(costs: &CostModel, op: &Op) -> Option<u64> {
    Some(match op {
        Op::Skip | Op::Annot { .. } => 1,
        Op::Bind { .. } => costs.alu,
        Op::Assign { .. } | Op::AtomStart { .. } => return None,
        Op::Input { sensor, .. } => costs.input_cycles(sensor),
        Op::Call { .. } => costs.call,
        Op::Output { args, .. } => costs.output_word * (1 + args.len() as u64),
        Op::AtomEnd { .. } => costs.alu,
    })
}

/// Cycle cost of a terminator — shared by the interpreter's step loop
/// and the compiled backend's pre-computation.
pub(crate) fn static_term_cost(costs: &CostModel, t: &Terminator) -> u64 {
    match t {
        Terminator::Jump(_) => costs.alu / 2 + 1,
        Terminator::Branch { .. } => costs.alu,
        Terminator::Ret(_) => costs.call / 2,
    }
}

pub(crate) fn eval_binop(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::And => (a != 0 && b != 0) as i64,
        BinOp::Or => (a != 0 || b != 0) as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_hw::power::{ContinuousPower, ScriptedPower};
    use ocelot_hw::sensors::Signal;
    use ocelot_ir::compile;

    fn machine_for<'p>(
        p: &'p Program,
        env: Environment,
        supply: Box<dyn PowerSupply>,
    ) -> Machine<'p> {
        let regions = ocelot_core::collect_regions(p).unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(p);
        let policies = ocelot_core::build_policies(p, &taint);
        Machine::new(p, &regions, policies, env, CostModel::default(), supply)
    }

    fn outputs(trace: &[Obs]) -> Vec<(String, Vec<i64>)> {
        trace
            .iter()
            .filter_map(|o| match o {
                Obs::Output {
                    channel, values, ..
                } => Some((channel.to_string(), values.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn machine_is_send() {
        // The parallel bench harness moves whole machines (program refs,
        // boxed supply, environment, detector state) onto pool workers;
        // this fails to compile if any component loses `Send`.
        fn assert_send<T: Send>() {}
        assert_send::<Machine<'static>>();
        assert_send::<RunOutcome>();
        assert_send::<Stats>();
    }

    #[test]
    fn computes_arithmetic_continuously() {
        let p = compile("fn sq(v) { return v * v; } fn main() { let x = sq(6); out(log, x + 1); }")
            .unwrap();
        let mut m = machine_for(&p, Environment::new(), Box::new(ContinuousPower));
        assert!(matches!(
            m.run_once(100_000),
            RunOutcome::Completed { violated: false }
        ));
        let t = m.take_trace();
        assert_eq!(outputs(&t), vec![("log".to_string(), vec![37])]);
    }

    #[test]
    fn samples_environment_at_wall_clock() {
        let p = compile("sensor s; fn main() { let v = in(s); out(log, v); }").unwrap();
        let env = Environment::new().with("s", Signal::Constant(42));
        let mut m = machine_for(&p, env, Box::new(ContinuousPower));
        m.run_once(100_000);
        let t = m.take_trace();
        assert_eq!(outputs(&t), vec![("log".to_string(), vec![42])]);
    }

    #[test]
    fn by_ref_params_write_back() {
        let p = compile(
            r#"
            fn put(&dst, v) { *dst = v + 1; }
            fn main() { let x = 0; put(&x, 9); out(log, x); }
            "#,
        )
        .unwrap();
        let mut m = machine_for(&p, Environment::new(), Box::new(ContinuousPower));
        m.run_once(100_000);
        assert_eq!(
            outputs(&m.take_trace()),
            vec![("log".to_string(), vec![10])]
        );
    }

    #[test]
    fn globals_persist_across_runs() {
        let p = compile("nv count = 0; fn main() { count = count + 1; out(log, count); }").unwrap();
        let mut m = machine_for(&p, Environment::new(), Box::new(ContinuousPower));
        m.run_once(100_000);
        m.run_once(100_000);
        let t = m.take_trace();
        assert_eq!(
            outputs(&t),
            vec![("log".to_string(), vec![1]), ("log".to_string(), vec![2])]
        );
    }

    #[test]
    fn while_loop_runs_until_condition_fails() {
        let p = compile(
            "nv g = 5; fn main() { let sum = 0; while g > 0 { sum = sum + g; g = g - 1; } out(log, sum); }",
        )
        .unwrap();
        let mut m = machine_for(&p, Environment::new(), Box::new(ContinuousPower));
        m.run_once(100_000);
        assert_eq!(
            outputs(&m.take_trace()),
            vec![("log".to_string(), vec![15])]
        );
    }

    #[test]
    fn while_loop_survives_power_failures() {
        // The loop decrements NV state; JIT checkpoints mid-loop must
        // not double-count iterations.
        let p = compile(
            "nv g = 6; fn main() { let sum = 0; while g > 0 { sum = sum + 1; g = g - 1; } out(log, sum); }",
        )
        .unwrap();
        let budgets = vec![40.0; 50];
        let mut m = machine_for(
            &p,
            Environment::new(),
            Box::new(ScriptedPower::new(budgets, 500)),
        );
        let out = m.run_once(1_000_000);
        assert!(matches!(out, RunOutcome::Completed { .. }), "{out:?}");
        assert_eq!(outputs(&m.take_trace()), vec![("log".to_string(), vec![6])]);
        assert!(m.stats().reboots > 0, "failures really happened");
    }

    #[test]
    fn while_true_hits_the_step_limit_not_a_hang() {
        let p = compile("nv g = 0; fn main() { while true { g = g + 1; } }").unwrap();
        let mut m = machine_for(&p, Environment::new(), Box::new(ContinuousPower));
        assert_eq!(m.run_once(5_000), RunOutcome::StepLimit);
    }

    #[test]
    fn repeat_loop_executes_n_times() {
        let p = compile(
            "sensor s; fn main() { let sum = 0; repeat 4 { let v = in(s); sum = sum + v; } out(log, sum); }",
        )
        .unwrap();
        let env = Environment::new().with("s", Signal::Constant(3));
        let mut m = machine_for(&p, env, Box::new(ContinuousPower));
        m.run_once(100_000);
        assert_eq!(
            outputs(&m.take_trace()),
            vec![("log".to_string(), vec![12])]
        );
    }

    #[test]
    fn jit_failure_resumes_in_place() {
        // Fail once mid-run; JIT checkpoint + restore must produce the
        // same output as continuous execution.
        let p =
            compile("fn main() { let a = 1; let b = a + 1; let c = b * 3; out(log, c); }").unwrap();
        // Budget: enough for ~2 instructions, then one failure, then ∞.
        let mut m = machine_for(
            &p,
            Environment::new(),
            Box::new(ScriptedPower::new(vec![12.0], 1000)),
        );
        let out = m.run_once(100_000);
        assert!(matches!(out, RunOutcome::Completed { .. }));
        assert_eq!(outputs(&m.take_trace()), vec![("log".to_string(), vec![6])]);
        assert_eq!(m.stats().reboots, 1);
        assert_eq!(m.stats().jit_checkpoints, 1);
    }

    #[test]
    fn atomic_region_rolls_back_nv_writes() {
        // The region increments g; power fails inside the region; after
        // rollback and re-execution g must have been incremented exactly
        // once.
        let p = compile(
            r#"
            nv g = 0;
            sensor s;
            fn main() {
                atomic {
                    let v = in(s);
                    g = g + 1;
                }
                out(log, g);
            }
            "#,
        )
        .unwrap();
        // Fail while the region is sampling: region entry costs ~600
        // cycles and the input 4000, so a 2000 nJ budget dies mid-input.
        let env = Environment::new().with("s", Signal::Constant(1));
        let mut m = machine_for(&p, env, Box::new(ScriptedPower::new(vec![2000.0], 1000)));
        m.run_once(1_000_000);
        assert_eq!(outputs(&m.take_trace()), vec![("log".to_string(), vec![1])]);
        assert_eq!(m.stats().region_reexecs, 1);
        assert_eq!(m.stats().region_commits, 1);
    }

    #[test]
    fn nested_manual_regions_flatten() {
        let p = compile(
            r#"
            nv g = 0;
            fn main() {
                atomic {
                    g = g + 1;
                    atomic { g = g + 10; }
                    g = g + 100;
                }
                out(log, g);
            }
            "#,
        )
        .unwrap();
        let mut m = machine_for(&p, Environment::new(), Box::new(ContinuousPower));
        m.run_once(100_000);
        assert_eq!(
            outputs(&m.take_trace()),
            vec![("log".to_string(), vec![111])]
        );
        assert_eq!(m.stats().region_entries, 1, "inner start is a counter bump");
        assert_eq!(m.stats().region_commits, 1);
    }

    #[test]
    fn detector_catches_jit_freshness_violation() {
        // Classic Figure 2: sense, power fail (pathological), then use.
        let p = compile("sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }").unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let policies = ocelot_core::build_policies(&p, &taint);
        let targets = pathological_targets(&policies);
        assert_eq!(targets.len(), 1);
        let m = Machine::new(
            &p,
            &[],
            policies,
            Environment::new().with("s", Signal::Constant(5)),
            CostModel::default(),
            Box::new(ContinuousPower),
        );
        let mut m = m.with_injector(targets);
        let out = m.run_once(1_000_000);
        assert!(matches!(out, RunOutcome::Completed { violated: true }));
        assert_eq!(m.stats().fresh_violations, 1);
        // The formal trace checker agrees.
        let trace = m.take_trace();
        let formal = crate::detect::check_trace(m.policies(), &trace);
        assert_eq!(formal.len(), 1);
    }

    #[test]
    fn ocelot_region_prevents_the_same_violation() {
        let src = "sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }";
        let p = compile(src).unwrap();
        let compiled = ocelot_core::ocelot_transform(p).unwrap();
        let targets = pathological_targets(&compiled.policies);
        let m = Machine::new(
            &compiled.program,
            &compiled.regions,
            compiled.policies.clone(),
            Environment::new().with("s", Signal::Constant(5)),
            CostModel::default(),
            Box::new(ContinuousPower),
        );
        let mut m = m.with_injector(targets);
        let out = m.run_once(1_000_000);
        assert!(
            matches!(out, RunOutcome::Completed { violated: false }),
            "atomic region re-executes the input: no stale use"
        );
        assert_eq!(
            m.stats().region_reexecs,
            1,
            "the injected failure rolled back"
        );
        let trace = m.take_trace();
        assert!(crate::detect::check_trace(m.policies(), &trace).is_empty());
    }

    #[test]
    fn consistency_violation_detected_and_prevented() {
        let src = r#"
            sensor a; sensor b;
            fn main() {
                let x = in(a);
                consistent(x, 1);
                let y = in(b);
                consistent(y, 1);
                out(log, x, y);
            }
        "#;
        // JIT: injected failure between the two inputs → violation.
        let p = compile(src).unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let policies = ocelot_core::build_policies(&p, &taint);
        let targets = pathological_targets(&policies);
        let m = Machine::new(
            &p,
            &[],
            policies,
            Environment::new(),
            CostModel::default(),
            Box::new(ContinuousPower),
        );
        let mut m = m.with_injector(targets.clone());
        m.run_once(1_000_000);
        assert_eq!(m.stats().consistency_violations, 1);

        // Ocelot: same injection, no violation.
        let p2 = compile(src).unwrap();
        let compiled = ocelot_core::ocelot_transform(p2).unwrap();
        let targets2 = pathological_targets(&compiled.policies);
        let m2 = Machine::new(
            &compiled.program,
            &compiled.regions,
            compiled.policies,
            Environment::new(),
            CostModel::default(),
            Box::new(ContinuousPower),
        );
        let mut m2 = m2.with_injector(targets2);
        let out = m2.run_once(1_000_000);
        assert!(matches!(out, RunOutcome::Completed { violated: false }));
    }

    #[test]
    fn reexec_limit_reports_livelock() {
        // The region needs two 4 µJ samples per attempt; every power
        // cycle supplies ~5 µJ, so the region re-executes forever.
        let p = compile(
            r#"
            sensor s;
            fn main() {
                atomic {
                    let a = in(s);
                    let b = in(s);
                    out(log, a + b);
                }
            }
            "#,
        )
        .unwrap();
        let budgets = vec![5_000.0; 500];
        let mut m = machine_for(
            &p,
            Environment::new().with("s", Signal::Constant(1)),
            Box::new(ScriptedPower::new(budgets, 1_000)),
        )
        .with_reexec_limit(10);
        let out = m.run_once(1_000_000);
        assert!(matches!(out, RunOutcome::Livelock { .. }), "{out:?}");
        assert!(m.stats().region_reexecs >= 10);
        assert_eq!(m.stats().region_commits, 0);
    }

    #[test]
    fn generous_budget_never_trips_reexec_limit() {
        let p = compile("sensor s; fn main() { atomic { let v = in(s); out(log, v); } }").unwrap();
        let mut m =
            machine_for(&p, Environment::new(), Box::new(ContinuousPower)).with_reexec_limit(1);
        assert!(matches!(
            m.run_once(1_000_000),
            RunOutcome::Completed { violated: false }
        ));
    }

    #[test]
    fn tics_expiry_prevents_stale_use_via_restart() {
        // Figure 2 under TICS: power fails between the sense and the
        // use; the 10 ms window sees the 100 ms gap, the handler
        // restarts, and the re-collected value is used fresh.
        let p = compile("sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }").unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let policies = ocelot_core::build_policies(&p, &taint);
        let targets = pathological_targets(&policies);
        let m = Machine::new(
            &p,
            &[],
            policies,
            Environment::new().with("s", Signal::Constant(5)),
            CostModel::default(),
            Box::new(ScriptedPower::new(vec![f64::INFINITY], 100_000)),
        );
        let mut m = m.with_injector(targets).with_expiry_window(10_000);
        let out = m.run_once(1_000_000);
        assert!(
            matches!(out, RunOutcome::Completed { violated: false }),
            "{out:?}: the handler re-collects instead of using stale data"
        );
        assert_eq!(m.stats().expiry_trips, 1);
        assert_eq!(m.stats().expiry_restarts, 1);
        assert_eq!(m.stats().violations, 0);
    }

    #[test]
    fn tics_expiry_cannot_express_consistency() {
        // The same mitigation machinery is useless for a consistent
        // pair: no use-site window exists, so the split pair commits.
        let p = compile(
            r#"
            sensor a; sensor b;
            fn main() {
                let x = in(a);
                consistent(x, 1);
                let y = in(b);
                consistent(y, 1);
                out(log, x, y);
            }
            "#,
        )
        .unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let policies = ocelot_core::build_policies(&p, &taint);
        let targets = pathological_targets(&policies);
        let m = Machine::new(
            &p,
            &[],
            policies,
            Environment::new(),
            CostModel::default(),
            Box::new(ContinuousPower),
        );
        // Even a 1 µs paranoid window cannot help.
        let mut m = m.with_injector(targets).with_expiry_window(1);
        let out = m.run_once(1_000_000);
        assert!(matches!(out, RunOutcome::Completed { violated: true }));
        assert_eq!(m.stats().consistency_violations, 1);
        assert_eq!(m.stats().expiry_restarts, 0, "no fresh use ever trips");
    }

    #[test]
    fn tics_thrashing_gives_up_after_the_cap() {
        // Every power cycle delivers just enough for the sample but dies
        // before the use; the 100 ms gap always exceeds the 10 ms
        // window, so the handler thrashes until the cap, then the stale
        // value goes through and the detector fires.
        let p = compile("sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }").unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let policies = ocelot_core::build_policies(&p, &taint);
        let m = Machine::new(
            &p,
            &[],
            policies,
            Environment::new().with("s", Signal::Constant(5)),
            CostModel::default(),
            Box::new(ScriptedPower::new(vec![4_500.0; 200], 100_000)),
        );
        let mut m = m.with_expiry_window(10_000);
        let out = m.run_once(10_000_000);
        assert!(
            matches!(out, RunOutcome::Completed { violated: true }),
            "{out:?}"
        );
        assert_eq!(m.stats().expiry_giveups, 1);
        assert!(m.stats().expiry_restarts >= 25, "thrashed to the cap");
        assert!(m.stats().fresh_violations >= 1, "the stale use happened");
    }

    #[test]
    fn tics_chain_timestamps_stay_bounded_across_restarts() {
        // Regression for the unbounded-growth bug: timestamps live in a
        // fixed-size table indexed by interned chain id, and only chains
        // some freshness check reads are ever stamped — so hundreds of
        // mitigation restarts (which reset the frames and re-collect
        // through fresh dynamic chains) cannot grow the timekeeper
        // state.
        let p = compile(
            r#"
            sensor s;
            fn grab() { let v = in(s); return v; }
            fn main() {
                let warm = grab();
                let x = in(s);
                fresh(x);
                out(alarm, x + warm);
            }
            "#,
        )
        .unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let policies = ocelot_core::build_policies(&p, &taint);
        let m = Machine::new(
            &p,
            &[],
            policies,
            Environment::new().with("s", Signal::Constant(5)),
            CostModel::default(),
            // 4.5 µJ per cycle: a 4 µJ sample and the 1.6 µJ use can
            // never share one power cycle, so every attempt trips the
            // window and the handler restarts until the per-run cap.
            Box::new(ScriptedPower::new(vec![4_500.0; 2000], 100_000)),
        );
        let mut m = m.with_expiry_window(10_000);
        let before = m.dev.chain_times.len();
        for _ in 0..8 {
            m.run_once(10_000_000);
        }
        assert!(m.stats().expiry_restarts >= 100, "restarts really thrashed");
        assert!(m.stats().expiry_giveups >= 1, "runs gave up at the cap");
        assert_eq!(
            m.dev.chain_times.len(),
            before,
            "timestamp table never grows past its construction size"
        );
        let stamped = m.dev.chain_times.iter().filter(|t| t.is_some()).count();
        let timed = m.core.chain_rt.iter().filter(|rt| rt.timed).count();
        assert!(
            stamped <= timed,
            "only freshness-checked chains are ever stamped ({stamped} > {timed})"
        );
        assert!(stamped > 0, "the checked chain was stamped");
    }

    #[test]
    fn static_input_sites_share_one_interned_chain() {
        // A fixed call stack: the input's chain is pre-resolved, so
        // every sample's observation shares one Arc with the table.
        let p = compile(
            r#"
            sensor s;
            fn read() { let v = in(s); return v; }
            fn main() { let a = read(); fresh(a); out(log, a); }
            "#,
        )
        .unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let policies = ocelot_core::build_policies(&p, &taint);
        let mut m = Machine::new(
            &p,
            &[],
            policies,
            Environment::new().with("s", Signal::Constant(2)),
            CostModel::default(),
            Box::new(ContinuousPower),
        );
        assert_eq!(
            m.core.static_chain_of.len(),
            1,
            "the one input site is static"
        );
        m.run_once(100_000);
        m.run_once(100_000);
        let trace = m.take_trace();
        let chains: Vec<_> = trace
            .iter()
            .filter_map(|o| match o {
                Obs::Input { chain, .. } => Some(chain),
                _ => None,
            })
            .collect();
        assert_eq!(chains.len(), 2);
        assert!(
            Arc::ptr_eq(chains[0], chains[1]),
            "both samples share the interned chain allocation"
        );
        assert_eq!(chains[0].len(), 2, "call site + input op");
    }

    #[test]
    fn run_for_counts_completed_runs() {
        let p = compile("fn main() { let x = 1; out(log, x); }").unwrap();
        let mut m = machine_for(&p, Environment::new(), Box::new(ContinuousPower));
        let runs = m.run_for(10_000, 100_000);
        assert!(
            runs > 1,
            "short program should complete many runs, got {runs}"
        );
        assert_eq!(m.stats().runs_completed, runs);
    }

    #[test]
    fn harvested_power_interleaves_on_and_off() {
        let p = compile(
            "sensor s; fn main() { let acc = 0; repeat 20 { let v = in(s); acc = acc + v; } out(log, acc); }",
        )
        .unwrap();
        let env = Environment::new().with("s", Signal::Constant(1));
        let supply = ocelot_hw::power::HarvestedPower::capybara_powercast();
        let mut m = machine_for(&p, env, Box::new(supply));
        let out = m.run_once(10_000_000);
        assert!(matches!(out, RunOutcome::Completed { .. }));
        // 20 inputs at 4000 cycles ≈ 80 µJ > 46 µJ budget: at least one
        // failure must have occurred, and charging time dominates.
        assert!(m.stats().reboots >= 1);
        assert!(m.stats().off_time_us > m.stats().on_time_us);
        assert_eq!(
            outputs(&m.take_trace()),
            vec![("log".to_string(), vec![20])]
        );
    }
}
