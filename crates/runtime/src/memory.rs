//! Runtime memory: taint-carrying values, non-volatile memory, volatile
//! frames, and the undo log.
//!
//! Following the paper's taint-augmented semantics (Appendix B), every
//! location stores its value *and* the logical timestamps of the input
//! operations the value depends on — that is what lets the trace checker
//! validate Definitions 2 and 3 on real executions.

use ocelot_ir::{BlockId, FuncId, Program};
use std::collections::{BTreeMap, BTreeSet};

/// Logical timestamps of input operations a value depends on — the
/// paper's `I`.
pub type Deps = BTreeSet<u64>;

/// A value with its input-dependency timestamps.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tainted {
    /// The integer value (booleans are 0/1).
    pub value: i64,
    /// Input timestamps this value depends on.
    pub deps: Deps,
}

impl Tainted {
    /// An untainted constant.
    pub fn pure(value: i64) -> Self {
        Tainted {
            value,
            deps: Deps::new(),
        }
    }

    /// A freshly-sampled input collected at logical time `tau`.
    pub fn input(value: i64, tau: u64) -> Self {
        Tainted {
            value,
            deps: Deps::from([tau]),
        }
    }

    /// Combines two operands: the result depends on both.
    pub fn combine(value: i64, a: &Tainted, b: &Tainted) -> Self {
        let mut deps = a.deps.clone();
        deps.extend(b.deps.iter().copied());
        Tainted { value, deps }
    }
}

/// Non-volatile memory: globals and arrays. Survives power failures.
///
/// Storage is slot-indexed: each kind (scalars, arrays) lives in a
/// dense `Vec` with a name→slot map on the side. Declared globals get
/// their slots in declaration order — the same numbering
/// [`ocelot_ir::Program::scalar_slot`] / [`ocelot_ir::Program::array_slot`]
/// document — and slots are append-only, so a slot resolved once (by
/// the compiled execution backend) stays valid for the lifetime of the
/// memory. The name-keyed API is unchanged and remains the fallback for
/// accesses that cannot be resolved statically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NvMem {
    scalar_index: BTreeMap<String, usize>,
    scalars: Vec<Tainted>,
    array_index: BTreeMap<String, usize>,
    arrays: Vec<Vec<Tainted>>,
}

impl NvMem {
    /// Initializes non-volatile memory from the program's global
    /// declarations (arrays zero-fill).
    pub fn init(p: &Program) -> Self {
        let mut nv = NvMem::default();
        for g in &p.globals {
            match g.array_len {
                Some(n) => {
                    nv.array_index.insert(g.name.clone(), nv.arrays.len());
                    nv.arrays.push(vec![Tainted::pure(0); n]);
                }
                None => {
                    nv.scalar_index.insert(g.name.clone(), nv.scalars.len());
                    nv.scalars.push(Tainted::pure(g.init));
                }
            }
        }
        nv
    }

    /// The stable slot of scalar `name`, if it exists.
    pub fn scalar_slot(&self, name: &str) -> Option<usize> {
        self.scalar_index.get(name).copied()
    }

    /// The stable slot of array `name`, if it exists.
    pub fn array_slot(&self, name: &str) -> Option<usize> {
        self.array_index.get(name).copied()
    }

    /// Reads a scalar global. Missing globals read as untainted 0
    /// (validation prevents this in checked programs).
    pub fn read(&self, name: &str) -> Tainted {
        match self.scalar_index.get(name) {
            Some(&i) => self.scalars[i].clone(),
            None => Tainted::default(),
        }
    }

    /// Reads the scalar at a pre-resolved slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::scalar_slot`].
    pub fn read_slot(&self, slot: usize) -> Tainted {
        self.scalars[slot].clone()
    }

    /// Writes a scalar global, returning the previous value for undo
    /// logging. Unknown names are allocated a fresh slot (hand-built IR
    /// may store to undeclared names).
    pub fn write(&mut self, name: &str, v: Tainted) -> Tainted {
        let slot = match self.scalar_index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.scalars.len();
                self.scalar_index.insert(name.to_string(), i);
                self.scalars.push(Tainted::default());
                i
            }
        };
        std::mem::replace(&mut self.scalars[slot], v)
    }

    /// Writes the scalar at a pre-resolved slot, returning the previous
    /// value for undo logging.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::scalar_slot`].
    pub fn write_slot(&mut self, slot: usize, v: Tainted) -> Tainted {
        std::mem::replace(&mut self.scalars[slot], v)
    }

    /// Reads `name[idx]`; out-of-bounds indices clamp to the last cell
    /// (embedded-style saturation, keeping runs total).
    pub fn read_idx(&self, name: &str, idx: i64) -> Tainted {
        match self.array_index.get(name) {
            Some(&s) => self.read_idx_slot(s, idx),
            None => Tainted::default(),
        }
    }

    /// Reads cell `idx` (clamped) of the array at a pre-resolved slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::array_slot`].
    pub fn read_idx_slot(&self, slot: usize, idx: i64) -> Tainted {
        let a = &self.arrays[slot];
        if a.is_empty() {
            return Tainted::default();
        }
        let i = (idx.max(0) as usize).min(a.len() - 1);
        a[i].clone()
    }

    /// Writes `name[idx]` (clamped), returning `(clamped_index, old)`.
    pub fn write_idx(&mut self, name: &str, idx: i64, v: Tainted) -> (usize, Tainted) {
        match self.array_index.get(name) {
            Some(&s) => self.write_idx_slot(s, idx, v),
            None => (0, Tainted::default()),
        }
    }

    /// Writes cell `idx` (clamped) of the array at a pre-resolved slot,
    /// returning `(clamped_index, old)`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::array_slot`].
    pub fn write_idx_slot(&mut self, slot: usize, idx: i64, v: Tainted) -> (usize, Tainted) {
        let a = &mut self.arrays[slot];
        if a.is_empty() {
            return (0, Tainted::default());
        }
        let i = (idx.max(0) as usize).min(a.len() - 1);
        let old = std::mem::replace(&mut a[i], v);
        (i, old)
    }

    /// True when `name` is an array.
    pub fn is_array(&self, name: &str) -> bool {
        self.array_index.contains_key(name)
    }

    /// Restores one array cell without clamping (undo-log rollback
    /// targets the exact logged index; out-of-range indices are
    /// ignored, matching a log entry for a since-shrunk array).
    fn restore_cell(&mut self, name: &str, idx: usize, v: Tainted) {
        if let Some(&s) = self.array_index.get(name) {
            if let Some(cell) = self.arrays[s].get_mut(idx) {
                *cell = v;
            }
        }
    }
}

/// Where a by-reference parameter ultimately points: resolved at call
/// time (references cannot re-seat, so resolution is stable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefTarget {
    /// A local slot in an earlier frame (`frame` indexes the stack from
    /// the bottom).
    Local {
        /// Stack index of the owning frame.
        frame: usize,
        /// Variable name within that frame.
        var: String,
    },
    /// A non-volatile scalar global.
    Global(String),
}

/// One call frame: the program counter and local bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    /// Current basic block.
    pub block: BlockId,
    /// Next instruction index within the block (`instrs.len()` = the
    /// terminator).
    pub index: usize,
    /// Local variables.
    pub locals: BTreeMap<String, Tainted>,
    /// Resolution of by-reference parameters.
    pub refs: BTreeMap<String, RefTarget>,
    /// Where the caller wants the return value (a local in the frame
    /// below), if anywhere.
    pub ret_dst: Option<String>,
    /// The call instruction that created this frame (`None` for the
    /// bottom frame); the dynamic provenance chain is read off these.
    pub call_site: Option<ocelot_ir::InstrRef>,
}

impl Frame {
    /// A frame at the entry of `func`.
    pub fn at_entry(p: &Program, func: FuncId) -> Self {
        let f = p.func(func);
        Frame {
            func,
            block: f.entry,
            index: 0,
            locals: BTreeMap::new(),
            refs: BTreeMap::new(),
            ret_dst: None,
            call_site: None,
        }
    }

    /// Number of words of volatile state this frame holds (locals plus a
    /// fixed register-file share).
    pub fn words(&self) -> usize {
        self.locals.len() + 4
    }
}

/// The whole volatile machine state: the call stack. Lost on power
/// failure unless checkpointed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VolState {
    /// Call frames, bottom first.
    pub frames: Vec<Frame>,
}

impl VolState {
    /// Volatile footprint in words (drives checkpoint cost).
    pub fn words(&self) -> usize {
        16 + self.frames.iter().map(Frame::words).sum::<usize>()
    }

    /// The active frame.
    pub fn top(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// The active frame, mutably.
    pub fn top_mut(&mut self) -> Option<&mut Frame> {
        self.frames.last_mut()
    }
}

/// A location key for undo logging.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum NvLoc {
    /// A scalar global.
    Scalar(String),
    /// One array cell.
    Cell(String, usize),
}

/// Undo log for an atomic region: first-write-wins snapshots of
/// non-volatile locations.
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    entries: BTreeMap<NvLoc, Tainted>,
}

impl UndoLog {
    /// Records the pre-state of `loc` unless already logged. Returns
    /// true when a new entry was added (for cost accounting).
    pub fn save(&mut self, loc: NvLoc, old: Tainted) -> bool {
        if let std::collections::btree_map::Entry::Vacant(e) = self.entries.entry(loc) {
            e.insert(old);
            true
        } else {
            false
        }
    }

    /// Number of logged words.
    pub fn words(&self) -> usize {
        self.entries.len()
    }

    /// Restores every logged location into `nv` — the paper's `N ◁ L`.
    pub fn apply(&self, nv: &mut NvMem) {
        for (loc, old) in &self.entries {
            match loc {
                NvLoc::Scalar(name) => {
                    nv.write(name, old.clone());
                }
                NvLoc::Cell(name, idx) => {
                    nv.restore_cell(name, *idx, old.clone());
                }
            }
        }
    }

    /// Drops all entries (region committed).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile;

    #[test]
    fn tainted_combine_unions_deps() {
        let a = Tainted::input(3, 10);
        let b = Tainted::input(4, 20);
        let c = Tainted::combine(7, &a, &b);
        assert_eq!(c.value, 7);
        assert_eq!(c.deps, Deps::from([10, 20]));
    }

    #[test]
    fn nv_init_from_globals() {
        let p = compile("nv g = 5; nv a[3]; fn main() {}").unwrap();
        let nv = NvMem::init(&p);
        assert_eq!(nv.read("g").value, 5);
        assert_eq!(nv.read_idx("a", 2).value, 0);
        assert!(nv.is_array("a"));
        assert!(!nv.is_array("g"));
    }

    #[test]
    fn slots_agree_with_the_ir_numbering_and_stay_stable() {
        let p = compile("nv a = 1; nv arr[2]; nv b = 2; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        for g in &p.globals {
            match g.array_len {
                Some(_) => assert_eq!(nv.array_slot(&g.name), p.array_slot(&g.name), "{}", g.name),
                None => assert_eq!(
                    nv.scalar_slot(&g.name),
                    p.scalar_slot(&g.name),
                    "{}",
                    g.name
                ),
            }
        }
        let a = nv.scalar_slot("a").unwrap();
        // Runtime writes to undeclared names append; resolved slots
        // never move.
        nv.write("later", Tainted::pure(9));
        assert_eq!(nv.scalar_slot("a"), Some(a));
        assert_eq!(nv.read_slot(a).value, 1);
        let old = nv.write_slot(a, Tainted::pure(7));
        assert_eq!(old.value, 1);
        assert_eq!(nv.read("a").value, 7, "slot and name views are one store");
        assert_eq!(nv.read("later").value, 9);
    }

    #[test]
    fn slot_indexed_array_access_matches_named_access() {
        let p = compile("nv arr[3]; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        let s = nv.array_slot("arr").unwrap();
        let (i, _) = nv.write_idx_slot(s, 1, Tainted::pure(5));
        assert_eq!(i, 1);
        assert_eq!(nv.read_idx("arr", 1).value, 5);
        assert_eq!(nv.read_idx_slot(s, 99).value, 0, "clamps like read_idx");
        assert_eq!(
            nv.read_idx_slot(s, 99).value,
            nv.read_idx("arr", 99).value,
            "slot and name paths clamp identically"
        );
    }

    #[test]
    fn array_indices_clamp() {
        let p = compile("nv a[2]; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        nv.write_idx("a", 7, Tainted::pure(9));
        assert_eq!(nv.read_idx("a", 100).value, 9, "both clamp to last cell");
        nv.write_idx("a", -5, Tainted::pure(1));
        assert_eq!(nv.read_idx("a", 0).value, 1);
    }

    #[test]
    fn undo_log_first_write_wins_and_applies() {
        let p = compile("nv g = 5; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        let mut log = UndoLog::default();
        let old = nv.write("g", Tainted::pure(6));
        assert!(log.save(NvLoc::Scalar("g".into()), old));
        let old2 = nv.write("g", Tainted::pure(7));
        assert!(!log.save(NvLoc::Scalar("g".into()), old2), "already logged");
        assert_eq!(nv.read("g").value, 7);
        log.apply(&mut nv);
        assert_eq!(nv.read("g").value, 5, "rollback to pre-region value");
        assert_eq!(log.words(), 1);
    }

    #[test]
    fn undo_log_handles_array_cells() {
        let p = compile("nv a[4]; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        let mut log = UndoLog::default();
        let (i, old) = nv.write_idx("a", 2, Tainted::pure(42));
        log.save(NvLoc::Cell("a".into(), i), old);
        log.apply(&mut nv);
        assert_eq!(nv.read_idx("a", 2).value, 0);
    }

    #[test]
    fn vol_state_words_scale_with_frames() {
        let p = compile("fn main() { let x = 1; }").unwrap();
        let mut vol = VolState::default();
        let base = vol.words();
        vol.frames.push(Frame::at_entry(&p, p.main));
        assert!(vol.words() > base);
        vol.top_mut()
            .unwrap()
            .locals
            .insert("x".into(), Tainted::pure(1));
        assert_eq!(vol.words(), base + 4 + 1);
    }
}
