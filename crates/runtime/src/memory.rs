//! Runtime memory: taint-carrying values, non-volatile memory, volatile
//! frames, and the undo log.
//!
//! Following the paper's taint-augmented semantics (Appendix B), every
//! location stores its value *and* the logical timestamps of the input
//! operations the value depends on — that is what lets the trace checker
//! validate Definitions 2 and 3 on real executions.
//!
//! Frame locals are **slot-indexed**: a [`FrameLayouts`] table (built
//! once per program) assigns every by-value parameter and every lowered
//! local of each function a dense slot, so the hot path reads and
//! writes a `Vec` instead of probing a name-keyed map. Names remain the
//! fallback — the interpreter resolves them through the layout, and
//! bindings outside any layout (possible only in hand-built IR) spill
//! into a side map so the semantics and the checkpoint-word accounting
//! are unchanged: a frame's volatile footprint is still the number of
//! *bound* locals plus the fixed register-file share.

use ocelot_ir::{BlockId, FuncId, Program};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Inline capacity of a [`Deps`] set: dependency sets are almost always
/// tiny (one sample, or a handful combined into an average), so they
/// live in the value itself and cost no allocation until they outgrow
/// this.
const DEPS_INLINE: usize = 8;

#[derive(Debug, Clone)]
enum DepsRepr {
    /// Sorted, deduplicated prefix of `buf`.
    Inline { len: u8, buf: [u64; DEPS_INLINE] },
    /// Spill representation for large sets (keeps ordered-set
    /// semantics). A set spills only by growing past the inline
    /// capacity, so representations stay canonical: ≤ 8 elements is
    /// always `Inline`.
    Heap(BTreeSet<u64>),
}

/// Logical timestamps of input operations a value depends on — the
/// paper's `I`.
///
/// Semantically an ordered `u64` set (what [`BTreeSet`] provided); the
/// representation keeps up to eight timestamps inline because the
/// hot path creates, clones, and unions one of these for every tainted
/// value the machine touches.
#[derive(Debug, Clone)]
pub struct Deps(DepsRepr);

impl Default for Deps {
    fn default() -> Self {
        Deps::new()
    }
}

impl Deps {
    /// The empty set.
    pub const fn new() -> Self {
        Deps(DepsRepr::Inline {
            len: 0,
            buf: [0; DEPS_INLINE],
        })
    }

    /// Number of timestamps.
    pub fn len(&self) -> usize {
        match &self.0 {
            DepsRepr::Inline { len, .. } => *len as usize,
            DepsRepr::Heap(s) => s.len(),
        }
    }

    /// True when no input is depended on.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `t` is in the set.
    pub fn contains(&self, t: u64) -> bool {
        match &self.0 {
            DepsRepr::Inline { len, buf } => buf[..*len as usize].binary_search(&t).is_ok(),
            DepsRepr::Heap(s) => s.contains(&t),
        }
    }

    /// Inserts `t`, returning true when it was new.
    pub fn insert(&mut self, t: u64) -> bool {
        match &mut self.0 {
            DepsRepr::Inline { len, buf } => {
                let n = *len as usize;
                match buf[..n].binary_search(&t) {
                    Ok(_) => false,
                    Err(pos) => {
                        if n < DEPS_INLINE {
                            buf.copy_within(pos..n, pos + 1);
                            buf[pos] = t;
                            *len += 1;
                        } else {
                            let mut s: BTreeSet<u64> = buf.iter().copied().collect();
                            s.insert(t);
                            self.0 = DepsRepr::Heap(s);
                        }
                        true
                    }
                }
            }
            DepsRepr::Heap(s) => s.insert(t),
        }
    }

    /// Iterates the timestamps in ascending order.
    pub fn iter(&self) -> DepsIter<'_> {
        match &self.0 {
            DepsRepr::Inline { len, buf } => DepsIter::Inline(buf[..*len as usize].iter()),
            DepsRepr::Heap(s) => DepsIter::Heap(s.iter()),
        }
    }
}

/// Borrowing iterator over a [`Deps`] set, ascending.
pub enum DepsIter<'a> {
    /// Inline storage.
    Inline(std::slice::Iter<'a, u64>),
    /// Spilled storage.
    Heap(std::collections::btree_set::Iter<'a, u64>),
}

impl<'a> Iterator for DepsIter<'a> {
    type Item = &'a u64;
    fn next(&mut self) -> Option<&'a u64> {
        match self {
            DepsIter::Inline(i) => i.next(),
            DepsIter::Heap(i) => i.next(),
        }
    }
}

impl PartialEq for Deps {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for Deps {}

impl<const N: usize> From<[u64; N]> for Deps {
    fn from(xs: [u64; N]) -> Self {
        xs.into_iter().collect()
    }
}

impl FromIterator<u64> for Deps {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut d = Deps::new();
        d.extend(iter);
        d
    }
}

impl Extend<u64> for Deps {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl IntoIterator for Deps {
    type Item = u64;
    type IntoIter = std::vec::IntoIter<u64>;
    fn into_iter(self) -> Self::IntoIter {
        // Only used on cold paths (set unions through `Extend` stay
        // borrow-based); collecting keeps the iterator type simple.
        self.iter().copied().collect::<Vec<u64>>().into_iter()
    }
}

/// A value with its input-dependency timestamps.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tainted {
    /// The integer value (booleans are 0/1).
    pub value: i64,
    /// Input timestamps this value depends on.
    pub deps: Deps,
}

impl Tainted {
    /// An untainted constant.
    pub fn pure(value: i64) -> Self {
        Tainted {
            value,
            deps: Deps::new(),
        }
    }

    /// A freshly-sampled input collected at logical time `tau`.
    pub fn input(value: i64, tau: u64) -> Self {
        Tainted {
            value,
            deps: Deps::from([tau]),
        }
    }

    /// Combines two operands: the result depends on both.
    pub fn combine(value: i64, a: &Tainted, b: &Tainted) -> Self {
        let mut deps = a.deps.clone();
        deps.extend(b.deps.iter().copied());
        Tainted { value, deps }
    }
}

/// Non-volatile memory: globals and arrays. Survives power failures.
///
/// Storage is slot-indexed: each kind (scalars, arrays) lives in a
/// dense `Vec` with a name→slot map on the side. Declared globals get
/// their slots in declaration order — the same numbering
/// [`ocelot_ir::Program::scalar_slot`] / [`ocelot_ir::Program::array_slot`]
/// document — and slots are append-only, so a slot resolved once (by
/// the compiled execution backend) stays valid for the lifetime of the
/// memory. Every slot also carries its name as a shared [`Arc<str>`],
/// which is what keeps undo-log keys allocation-free. The name-keyed
/// API is unchanged and remains the fallback for accesses that cannot
/// be resolved statically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NvMem {
    scalar_index: BTreeMap<String, usize>,
    scalar_names: Vec<Arc<str>>,
    scalars: Vec<Tainted>,
    array_index: BTreeMap<String, usize>,
    array_names: Vec<Arc<str>>,
    arrays: Vec<Vec<Tainted>>,
}

impl NvMem {
    /// Initializes non-volatile memory from the program's global
    /// declarations (arrays zero-fill).
    pub fn init(p: &Program) -> Self {
        let mut nv = NvMem::default();
        for g in &p.globals {
            match g.array_len {
                Some(n) => {
                    nv.array_index.insert(g.name.clone(), nv.arrays.len());
                    nv.array_names.push(Arc::from(g.name.as_str()));
                    nv.arrays.push(vec![Tainted::pure(0); n]);
                }
                None => {
                    nv.scalar_index.insert(g.name.clone(), nv.scalars.len());
                    nv.scalar_names.push(Arc::from(g.name.as_str()));
                    nv.scalars.push(Tainted::pure(g.init));
                }
            }
        }
        nv
    }

    /// The stable slot of scalar `name`, if it exists.
    pub fn scalar_slot(&self, name: &str) -> Option<usize> {
        self.scalar_index.get(name).copied()
    }

    /// The stable slot of array `name`, if it exists.
    pub fn array_slot(&self, name: &str) -> Option<usize> {
        self.array_index.get(name).copied()
    }

    /// The shared name of the scalar at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::scalar_slot`].
    pub fn scalar_name(&self, slot: usize) -> &Arc<str> {
        &self.scalar_names[slot]
    }

    /// The shared name of the array at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::array_slot`].
    pub fn array_name(&self, slot: usize) -> &Arc<str> {
        &self.array_names[slot]
    }

    /// The slot of scalar `name`, allocating a fresh zeroed slot for
    /// unknown names (hand-built IR may store to undeclared names).
    pub fn ensure_scalar(&mut self, name: &str) -> usize {
        match self.scalar_index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.scalars.len();
                self.scalar_index.insert(name.to_string(), i);
                self.scalar_names.push(Arc::from(name));
                self.scalars.push(Tainted::default());
                i
            }
        }
    }

    /// Reads a scalar global. Missing globals read as untainted 0
    /// (validation prevents this in checked programs).
    pub fn read(&self, name: &str) -> Tainted {
        match self.scalar_index.get(name) {
            Some(&i) => self.scalars[i].clone(),
            None => Tainted::default(),
        }
    }

    /// Reads the scalar at a pre-resolved slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::scalar_slot`].
    pub fn read_slot(&self, slot: usize) -> Tainted {
        self.scalars[slot].clone()
    }

    /// Value-only read of the scalar at a pre-resolved slot — no
    /// dependency-set clone. Used by the optimizer's taint-free
    /// expression path, which has proven the deps unobservable.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::scalar_slot`].
    pub fn read_slot_value(&self, slot: usize) -> i64 {
        self.scalars[slot].value
    }

    /// Writes a scalar global, returning the previous value for undo
    /// logging. Unknown names are allocated a fresh slot.
    pub fn write(&mut self, name: &str, v: Tainted) -> Tainted {
        let slot = self.ensure_scalar(name);
        std::mem::replace(&mut self.scalars[slot], v)
    }

    /// Writes the scalar at a pre-resolved slot, returning the previous
    /// value for undo logging.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::scalar_slot`].
    pub fn write_slot(&mut self, slot: usize, v: Tainted) -> Tainted {
        std::mem::replace(&mut self.scalars[slot], v)
    }

    /// Reads `name[idx]`; out-of-bounds indices clamp to the last cell
    /// (embedded-style saturation, keeping runs total).
    pub fn read_idx(&self, name: &str, idx: i64) -> Tainted {
        match self.array_index.get(name) {
            Some(&s) => self.read_idx_slot(s, idx),
            None => Tainted::default(),
        }
    }

    /// Reads cell `idx` (clamped) of the array at a pre-resolved slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::array_slot`].
    pub fn read_idx_slot(&self, slot: usize, idx: i64) -> Tainted {
        let a = &self.arrays[slot];
        if a.is_empty() {
            return Tainted::default();
        }
        let i = (idx.max(0) as usize).min(a.len() - 1);
        a[i].clone()
    }

    /// Value-only variant of [`NvMem::read_idx`].
    pub fn read_idx_value(&self, name: &str, idx: i64) -> i64 {
        match self.array_index.get(name) {
            Some(&s) => self.read_idx_slot_value(s, idx),
            None => 0,
        }
    }

    /// Value-only variant of [`NvMem::read_idx_slot`] — no
    /// dependency-set clone.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::array_slot`].
    pub fn read_idx_slot_value(&self, slot: usize, idx: i64) -> i64 {
        let a = &self.arrays[slot];
        if a.is_empty() {
            return 0;
        }
        let i = (idx.max(0) as usize).min(a.len() - 1);
        a[i].value
    }

    /// Writes `name[idx]` (clamped), returning `(clamped_index, old)`.
    pub fn write_idx(&mut self, name: &str, idx: i64, v: Tainted) -> (usize, Tainted) {
        match self.array_index.get(name) {
            Some(&s) => self.write_idx_slot(s, idx, v),
            None => (0, Tainted::default()),
        }
    }

    /// Writes cell `idx` (clamped) of the array at a pre-resolved slot,
    /// returning `(clamped_index, old)`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not obtained from [`NvMem::array_slot`].
    pub fn write_idx_slot(&mut self, slot: usize, idx: i64, v: Tainted) -> (usize, Tainted) {
        let a = &mut self.arrays[slot];
        if a.is_empty() {
            return (0, Tainted::default());
        }
        let i = (idx.max(0) as usize).min(a.len() - 1);
        let old = std::mem::replace(&mut a[i], v);
        (i, old)
    }

    /// Resets this memory to the state [`NvMem::init`] would produce
    /// for `p`, reusing allocations where the declared layout matches.
    ///
    /// Runtime-allocated scalar slots (stores to undeclared names in
    /// hand-built IR) are dropped — they always sit after the declared
    /// prefix — so a pooled memory carries no state from one device to
    /// the next. When the declared prefix does not match `p` (a pooled
    /// memory crossing programs), the memory is rebuilt from scratch.
    pub fn reset_from(&mut self, p: &Program) {
        let (mut ns, mut na) = (0usize, 0usize);
        let mut matches = true;
        for g in &p.globals {
            match g.array_len {
                Some(n) => {
                    matches &= self.array_names.get(na).map(|a| &**a) == Some(g.name.as_str())
                        && self.arrays[na].len() == n;
                    na += 1;
                }
                None => {
                    matches &= self.scalar_names.get(ns).map(|a| &**a) == Some(g.name.as_str());
                    ns += 1;
                }
            }
            if !matches {
                *self = NvMem::init(p);
                return;
            }
        }
        self.scalar_index.retain(|_, s| *s < ns);
        self.scalar_names.truncate(ns);
        self.scalars.truncate(ns);
        self.array_index.retain(|_, s| *s < na);
        self.array_names.truncate(na);
        self.arrays.truncate(na);
        let (mut ns, mut na) = (0usize, 0usize);
        for g in &p.globals {
            match g.array_len {
                Some(_) => {
                    for cell in self.arrays[na].iter_mut() {
                        *cell = Tainted::pure(0);
                    }
                    na += 1;
                }
                None => {
                    self.scalars[ns] = Tainted::pure(g.init);
                    ns += 1;
                }
            }
        }
    }

    /// True when `name` is an array.
    pub fn is_array(&self, name: &str) -> bool {
        self.array_index.contains_key(name)
    }

    /// Restores one array cell without clamping (undo-log rollback
    /// targets the exact logged index; out-of-range indices are
    /// ignored, matching a log entry for a since-shrunk array).
    fn restore_cell(&mut self, name: &str, idx: usize, v: Tainted) {
        if let Some(&s) = self.array_index.get(name) {
            if let Some(cell) = self.arrays[s].get_mut(idx) {
                *cell = v;
            }
        }
    }
}

/// How one parameter of a function is bound at call time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamBind {
    /// A by-value parameter: bound into this local slot.
    Value(u32),
    /// A by-mutable-reference parameter: resolved into the frame's
    /// reference map under this (shared) name.
    Ref(Arc<str>),
}

/// One function's local slot layout: by-value parameters first (in
/// parameter order), then the lowered locals (in
/// [`ocelot_ir::Function::locals`] order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLayout {
    /// Entry block of the function (so frames can be created without a
    /// [`Program`] in hand).
    pub entry: BlockId,
    names: Vec<Arc<str>>,
    index: BTreeMap<Arc<str>, u32>,
    params: Vec<ParamBind>,
}

impl FrameLayout {
    fn of(f: &ocelot_ir::Function) -> Self {
        let mut l = FrameLayout {
            entry: f.entry,
            names: Vec::new(),
            index: BTreeMap::new(),
            params: Vec::new(),
        };
        let add = |l: &mut FrameLayout, name: &str| -> u32 {
            if let Some(&s) = l.index.get(name) {
                return s; // duplicate declaration: first slot wins
            }
            let s = l.names.len() as u32;
            let arc: Arc<str> = Arc::from(name);
            l.names.push(Arc::clone(&arc));
            l.index.insert(arc, s);
            s
        };
        for p in &f.params {
            if p.by_ref {
                l.params.push(ParamBind::Ref(Arc::from(p.name.as_str())));
            } else {
                let s = add(&mut l, &p.name);
                l.params.push(ParamBind::Value(s));
            }
        }
        for name in &f.locals {
            add(&mut l, name);
        }
        l
    }

    /// The slot of `name`, if this function declares it by value.
    pub fn slot(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Number of local slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the function has no by-value locals at all.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The shared name of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn name(&self, slot: u32) -> &Arc<str> {
        &self.names[slot as usize]
    }

    /// Parameter bindings, in parameter order.
    pub fn params(&self) -> &[ParamBind] {
        &self.params
    }
}

/// The slot layouts of every function in a program, indexed by
/// [`FuncId`]. Built once; shared by both execution backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLayouts {
    funcs: Vec<FrameLayout>,
}

impl FrameLayouts {
    /// Computes the layout of every function of `p`.
    pub fn new(p: &Program) -> Self {
        FrameLayouts {
            funcs: p.funcs.iter().map(FrameLayout::of).collect(),
        }
    }

    /// The layout of function `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn layout(&self, f: FuncId) -> &FrameLayout {
        &self.funcs[f.0 as usize]
    }

    /// The slot of `name` in function `f`, if declared by value.
    pub fn slot(&self, f: FuncId, name: &str) -> Option<u32> {
        self.layout(f).slot(name)
    }
}

/// Where a by-reference parameter ultimately points: resolved at call
/// time (references cannot re-seat, so resolution is stable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefTarget {
    /// A local slot in an earlier frame (`frame` indexes the stack from
    /// the bottom).
    Local {
        /// Stack index of the owning frame.
        frame: usize,
        /// Slot within that frame.
        slot: u32,
    },
    /// A spilled (out-of-layout) binding in an earlier frame —
    /// hand-built IR only.
    Extra {
        /// Stack index of the owning frame.
        frame: usize,
        /// Binding name within that frame's spill map.
        name: Arc<str>,
    },
    /// A non-volatile scalar global.
    Global(Arc<str>),
}

/// Where a callee's return value lands in the caller frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetSlot {
    /// A pre-resolved caller slot.
    Slot(u32),
    /// A caller binding outside the layout (hand-built IR only).
    Spill(Arc<str>),
}

/// One call frame: the program counter and slot-indexed local bindings.
///
/// A slot is *unbound* (`None`) until a `let`, input, call result, or
/// parameter binds it — the runtime distinction behind the paper
/// model's "no block scoping" quirk, where an in-scope-but-unbound
/// local stores non-volatile. The frame's checkpoint footprint counts
/// only bound slots, exactly like the name-keyed map it replaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    /// Current basic block.
    pub block: BlockId,
    /// Next instruction index within the block (`instrs.len()` = the
    /// terminator).
    pub index: usize,
    /// Local slots (`None` = declared but not yet bound).
    slots: Vec<Option<Tainted>>,
    /// Number of bound slots (the volatile word count of `slots`).
    bound: u32,
    /// Bindings for names outside the function's layout — empty for
    /// lowered programs, a spill path for hand-built IR.
    extra: BTreeMap<String, Tainted>,
    /// Resolution of by-reference parameters.
    pub refs: BTreeMap<Arc<str>, RefTarget>,
    /// Where the caller wants the return value, if anywhere.
    pub ret_dst: Option<RetSlot>,
    /// The call instruction that created this frame (`None` for the
    /// bottom frame); the dynamic provenance chain is read off these.
    pub call_site: Option<ocelot_ir::InstrRef>,
}

impl Frame {
    /// A frame at the entry of `func` with all slots unbound.
    pub fn at_entry(layouts: &FrameLayouts, func: FuncId) -> Self {
        let l = layouts.layout(func);
        Frame::raw(func, l.entry, l.len(), None, None)
    }

    /// A frame for a call into `func` at `entry` with `nslots` local
    /// slots; parameters are bound afterwards via [`Frame::set_slot`].
    pub fn for_call(
        func: FuncId,
        entry: BlockId,
        nslots: usize,
        ret_dst: Option<RetSlot>,
        call_site: ocelot_ir::InstrRef,
    ) -> Self {
        Frame::raw(func, entry, nslots, ret_dst, Some(call_site))
    }

    fn raw(
        func: FuncId,
        block: BlockId,
        nslots: usize,
        ret_dst: Option<RetSlot>,
        call_site: Option<ocelot_ir::InstrRef>,
    ) -> Self {
        Frame {
            func,
            block,
            index: 0,
            slots: vec![None; nslots],
            bound: 0,
            extra: BTreeMap::new(),
            refs: BTreeMap::new(),
            ret_dst,
            call_site,
        }
    }

    /// Re-initializes a recycled frame for a new call, keeping its
    /// allocations (slot vector capacity, map nodes are already empty).
    pub fn reuse(
        &mut self,
        func: FuncId,
        entry: BlockId,
        nslots: usize,
        ret_dst: Option<RetSlot>,
        call_site: ocelot_ir::InstrRef,
    ) {
        self.func = func;
        self.block = entry;
        self.index = 0;
        self.slots.clear();
        self.slots.resize(nslots, None);
        self.bound = 0;
        self.extra.clear();
        self.refs.clear();
        self.ret_dst = ret_dst;
        self.call_site = Some(call_site);
    }

    /// The bound value of `slot`, or `None` while unbound.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the frame's layout.
    pub fn get_slot(&self, slot: u32) -> Option<&Tainted> {
        self.slots[slot as usize].as_ref()
    }

    /// Binds (or rebinds) `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the frame's layout.
    pub fn set_slot(&mut self, slot: u32, v: Tainted) {
        let cell = &mut self.slots[slot as usize];
        if cell.is_none() {
            self.bound += 1;
        }
        *cell = Some(v);
    }

    /// A binding outside the layout (hand-built IR only).
    pub fn get_extra(&self, name: &str) -> Option<&Tainted> {
        self.extra.get(name)
    }

    /// Binds a name outside the layout (hand-built IR only).
    pub fn set_extra(&mut self, name: &str, v: Tainted) {
        self.extra.insert(name.to_string(), v);
    }

    /// Number of words of volatile state this frame holds (bound locals
    /// plus a fixed register-file share).
    pub fn words(&self) -> usize {
        self.bound as usize + self.extra.len() + 4
    }
}

/// The whole volatile machine state: the call stack. Lost on power
/// failure unless checkpointed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VolState {
    /// Call frames, bottom first.
    pub frames: Vec<Frame>,
}

impl VolState {
    /// Volatile footprint in words (drives checkpoint cost).
    pub fn words(&self) -> usize {
        16 + self.frames.iter().map(Frame::words).sum::<usize>()
    }

    /// The active frame.
    pub fn top(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// The active frame, mutably.
    pub fn top_mut(&mut self) -> Option<&mut Frame> {
        self.frames.last_mut()
    }
}

/// A location key for undo logging. Names are shared [`Arc<str>`]s, so
/// cloning a key costs a reference-count bump, not an allocation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NvLoc {
    /// A scalar global.
    Scalar(Arc<str>),
    /// One array cell.
    Cell(Arc<str>, usize),
}

/// Undo log for an atomic region: first-write-wins snapshots of
/// non-volatile locations.
///
/// Backed by a hash map so [`UndoLog::clear`] keeps its capacity — the
/// machine pools one log across region entries instead of re-allocating
/// per entry. Restoration order is irrelevant (one entry per location),
/// so the map's iteration order never becomes observable.
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    entries: HashMap<NvLoc, Tainted>,
}

impl UndoLog {
    /// Records the pre-state of `loc` unless already logged. Returns
    /// true when a new entry was added (for cost accounting).
    pub fn save(&mut self, loc: NvLoc, old: Tainted) -> bool {
        if let std::collections::hash_map::Entry::Vacant(e) = self.entries.entry(loc) {
            e.insert(old);
            true
        } else {
            false
        }
    }

    /// Number of logged words.
    pub fn words(&self) -> usize {
        self.entries.len()
    }

    /// Restores every logged location into `nv` — the paper's `N ◁ L`.
    pub fn apply(&self, nv: &mut NvMem) {
        for (loc, old) in &self.entries {
            match loc {
                NvLoc::Scalar(name) => {
                    nv.write(name, old.clone());
                }
                NvLoc::Cell(name, idx) => {
                    nv.restore_cell(name, *idx, old.clone());
                }
            }
        }
    }

    /// Drops all entries, keeping the allocation (region committed).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile;

    #[test]
    fn tainted_combine_unions_deps() {
        let a = Tainted::input(3, 10);
        let b = Tainted::input(4, 20);
        let c = Tainted::combine(7, &a, &b);
        assert_eq!(c.value, 7);
        assert_eq!(c.deps, Deps::from([10, 20]));
    }

    #[test]
    fn nv_init_from_globals() {
        let p = compile("nv g = 5; nv a[3]; fn main() {}").unwrap();
        let nv = NvMem::init(&p);
        assert_eq!(nv.read("g").value, 5);
        assert_eq!(nv.read_idx("a", 2).value, 0);
        assert!(nv.is_array("a"));
        assert!(!nv.is_array("g"));
    }

    #[test]
    fn slots_agree_with_the_ir_numbering_and_stay_stable() {
        let p = compile("nv a = 1; nv arr[2]; nv b = 2; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        for g in &p.globals {
            match g.array_len {
                Some(_) => assert_eq!(nv.array_slot(&g.name), p.array_slot(&g.name), "{}", g.name),
                None => assert_eq!(
                    nv.scalar_slot(&g.name),
                    p.scalar_slot(&g.name),
                    "{}",
                    g.name
                ),
            }
        }
        let a = nv.scalar_slot("a").unwrap();
        assert_eq!(&**nv.scalar_name(a), "a");
        assert_eq!(&**nv.array_name(nv.array_slot("arr").unwrap()), "arr");
        // Runtime writes to undeclared names append; resolved slots
        // never move.
        nv.write("later", Tainted::pure(9));
        assert_eq!(nv.scalar_slot("a"), Some(a));
        assert_eq!(nv.read_slot(a).value, 1);
        let old = nv.write_slot(a, Tainted::pure(7));
        assert_eq!(old.value, 1);
        assert_eq!(nv.read("a").value, 7, "slot and name views are one store");
        assert_eq!(nv.read("later").value, 9);
    }

    #[test]
    fn reset_from_restores_the_init_state_exactly() {
        let p = compile("nv g = 5; nv a[3]; nv h = -2; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        nv.write("g", Tainted::input(9, 4));
        nv.write_idx("a", 1, Tainted::input(7, 8));
        // A runtime-allocated slot for an undeclared name must vanish.
        nv.write("ghost", Tainted::pure(1));
        assert!(nv.scalar_slot("ghost").is_some());
        nv.reset_from(&p);
        assert_eq!(nv, NvMem::init(&p), "reset is exactly re-init");
        assert_eq!(nv.scalar_slot("ghost"), None);
        // A different program rebuilds from scratch.
        let q = compile("nv other = 1; fn main() {}").unwrap();
        nv.reset_from(&q);
        assert_eq!(nv, NvMem::init(&q));
    }

    #[test]
    fn slot_indexed_array_access_matches_named_access() {
        let p = compile("nv arr[3]; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        let s = nv.array_slot("arr").unwrap();
        let (i, _) = nv.write_idx_slot(s, 1, Tainted::pure(5));
        assert_eq!(i, 1);
        assert_eq!(nv.read_idx("arr", 1).value, 5);
        assert_eq!(nv.read_idx_slot(s, 99).value, 0, "clamps like read_idx");
        assert_eq!(
            nv.read_idx_slot(s, 99).value,
            nv.read_idx("arr", 99).value,
            "slot and name paths clamp identically"
        );
    }

    #[test]
    fn array_indices_clamp() {
        let p = compile("nv a[2]; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        nv.write_idx("a", 7, Tainted::pure(9));
        assert_eq!(nv.read_idx("a", 100).value, 9, "both clamp to last cell");
        nv.write_idx("a", -5, Tainted::pure(1));
        assert_eq!(nv.read_idx("a", 0).value, 1);
    }

    #[test]
    fn undo_log_first_write_wins_and_applies() {
        let p = compile("nv g = 5; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        let mut log = UndoLog::default();
        let old = nv.write("g", Tainted::pure(6));
        assert!(log.save(NvLoc::Scalar("g".into()), old));
        let old2 = nv.write("g", Tainted::pure(7));
        assert!(!log.save(NvLoc::Scalar("g".into()), old2), "already logged");
        assert_eq!(nv.read("g").value, 7);
        log.apply(&mut nv);
        assert_eq!(nv.read("g").value, 5, "rollback to pre-region value");
        assert_eq!(log.words(), 1);
    }

    #[test]
    fn undo_log_handles_array_cells() {
        let p = compile("nv a[4]; fn main() {}").unwrap();
        let mut nv = NvMem::init(&p);
        let mut log = UndoLog::default();
        let (i, old) = nv.write_idx("a", 2, Tainted::pure(42));
        log.save(NvLoc::Cell("a".into(), i), old);
        log.apply(&mut nv);
        assert_eq!(nv.read_idx("a", 2).value, 0);
    }

    #[test]
    fn layouts_cover_params_and_locals() {
        let p = compile(
            r#"
            fn add(a, &res, b) { *res = a + b; return 0; }
            fn main() { let x = 1; let y = add(x, &x, 2); out(log, x + y); }
            "#,
        )
        .unwrap();
        let layouts = FrameLayouts::new(&p);
        let add = p
            .funcs
            .iter()
            .find(|f| f.name == "add")
            .map(|f| f.id)
            .unwrap();
        let l = layouts.layout(add);
        // Value params a and b get the first slots (param order); the
        // by-ref param resolves through the refs map instead.
        assert_eq!(l.slot("a"), Some(0));
        assert_eq!(l.slot("b"), Some(1));
        assert_eq!(l.slot("res"), None);
        assert_eq!(l.params().len(), 3);
        assert!(matches!(l.params()[0], ParamBind::Value(0)));
        assert!(matches!(l.params()[1], ParamBind::Ref(ref n) if &**n == "res"));
        assert!(matches!(l.params()[2], ParamBind::Value(1)));
        // main's layout names every lowered local.
        let lm = layouts.layout(p.main);
        assert!(lm.slot("x").is_some());
        assert!(lm.slot("y").is_some());
        assert_eq!(&**lm.name(lm.slot("x").unwrap()), "x");
    }

    #[test]
    fn frame_words_count_bound_slots_only() {
        let p = compile("fn main() { let x = 1; let y = 2; }").unwrap();
        let layouts = FrameLayouts::new(&p);
        let mut vol = VolState::default();
        let base = vol.words();
        vol.frames.push(Frame::at_entry(&layouts, p.main));
        // Unbound slots carry no volatile words — same accounting as
        // the name-keyed map this replaced.
        assert_eq!(vol.words(), base + 4);
        let x = layouts.slot(p.main, "x").unwrap();
        vol.top_mut().unwrap().set_slot(x, Tainted::pure(1));
        assert_eq!(vol.words(), base + 4 + 1);
        // Rebinding does not double-count.
        vol.top_mut().unwrap().set_slot(x, Tainted::pure(2));
        assert_eq!(vol.words(), base + 4 + 1);
        // Spilled (out-of-layout) names count like bound slots.
        vol.top_mut().unwrap().set_extra("ghost", Tainted::pure(9));
        assert_eq!(vol.words(), base + 4 + 2);
        assert_eq!(vol.top().unwrap().get_extra("ghost").unwrap().value, 9);
    }
}
