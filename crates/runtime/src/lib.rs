//! # ocelot-runtime
//!
//! The intermittent execution substrate of the Ocelot reproduction: an
//! interpreter implementing the paper's taint-augmented continuous
//! semantics (Appendix B) and the JIT + Atomics intermittent semantics
//! (Appendix H), driven by the simulated power supplies and sensor
//! environments of `ocelot-hw`.
//!
//! Violations are detected two ways (§7.3): the paper's non-volatile
//! bit-vector mechanism runs online, and the formal Definitions 2/3 are
//! validated offline on the committed observation trace — the two are
//! cross-checked in tests.
//!
//! ## Examples
//!
//! ```
//! use ocelot_runtime::machine::Machine;
//! use ocelot_runtime::model::{build, ExecModel};
//! use ocelot_hw::{sensors::Environment, energy::CostModel, power::ContinuousPower};
//!
//! let program = ocelot_ir::compile(r#"
//!     sensor temp;
//!     fn main() { let t = in(temp); fresh(t); out(log, t); }
//! "#)?;
//! let built = build(program, ExecModel::Ocelot).unwrap();
//! let mut m = Machine::new(
//!     &built.program, &built.regions, built.policies,
//!     Environment::new(), CostModel::default(), Box::new(ContinuousPower),
//! );
//! m.run_once(100_000);
//! assert_eq!(m.stats().runs_completed, 1);
//! # Ok::<(), ocelot_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod detect;
pub mod exec;
pub mod expiry;
pub mod machine;
pub mod memory;
pub mod model;
pub mod obs;
pub mod samoyed;
pub mod stats;

pub use detect::{check_trace, BitVector, DetectorConfig, ViolationEvent, ViolationKind};
pub use exec::{ExecBackend, OptLevel};
pub use expiry::{evaluate_expiry, ExpiryReport};
pub use machine::{
    elision_witnesses, pathological_targets, DeviceState, Machine, MachineCore, RunOutcome,
};
pub use model::{build, Built, ExecModel};
pub use obs::{Obs, ObsLog};
pub use samoyed::{run_scaled, samoyed_transform, ScaledApp, ScaledOutcome};
pub use stats::Stats;
