//! Execution-model builds: the three configurations of §7.2.
//!
//! * **JIT** — checkpoints only at low-power interrupts; annotations are
//!   used for violation *detection* but no regions are inferred. Manual
//!   regions already in the source (the UART guards every configuration
//!   carries) are kept.
//! * **Ocelot** — the full transform: inferred regions + JIT elsewhere.
//! * **Atomics-only** — the program text already carries manually-placed
//!   phase regions (the DINO-style execution model); no inference.

use ocelot_analysis::taint::TaintAnalysis;
use ocelot_core::{
    build_policies, collect_regions, ocelot_transform, CoreError, PolicySet, RegionInfo,
};
use ocelot_ir::Program;

/// Which execution model to build for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecModel {
    /// JIT checkpointing only (fast, incorrect under input constraints).
    Jit,
    /// Ocelot: JIT + inferred atomic regions (correct by construction).
    Ocelot,
    /// Manually-placed whole-phase atomic regions (correct if placed
    /// correctly, potentially slow).
    AtomicsOnly,
}

impl ExecModel {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            ExecModel::Jit => "JIT",
            ExecModel::Ocelot => "Ocelot",
            ExecModel::AtomicsOnly => "Atomics-only",
        }
    }

    /// Inverse of [`ExecModel::name`], for tooling that reads model
    /// names back from persisted text (bench artifacts, CLI input).
    pub fn parse(name: &str) -> Option<ExecModel> {
        match name {
            "JIT" => Some(ExecModel::Jit),
            "Ocelot" => Some(ExecModel::Ocelot),
            "Atomics-only" => Some(ExecModel::AtomicsOnly),
            _ => None,
        }
    }

    /// The three models of §7.2, in the paper's comparison order.
    pub fn all() -> [ExecModel; 3] {
        [ExecModel::Jit, ExecModel::AtomicsOnly, ExecModel::Ocelot]
    }
}

/// A program prepared for execution under one model.
#[derive(Debug, Clone)]
pub struct Built {
    /// The model this was built for.
    pub model: ExecModel,
    /// The executable program (annotations erased).
    pub program: Program,
    /// Policies, for the violation detectors.
    pub policies: PolicySet,
    /// Region metadata (ω) for the runtime.
    pub regions: Vec<RegionInfo>,
}

/// Prepares `program` for `model`.
///
/// For [`ExecModel::AtomicsOnly`], pass the source variant with manual
/// phase regions; for the others, the annotated source.
///
/// # Errors
///
/// Propagates validation, inference, and region-structure errors.
pub fn build(program: Program, model: ExecModel) -> Result<Built, CoreError> {
    match model {
        ExecModel::Ocelot => {
            let c = ocelot_transform(program)?;
            Ok(Built {
                model,
                program: c.program,
                policies: c.policies,
                regions: c.regions,
            })
        }
        ExecModel::Jit | ExecModel::AtomicsOnly => {
            let mut program = program;
            ocelot_ir::validate(&program)?;
            let taint = TaintAnalysis::run(&program);
            let policies = build_policies(&program, &taint);
            program.erase_annotations();
            let regions = collect_regions(&program)?;
            Ok(Built {
                model,
                program,
                policies,
                regions,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile;

    const SRC: &str = r#"
        sensor s;
        fn main() {
            let x = in(s);
            fresh(x);
            out(log, x);
            atomic { out(uart, 1); }
        }
    "#;

    #[test]
    fn jit_build_keeps_manual_regions_only() {
        let b = build(compile(SRC).unwrap(), ExecModel::Jit).unwrap();
        assert_eq!(b.regions.len(), 1, "only the UART guard");
        assert_eq!(b.policies.len(), 1, "policy kept for detection");
        assert!(b.program.annotations().is_empty());
    }

    #[test]
    fn ocelot_build_adds_inferred_region() {
        let b = build(compile(SRC).unwrap(), ExecModel::Ocelot).unwrap();
        assert_eq!(b.regions.len(), 2, "UART guard + inferred");
    }

    #[test]
    fn atomics_only_uses_manual_placement() {
        let src = r#"
            sensor s;
            fn main() {
                atomic {
                    let x = in(s);
                    fresh(x);
                    out(log, x);
                }
            }
        "#;
        let b = build(compile(src).unwrap(), ExecModel::AtomicsOnly).unwrap();
        assert_eq!(b.regions.len(), 1);
        // The manual region covers the policy: checker agrees.
        let report = ocelot_core::check_regions(&b.program, &b.policies).unwrap();
        assert!(report.passes());
    }

    #[test]
    fn model_names_are_stable() {
        assert_eq!(ExecModel::Jit.name(), "JIT");
        assert_eq!(ExecModel::Ocelot.name(), "Ocelot");
        assert_eq!(ExecModel::AtomicsOnly.name(), "Atomics-only");
    }

    #[test]
    fn model_names_parse_back() {
        for m in ExecModel::all() {
            assert_eq!(ExecModel::parse(m.name()), Some(m));
        }
        assert_eq!(ExecModel::parse("DINO"), None);
    }
}
