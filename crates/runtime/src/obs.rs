//! Observations: the externally-visible events of an execution.
//!
//! The formal semantics (Appendix B) labels transitions with
//! observations; the trace checker validates Definitions 2 and 3 against
//! the *committed* observation trace — events produced inside an atomic
//! region become visible only when the region commits, mirroring how a
//! partially-executed region's effects are invisible (§3.1).

use crate::memory::Deps;
use ocelot_analysis::taint::Prov;
use ocelot_ir::InstrRef;
use std::sync::Arc;

/// One committed event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Obs {
    /// An input operation sampled a sensor.
    Input {
        /// The input instruction.
        at: InstrRef,
        /// Logical time of the sample — the paper's `in(τ)`.
        tau: u64,
        /// Wall-clock sample time in µs.
        time_us: u64,
        /// Power-on era (reboots increment it).
        era: u64,
        /// The sensor channel (interned: every sample of one sensor
        /// shares a single allocation).
        sensor: Arc<str>,
        /// The sampled value.
        value: i64,
        /// The provenance call chain of this collection (shared with
        /// the machine's chain table for pre-resolved sites).
        chain: Arc<Prov>,
    },
    /// A value was emitted on an output channel.
    Output {
        /// The output instruction.
        at: InstrRef,
        /// Logical time.
        tau: u64,
        /// Era.
        era: u64,
        /// Channel name (interned: every write to one channel shares a
        /// single allocation).
        channel: Arc<str>,
        /// Values written.
        values: Vec<i64>,
        /// Input dependencies of the written values.
        deps: Deps,
    },
    /// A use of policy-constrained data (recorded at detector check
    /// sites with the dynamic dependencies of the used value).
    Use {
        /// The using instruction.
        at: InstrRef,
        /// Logical time.
        tau: u64,
        /// Wall-clock time in µs (what a TICS-style expiry check reads
        /// from its timekeeper).
        time_us: u64,
        /// Era.
        era: u64,
        /// Input dependencies of the used value.
        deps: Deps,
    },
    /// The system rebooted after a power failure.
    Reboot {
        /// Off/charging time in µs — the paper's `pick(n)`.
        off_us: u64,
        /// The era that just ended.
        ended_era: u64,
    },
    /// An atomic region committed.
    Commit {
        /// Region id.
        region: ocelot_ir::RegionId,
        /// Logical time at commit.
        tau: u64,
    },
    /// A detector-reported policy violation.
    Violation(crate::detect::ViolationEvent),
}

/// Buffers observations, holding back region-internal events until the
/// region commits.
#[derive(Debug, Clone, Default)]
pub struct ObsLog {
    committed: Vec<Obs>,
    pending: Vec<Obs>,
    buffering: bool,
    capacity: usize,
}

impl ObsLog {
    /// A log that keeps at most `capacity` committed events (0 =
    /// unlimited). Violations are always retained.
    pub fn with_capacity(capacity: usize) -> Self {
        ObsLog {
            capacity,
            ..Default::default()
        }
    }

    /// Starts buffering (atomic region entered).
    pub fn begin_region(&mut self) {
        self.buffering = true;
    }

    /// Commits buffered events (region ended).
    pub fn commit_region(&mut self) {
        self.buffering = false;
        let pending = std::mem::take(&mut self.pending);
        for o in pending {
            self.push_committed(o);
        }
    }

    /// Discards buffered events (region rolled back).
    pub fn abort_region(&mut self) {
        self.buffering = false;
        self.pending.clear();
    }

    /// Records an event (buffered while a region is open).
    pub fn push(&mut self, o: Obs) {
        if self.buffering {
            self.pending.push(o);
        } else {
            self.push_committed(o);
        }
    }

    /// Records an event that bypasses buffering (reboots are visible
    /// immediately — they are exactly what aborts the buffer).
    pub fn push_unbuffered(&mut self, o: Obs) {
        self.push_committed(o);
    }

    fn push_committed(&mut self, o: Obs) {
        if self.capacity > 0 && self.committed.len() >= self.capacity {
            // Keep violations; drop the oldest non-violation event.
            if matches!(o, Obs::Violation(_)) {
                if let Some(pos) = self
                    .committed
                    .iter()
                    .position(|e| !matches!(e, Obs::Violation(_)))
                {
                    self.committed.remove(pos);
                } else {
                    return;
                }
            } else {
                return;
            }
        }
        self.committed.push(o);
    }

    /// The committed trace.
    pub fn committed(&self) -> &[Obs] {
        &self.committed
    }

    /// Clears the log for reuse, keeping the committed vector's
    /// allocation and the configured capacity (unlike [`ObsLog::take`],
    /// which surrenders the buffer to the caller).
    pub fn reset(&mut self) {
        self.committed.clear();
        self.pending.clear();
        self.buffering = false;
    }

    /// Takes the committed trace, resetting the log.
    pub fn take(&mut self) -> Vec<Obs> {
        self.pending.clear();
        self.buffering = false;
        std::mem::take(&mut self.committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::{FuncId, Label};

    fn reboot(era: u64) -> Obs {
        Obs::Reboot {
            off_us: 10,
            ended_era: era,
        }
    }

    fn use_obs(tau: u64) -> Obs {
        Obs::Use {
            at: InstrRef {
                func: FuncId(0),
                label: Label(0),
            },
            tau,
            time_us: tau,
            era: 0,
            deps: Deps::new(),
        }
    }

    #[test]
    fn region_commit_preserves_order() {
        let mut log = ObsLog::default();
        log.push(use_obs(1));
        log.begin_region();
        log.push(use_obs(2));
        log.push(use_obs(3));
        log.commit_region();
        log.push(use_obs(4));
        let taus: Vec<u64> = log
            .committed()
            .iter()
            .map(|o| match o {
                Obs::Use { tau, .. } => *tau,
                _ => 0,
            })
            .collect();
        assert_eq!(taus, vec![1, 2, 3, 4]);
    }

    #[test]
    fn region_abort_discards_pending() {
        let mut log = ObsLog::default();
        log.begin_region();
        log.push(use_obs(2));
        log.push_unbuffered(reboot(0));
        log.abort_region();
        assert_eq!(log.committed().len(), 1, "only the reboot is visible");
        assert!(matches!(log.committed()[0], Obs::Reboot { .. }));
    }

    #[test]
    fn capacity_drops_oldest_but_keeps_violations() {
        let mut log = ObsLog::with_capacity(2);
        log.push(use_obs(1));
        log.push(use_obs(2));
        log.push(use_obs(3)); // dropped
        assert_eq!(log.committed().len(), 2);
        let v = Obs::Violation(crate::detect::ViolationEvent {
            policy: ocelot_core::PolicyId(0),
            kind: crate::detect::ViolationKind::Freshness,
            at: InstrRef {
                func: FuncId(0),
                label: Label(9),
            },
            tau: 9,
            era: 1,
            stale_ops: vec![],
        });
        log.push(v.clone());
        assert!(log
            .committed()
            .iter()
            .any(|o| matches!(o, Obs::Violation(_))));
    }
}
