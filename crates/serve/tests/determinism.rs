//! End-to-end determinism suites over real TCP connections.
//!
//! The protocol's responses are timing-free by design, so the raw
//! response *lines* — the bytes `Client::request_line` returns — must
//! be identical whatever the worker count, whether an answer came from
//! a cold compile or a warm cache, and on either execution backend.

use ocelot_bench::json::Json;
use ocelot_serve::{serve, Client, ServeConfig};

const SRC: &str = "sensor temp; sensor pres; nv total = 0; \
     fn main() { let a = in(temp); fresh(a); let b = in(pres); \
     consistent(b, 2); total = total + a; out(log, a, b); }";

const EDITED: &str = "sensor temp; sensor pres; nv total = 0; \
     fn main() { let a = in(temp); fresh(a); let b = in(pres); \
     consistent(b, 3); total = total + a; out(log, a, b); }";

fn boot(jobs: usize) -> ocelot_serve::ServerHandle {
    serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        jobs,
        max_programs: 8,
        max_inflight: 8,
    })
    .expect("bind ephemeral port")
}

fn submit_hash(client: &mut Client, src: &str) -> u64 {
    let resp = client
        .request(&Json::obj(vec![
            ("op", Json::str("submit")),
            ("source", Json::str(src)),
        ]))
        .expect("submit");
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "{resp:?}"
    );
    resp.get("program").and_then(Json::as_u64).expect("hash")
}

fn run_req(hash: u64, backend: &str) -> Json {
    Json::obj(vec![
        ("op", Json::str("run")),
        ("program", Json::u64(hash)),
        ("scenario", Json::str("rf-lab")),
        ("runs", Json::u64(2)),
        ("backend", Json::str(backend)),
    ])
}

/// The fixed request sequence the worker-count suite replays: every op
/// except shutdown, with ids, edits, reseeded scenarios, and an error
/// case (unknown scenario) included on purpose.
fn transcript(jobs: usize) -> Vec<String> {
    let handle = boot(jobs);
    let mut client = Client::connect(handle.addr).expect("connect");
    let hash = submit_hash(&mut client, SRC);
    let requests = vec![
        Json::obj(vec![("op", Json::str("ping")), ("id", Json::u64(1))]),
        Json::obj(vec![
            ("op", Json::str("submit")),
            ("source", Json::str(SRC)),
        ]),
        Json::obj(vec![
            ("op", Json::str("verify")),
            ("doc", Json::str("d")),
            ("source", Json::str(SRC)),
        ]),
        Json::obj(vec![
            ("op", Json::str("verify")),
            ("doc", Json::str("d")),
            ("source", Json::str(EDITED)),
        ]),
        run_req(hash, "interp"),
        run_req(hash, "compiled"),
        Json::obj(vec![
            ("op", Json::str("sweep")),
            ("program", Json::u64(hash)),
            (
                "scenarios",
                Json::Arr(vec![
                    Json::str("rf-lab"),
                    Json::str("office-day"),
                    Json::str("rf-lab@9"),
                ]),
            ),
            ("runs", Json::u64(1)),
        ]),
        Json::obj(vec![
            ("op", Json::str("run")),
            ("program", Json::u64(hash)),
            ("scenario", Json::str("no-such-scenario")),
            ("id", Json::str("err-case")),
        ]),
        Json::obj(vec![("op", Json::str("stats"))]),
    ];
    let lines = requests
        .iter()
        .map(|r| client.request_line(r).expect("request"))
        .collect();
    handle.stop();
    lines
}

#[test]
fn same_requests_byte_identical_across_worker_counts() {
    let one = transcript(1);
    let two = transcript(2);
    let eight = transcript(8);
    assert_eq!(one, two, "--jobs 1 vs --jobs 2");
    assert_eq!(one, eight, "--jobs 1 vs --jobs 8");
}

#[test]
fn same_requests_byte_identical_with_telemetry_enabled() {
    // The full transcript — including the stats op with its per-cache
    // hit/miss counters — must serialize to the same bytes whether the
    // process-global telemetry pillars are hot or cold: responses carry
    // instance counters, never telemetry readings.
    let off = transcript(2);
    ocelot_telemetry::set_tracing(true);
    ocelot_telemetry::set_metrics(true);
    let on = transcript(2);
    ocelot_telemetry::set_tracing(false);
    ocelot_telemetry::set_metrics(false);
    ocelot_telemetry::drain_spans();
    ocelot_telemetry::metrics::reset_metrics();
    assert_eq!(off, on, "telemetry leaked into response bytes");
}

#[test]
fn warm_cache_answers_byte_identical_to_cold_compile_on_both_backends() {
    // Server A: cold compile, then warm repeats on both backends.
    let a = boot(2);
    let mut ca = Client::connect(a.addr).expect("connect");
    let hash = submit_hash(&mut ca, SRC);
    let cold_interp = ca.request_line(&run_req(hash, "interp")).unwrap();
    let cold_compiled = ca.request_line(&run_req(hash, "compiled")).unwrap();
    let warm_interp = ca.request_line(&run_req(hash, "interp")).unwrap();
    let warm_compiled = ca.request_line(&run_req(hash, "compiled")).unwrap();
    assert_eq!(cold_interp, warm_interp, "interp: warm core vs cold");
    assert_eq!(cold_compiled, warm_compiled, "compiled: warm core vs cold");
    let submit_a = ca
        .request_line(&Json::obj(vec![
            ("op", Json::str("submit")),
            ("source", Json::str(SRC)),
        ]))
        .unwrap();
    a.stop();

    // Server B: a fresh process-state compile of the same program must
    // answer with the same bytes (modulo the `cached` flag, so compare
    // the runs — and the verdicts via a doc-less verify on both).
    let b = boot(2);
    let mut cb = Client::connect(b.addr).expect("connect");
    assert_eq!(submit_hash(&mut cb, SRC), hash, "content hash is stable");
    assert_eq!(
        cold_interp,
        cb.request_line(&run_req(hash, "interp")).unwrap(),
        "interp run across server instances"
    );
    assert_eq!(
        cold_compiled,
        cb.request_line(&run_req(hash, "compiled")).unwrap(),
        "compiled run across server instances"
    );
    let submit_b = cb
        .request_line(&Json::obj(vec![
            ("op", Json::str("submit")),
            ("source", Json::str(SRC)),
        ]))
        .unwrap();
    assert_eq!(
        submit_a, submit_b,
        "resubmission (cached=true on both) byte-identical across servers"
    );
    b.stop();
}

#[test]
fn busy_server_replies_with_backpressure_error_shape() {
    // max_inflight is a concurrency bound, hard to hit deterministically
    // from one client; instead check the documented reply shape via a
    // bound of: requests racing from many threads must each get either
    // a real answer or the one-line busy error, never a hang or close.
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 2,
        max_programs: 8,
        max_inflight: 1,
    })
    .expect("bind");
    let addr = handle.addr;
    let threads: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let resp = c
                    .request(&Json::obj(vec![
                        ("op", Json::str("verify")),
                        ("id", Json::u64(i)),
                        ("source", Json::str(SRC)),
                    ]))
                    .expect("a reply, busy or not");
                assert_eq!(resp.get("id").and_then(Json::as_u64), Some(i));
                match resp.get("ok").and_then(Json::as_bool) {
                    Some(true) => assert!(resp.get("verdict").is_some()),
                    Some(false) => {
                        let err = resp.get("error").and_then(Json::as_str).unwrap();
                        assert!(err.contains("server busy"), "{err}");
                        assert!(err.contains("retry"), "{err}");
                    }
                    None => panic!("reply without ok member: {resp:?}"),
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    handle.stop();
}

#[test]
fn self_test_passes_end_to_end() {
    let report = ocelot_serve::self_test().expect("self test");
    assert!(report.contains("self-test passed"), "{report}");
    assert!(report.contains("p50"), "{report}");
}
