//! The TCP server and its in-process client.
//!
//! Hand-rolled on `std::net` only: a nonblocking accept loop on its own
//! thread, one handler thread per connection, and one
//! `Mutex<ServerState>` guarding the caches — request *handling* is
//! serialized (which is what makes responses deterministic), while a
//! `sweep`'s simulations still fan out over the work-stealing pool
//! inside the handler. Backpressure is a bounded in-flight counter:
//! past the bound a request is answered `server busy` immediately
//! instead of queueing without limit.

use crate::protocol::{handle_request, Outcome, ServerState};
use ocelot_bench::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration (CLI flags of `ocelotc serve`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads for `sweep` fan-out.
    pub jobs: usize,
    /// Program-cache capacity (submissions past it are refused).
    pub max_programs: usize,
    /// Requests processed concurrently before `server busy` replies.
    pub max_inflight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7433".into(),
            jobs: ocelot_bench::pool::default_jobs(),
            max_programs: 64,
            max_inflight: 32,
        }
    }
}

/// A running server: its bound address and shutdown handle.
pub struct ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
}

impl ServerHandle {
    /// Asks the accept loop to stop and waits for it (connection
    /// handlers exit when their streams close).
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.accept_thread.join();
    }

    /// Blocks until the server stops (a client sent `shutdown`).
    pub fn wait(self) {
        let _ = self.accept_thread.join();
    }
}

/// Binds and starts a server in background threads, returning once the
/// listener is accepting.
///
/// # Errors
///
/// I/O errors from binding the listener.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let state = Arc::new(Mutex::new(ServerState::new(
        config.jobs,
        config.max_programs,
    )));
    let inflight = Arc::new(AtomicUsize::new(0));
    let max_inflight = config.max_inflight.max(1);

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&state);
                    let stop = Arc::clone(&accept_stop);
                    let inflight = Arc::clone(&inflight);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &state, &stop, &inflight, max_inflight);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
    });

    Ok(ServerHandle {
        addr,
        stop,
        accept_thread,
    })
}

/// One connection: read request lines, write response lines, until EOF
/// or server shutdown.
///
/// Reads carry a short timeout so an idle connection re-checks the stop
/// flag instead of blocking forever — without it, `ServerHandle::stop`
/// would deadlock joining a handler that is parked in a read on a
/// still-open client.
fn handle_connection(
    stream: TcpStream,
    state: &Mutex<ServerState>,
    stop: &AtomicBool,
    inflight: &AtomicUsize,
    max_inflight: usize,
) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // The partial line accumulated so far: a timeout can fire mid-line,
    // and `read_line` keeps whatever it already consumed in the buffer.
    let mut line = String::new();
    while !stop.load(Ordering::SeqCst) {
        match reader.read_line(&mut line) {
            Ok(0) => break,                          // EOF
            Ok(_) if !line.ends_with('\n') => break, // EOF without newline: drop the fragment
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
        let request = std::mem::take(&mut line);
        if request.trim().is_empty() {
            continue;
        }
        let resp = respond(&request, state, stop, inflight, max_inflight);
        let text = resp.render_compact().unwrap_or_else(|e| {
            // Unreachable for the timing-free integer/string payloads
            // the protocol emits, but never kill the connection over it.
            format!("{{\"ok\": false, \"error\": \"render: {e}\"}}")
        });
        if writer.write_all(text.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            break;
        }
        let _ = writer.flush();
    }
}

/// Parses and dispatches one request line under the in-flight bound.
fn respond(
    line: &str,
    state: &Mutex<ServerState>,
    stop: &AtomicBool,
    inflight: &AtomicUsize,
    max_inflight: usize,
) -> Json {
    let req = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::str(&format!("bad request line: {e}"))),
            ]);
        }
    };
    if inflight.fetch_add(1, Ordering::SeqCst) >= max_inflight {
        inflight.fetch_sub(1, Ordering::SeqCst);
        let mut pairs = Vec::new();
        if let Some(id) = req.get("id") {
            pairs.push(("id", id.clone()));
        }
        pairs.push(("ok", Json::Bool(false)));
        pairs.push((
            "error",
            Json::str(&format!(
                "server busy ({max_inflight} requests in flight): retry"
            )),
        ));
        return Json::obj(pairs);
    }
    let (resp, outcome) = {
        let mut guard = state.lock().expect("server state poisoned");
        handle_request(&mut guard, &req)
    };
    inflight.fetch_sub(1, Ordering::SeqCst);
    if outcome == Outcome::Shutdown {
        stop.store(true, Ordering::SeqCst);
    }
    resp
}

/// A line-delimited JSON client for one server connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// I/O errors from connecting.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request object and returns the raw response line —
    /// the bytes the byte-identity suites compare.
    ///
    /// # Errors
    ///
    /// One-line messages for I/O failures or a closed connection.
    pub fn request_line(&mut self, req: &Json) -> Result<String, String> {
        let text = req.render_compact().map_err(|e| format!("render: {e}"))?;
        self.writer
            .write_all(text.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".to_string()),
            Ok(_) => Ok(line.trim_end_matches('\n').to_string()),
            Err(e) => Err(format!("receive: {e}")),
        }
    }

    /// Sends one request and parses the response object.
    ///
    /// # Errors
    ///
    /// I/O failures, or a response that is not valid JSON.
    pub fn request(&mut self, req: &Json) -> Result<Json, String> {
        let line = self.request_line(req)?;
        json::parse(&line).map_err(|e| format!("bad response: {e}"))
    }
}
