//! The request protocol: line-delimited JSON objects in, line-delimited
//! JSON objects out.
//!
//! Every request is one object with an `"op"` member; every response is
//! one object with `"ok"` (and the request's `"id"` echoed verbatim
//! when present). Responses are **timing-free by design**: the same
//! request against the same server state serializes to identical bytes
//! whatever the worker count, whether the answer came from a cold
//! compile or a warm cache, and on either execution backend — latency
//! is the *client's* observation (the edit-trace driver measures it),
//! never part of the payload.
//!
//! | op | request members | response members |
//! |---|---|---|
//! | `ping` | — | `pong` |
//! | `submit` | `source` | `program`, `cached`, `verdict` |
//! | `verify` | `source`, `doc`? | `verdict`, `funcs`, `analyzed`, `reused` |
//! | `run` | `program`, `scenario`, `runs`?, `seed`?, `backend`?, `opt`? | `scenario`, `stats` |
//! | `sweep` | `program`, `scenarios`, `runs`?, `backend`?, `opt`? | `cells` |
//! | `lint` | `source`, `window_us`?, `capacity_nj`? | `program`, `cached`, `report` (`ocelot-lint-report` JSON, see `docs/lint.md`) |
//! | `stats` | — | `programs`, `cores`, `docs`, `cached_funcs`, `requests`, then per-cache hit/miss counters in pinned order |
//! | `metrics` | — | `metrics` (the process-wide telemetry snapshot) |
//! | `shutdown` | — | `stopping` |
//!
//! `stats` counters are **per-server-instance** plain integers
//! (deterministic, counted whether or not telemetry is enabled);
//! `metrics` exposes the process-wide [`ocelot_telemetry`] registry,
//! whose counters only advance while `--metrics` is on and which is
//! shared by every server in the process.
//!
//! `verify` with a `doc` name re-verifies incrementally against that
//! document's per-function flow cache (see
//! `ocelot_analysis::incremental`); without one it verifies from
//! scratch. `run`/`sweep` accept scenario specs (`name` or `name@seed`)
//! and report the machine's violation/mitigation statistics.

use crate::cache::ProgramCache;
use ocelot_bench::artifact::stats_to_json;
use ocelot_bench::harness::MAX_STEPS;
use ocelot_bench::json::Json;
use ocelot_bench::pool::{run_jobs, Job};
use ocelot_bench::verify::{full_verify, program_hash, Session};
use ocelot_runtime::machine::{DeviceState, Machine, MachineCore};
use ocelot_runtime::{ExecBackend, OptLevel};
use std::collections::HashMap;
use std::sync::Arc;

/// Default complete-run count for `run`/`sweep` cells.
const DEFAULT_RUNS: u64 = 3;

/// Mutable server state shared by every connection.
pub struct ServerState {
    /// Worker threads `sweep` shards onto.
    pub jobs: usize,
    /// The program-hash-keyed artifact cache.
    pub cache: ProgramCache,
    /// Incremental verification documents, by client-chosen name.
    pub docs: HashMap<String, Session>,
    /// Cached lint reports, keyed by (program hash, window, capacity
    /// bits) — a report is a pure function of those three, so a repeat
    /// request with the same knobs answers without re-analysis.
    pub lints: HashMap<(u64, Option<u64>, Option<u64>), Json>,
    /// Requests handled so far (any op, including failed ones).
    pub requests: u64,
    /// `verify` requests that named an already-open document.
    pub docs_hits: u64,
    /// `verify` requests that opened a fresh document.
    pub docs_misses: u64,
    /// `lint` requests answered from the report cache.
    pub lints_hits: u64,
    /// `lint` requests that ran the passes fresh.
    pub lints_misses: u64,
}

impl ServerState {
    /// Fresh state for a server with `jobs` workers and a program cache
    /// capped at `max_programs`.
    pub fn new(jobs: usize, max_programs: usize) -> Self {
        ServerState {
            jobs: jobs.max(1),
            cache: ProgramCache::new(max_programs),
            docs: HashMap::new(),
            lints: HashMap::new(),
            requests: 0,
            docs_hits: 0,
            docs_misses: 0,
            lints_hits: 0,
            lints_misses: 0,
        }
    }
}

/// What the connection loop should do after a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Keep the connection (and server) going.
    Continue,
    /// The client asked the whole server to stop.
    Shutdown,
}

/// Handles one parsed request line against the shared state, returning
/// the response object and whether to shut the server down.
pub fn handle_request(state: &mut ServerState, req: &Json) -> (Json, Outcome) {
    let _span = ocelot_telemetry::span!("serve.request", "serve");
    ocelot_telemetry::metrics::SERVE_REQUESTS.incr();
    // Latency lands only in the telemetry histogram (never the
    // response), so the clock itself is gated with the metrics bit.
    let t0 = ocelot_telemetry::metrics_on().then(std::time::Instant::now);
    state.requests += 1;
    let mut outcome = Outcome::Continue;
    let result = match req.get("op").and_then(Json::as_str) {
        None => Err("request has no `op` member".to_string()),
        Some("ping") => Ok(vec![("pong", Json::Bool(true))]),
        Some("submit") => op_submit(state, req),
        Some("verify") => op_verify(state, req),
        Some("run") => op_run(state, req),
        Some("sweep") => op_sweep(state, req),
        Some("lint") => op_lint(state, req),
        Some("stats") => op_stats(state),
        Some("metrics") => op_metrics(),
        Some("shutdown") => {
            outcome = Outcome::Shutdown;
            Ok(vec![("stopping", Json::Bool(true))])
        }
        Some(op) => Err(format!(
            "unknown op `{op}` (known: ping, submit, verify, run, sweep, lint, stats, metrics, \
             shutdown)"
        )),
    };
    if let Some(t0) = t0 {
        ocelot_telemetry::metrics::SERVE_REQUEST_NS.record(t0.elapsed().as_nanos() as u64);
    }
    let mut pairs = Vec::new();
    if let Some(id) = req.get("id") {
        pairs.push(("id", id.clone()));
    }
    match result {
        Ok(mut members) => {
            pairs.push(("ok", Json::Bool(true)));
            pairs.append(&mut members);
        }
        Err(e) => {
            pairs.push(("ok", Json::Bool(false)));
            pairs.push(("error", Json::str(&e)));
        }
    }
    (Json::obj(pairs), outcome)
}

type OpResult = Result<Vec<(&'static str, Json)>, String>;

fn req_str<'a>(req: &'a Json, key: &str) -> Result<&'a str, String> {
    req.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("request needs a string `{key}` member"))
}

fn op_submit(state: &mut ServerState, req: &Json) -> OpResult {
    let src = req_str(req, "source")?;
    let (hash, cached) = state.cache.submit(src)?;
    let verdict = state
        .cache
        .entry(hash)
        .expect("just inserted")
        .verdict
        .clone();
    Ok(vec![
        ("program", Json::u64(hash)),
        ("cached", Json::Bool(cached)),
        ("verdict", verdict.to_json()),
    ])
}

fn op_verify(state: &mut ServerState, req: &Json) -> OpResult {
    let src = req_str(req, "source")?;
    let (verdict, funcs, analyzed, reused) = match req.get("doc").and_then(Json::as_str) {
        Some(doc) => {
            if state.docs.contains_key(doc) {
                state.docs_hits += 1;
                ocelot_telemetry::metrics::SERVE_DOCS_HIT.incr();
            } else {
                state.docs_misses += 1;
                ocelot_telemetry::metrics::SERVE_DOCS_MISS.incr();
            }
            let session = state.docs.entry(doc.to_string()).or_default();
            let (_, v, stats) = session.verify(src)?;
            (v, stats.funcs, stats.analyzed, stats.reused)
        }
        None => {
            let (_, v) = full_verify(src)?;
            let funcs = v.funcs;
            (v, funcs, funcs, 0)
        }
    };
    Ok(vec![
        ("verdict", verdict.to_json()),
        ("funcs", Json::u64(funcs as u64)),
        ("analyzed", Json::u64(analyzed as u64)),
        ("reused", Json::u64(reused as u64)),
    ])
}

/// Resolves the run-shaping members shared by `run` and `sweep`.
fn run_shape(req: &Json) -> Result<(u64, ExecBackend, OptLevel), String> {
    let runs = req
        .get("runs")
        .and_then(Json::as_u64)
        .unwrap_or(DEFAULT_RUNS);
    let backend = match req.get("backend").and_then(Json::as_str) {
        None => ExecBackend::Interp,
        Some("interp") => ExecBackend::Interp,
        Some("compiled") => ExecBackend::Compiled,
        Some(b) => return Err(format!("unknown backend `{b}` (known: interp, compiled)")),
    };
    let opt = match req.get("opt") {
        None => OptLevel::default(),
        Some(v) => {
            let n = v.as_u64().ok_or("`opt` must be an integer")?;
            OptLevel::parse(&n.to_string())
                .ok_or_else(|| format!("invalid opt level {n} (accepted: 0, 1, 2)"))?
        }
    };
    Ok((runs, backend, opt))
}

/// Simulates one scenario cell on a shared core and packs its cell
/// object. Violation/mitigation statistics come from the machine's
/// detectors — the enforcement half of the server's answer.
fn simulate_cell(
    core: Arc<MachineCore<'static>>,
    spec: &str,
    seed: Option<u64>,
    runs: u64,
    backend: ExecBackend,
    opt: OptLevel,
) -> Result<Json, String> {
    let mut sc = ocelot_scenario::parse(spec)?;
    if let Some(s) = seed {
        sc = sc.reseeded(s);
    }
    let mut m = Machine::from_core(core, DeviceState::default(), sc.environment(), sc.supply())
        .with_backend(backend)
        .with_opt(opt);
    for _ in 0..runs {
        // Harsh regimes may starve a run; no completion assertion, the
        // same rule the per-cell harness and fleet use.
        m.run_once(MAX_STEPS);
    }
    Ok(Json::obj(vec![
        ("scenario", Json::str(spec)),
        ("runs", Json::u64(runs)),
        ("stats", stats_to_json(m.stats())),
    ]))
}

fn op_run(state: &mut ServerState, req: &Json) -> OpResult {
    let hash = req
        .get("program")
        .and_then(Json::as_u64)
        .ok_or("request needs a `program` hash member (from submit)")?;
    let spec = req_str(req, "scenario")?;
    let seed = req.get("seed").and_then(Json::as_u64);
    let (runs, backend, opt) = run_shape(req)?;
    let sc = ocelot_scenario::parse(spec)?;
    let core = state.cache.core(hash, &sc)?;
    let cell = simulate_cell(core, spec, seed, runs, backend, opt)?;
    let stats = cell.get("stats").expect("cell has stats").clone();
    Ok(vec![("scenario", Json::str(spec)), ("stats", stats)])
}

fn op_sweep(state: &mut ServerState, req: &Json) -> OpResult {
    let hash = req
        .get("program")
        .and_then(Json::as_u64)
        .ok_or("request needs a `program` hash member (from submit)")?;
    let specs: Vec<String> = req
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("request needs a `scenarios` array member")?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "scenario specs must be strings".to_string())
        })
        .collect::<Result<_, _>>()?;
    if specs.is_empty() {
        return Err("a sweep needs at least one scenario".to_string());
    }
    let (runs, backend, opt) = run_shape(req)?;
    // Resolve every core up front (serially — cores memoize in the
    // cache), then shard the simulations onto the pool. `run_jobs`
    // returns results in job order, so the response is deterministic at
    // any worker count.
    let mut prepared = Vec::with_capacity(specs.len());
    for spec in &specs {
        let sc = ocelot_scenario::parse(spec)?;
        prepared.push((spec.as_str(), state.cache.core(hash, &sc)?));
    }
    let work: Vec<Job<'_, Result<Json, String>>> = prepared
        .into_iter()
        .map(|(spec, core)| {
            Box::new(move || simulate_cell(core, spec, None, runs, backend, opt))
                as Job<'_, Result<Json, String>>
        })
        .collect();
    let cells = run_jobs(work, state.jobs)
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    Ok(vec![("cells", Json::Arr(cells))])
}

/// The `lint` op: run the static feasibility passes over `source` and
/// answer the `ocelot-lint-report` document (`docs/lint.md`). Reports
/// are cached by (program hash, `window_us`, `capacity_nj`): the report
/// is a pure function of program and knobs, and normalization makes it
/// byte-stable, so the cached answer is indistinguishable from a fresh
/// one — the same timing-free contract every other op keeps.
fn op_lint(state: &mut ServerState, req: &Json) -> OpResult {
    let src = req_str(req, "source")?;
    let window = match req.get("window_us") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("`window_us` must be a non-negative integer")?,
        ),
    };
    let capacity = match req.get("capacity_nj") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_f64() {
            Some(c) if c > 0.0 => Some(c),
            _ => return Err("`capacity_nj` must be a positive number".to_string()),
        },
    };
    let p = ocelot_ir::compile(src).map_err(|e| format!("compile: {e}"))?;
    let hash = program_hash(&p);
    let key = (hash, window, capacity.map(f64::to_bits));
    if let Some(report) = state.lints.get(&key) {
        state.lints_hits += 1;
        ocelot_telemetry::metrics::SERVE_LINTS_HIT.incr();
        return Ok(vec![
            ("program", Json::u64(hash)),
            ("cached", Json::Bool(true)),
            ("report", report.clone()),
        ]);
    }
    let opts = ocelot_lint::LintOptions {
        window_us: window,
        capacity_nj: capacity,
        ..ocelot_lint::LintOptions::default()
    };
    let report = ocelot_lint::lint_source(src, &opts).map_err(|e| format!("lint: {e}"))?;
    let json = ocelot_bench::lintfmt::to_json(&report);
    state.lints.insert(key, json.clone());
    state.lints_misses += 1;
    ocelot_telemetry::metrics::SERVE_LINTS_MISS.incr();
    Ok(vec![
        ("program", Json::u64(hash)),
        ("cached", Json::Bool(false)),
        ("report", json),
    ])
}

/// The `stats` response. Field order is part of the wire contract
/// (pinned by `stats_field_order_is_pinned`): size counters first, then
/// the per-instance hit/miss pairs per caching layer, hits before
/// misses. All values are plain per-instance integers — byte-stable
/// across server instances and telemetry modes.
fn op_stats(state: &ServerState) -> OpResult {
    let (programs, cores) = state.cache.counts();
    let cached_funcs: usize = state.docs.values().map(Session::cached_funcs).sum();
    let c = state.cache.counters();
    Ok(vec![
        ("programs", Json::u64(programs as u64)),
        ("cores", Json::u64(cores as u64)),
        ("docs", Json::u64(state.docs.len() as u64)),
        ("cached_funcs", Json::u64(cached_funcs as u64)),
        ("requests", Json::u64(state.requests)),
        ("programs_hits", Json::u64(c.programs_hits)),
        ("programs_misses", Json::u64(c.programs_misses)),
        ("cores_hits", Json::u64(c.cores_hits)),
        ("cores_misses", Json::u64(c.cores_misses)),
        ("docs_hits", Json::u64(state.docs_hits)),
        ("docs_misses", Json::u64(state.docs_misses)),
        ("lints_hits", Json::u64(state.lints_hits)),
        ("lints_misses", Json::u64(state.lints_misses)),
    ])
}

/// The `metrics` response: the process-wide telemetry snapshot as one
/// object, keys in the registry's sorted order. Unlike `stats`, this is
/// shared by every server in the process and advances only while
/// metrics collection is enabled.
fn op_metrics() -> OpResult {
    let rows = ocelot_telemetry::metrics::snapshot()
        .into_iter()
        .map(|(name, v)| (name, Json::u64(v)))
        .collect();
    Ok(vec![("metrics", Json::obj(rows))])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "sensor s; fn main() { let x = in(s); fresh(x); out(log, x); }";

    fn state() -> ServerState {
        ServerState::new(2, 8)
    }

    fn ok(resp: &Json) -> bool {
        resp.get("ok").and_then(Json::as_bool) == Some(true)
    }

    #[test]
    fn ping_echoes_the_request_id() {
        let mut s = state();
        let (resp, out) = handle_request(
            &mut s,
            &Json::obj(vec![("op", Json::str("ping")), ("id", Json::u64(7))]),
        );
        assert_eq!(out, Outcome::Continue);
        assert!(ok(&resp));
        assert_eq!(resp.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(resp.get("pong").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn submit_then_run_uses_the_cached_core() {
        let mut s = state();
        let (resp, _) = handle_request(
            &mut s,
            &Json::obj(vec![
                ("op", Json::str("submit")),
                ("source", Json::str(SRC)),
            ]),
        );
        assert!(ok(&resp), "{resp:?}");
        let hash = resp.get("program").and_then(Json::as_u64).unwrap();
        let (run1, _) = handle_request(
            &mut s,
            &Json::obj(vec![
                ("op", Json::str("run")),
                ("program", Json::u64(hash)),
                ("scenario", Json::str("rf-lab")),
                ("runs", Json::u64(2)),
            ]),
        );
        assert!(ok(&run1), "{run1:?}");
        assert!(run1.get("stats").is_some());
        // Second run reuses the memoized core and answers identically.
        let (run2, _) = handle_request(
            &mut s,
            &Json::obj(vec![
                ("op", Json::str("run")),
                ("program", Json::u64(hash)),
                ("scenario", Json::str("rf-lab")),
                ("runs", Json::u64(2)),
            ]),
        );
        assert_eq!(run1.render().unwrap(), run2.render().unwrap());
        let (st, _) = handle_request(&mut s, &Json::obj(vec![("op", Json::str("stats"))]));
        assert_eq!(st.get("programs").and_then(Json::as_u64), Some(1));
        assert_eq!(st.get("cores").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn lint_answers_a_cached_byte_stable_report() {
        let mut s = state();
        // A window no path can meet: the report must carry an OC001
        // error with spans.
        let src = "sensor s; fn main() { let x = in(s); fresh(x); out(log, x); out(alarm, x); }";
        let req = Json::obj(vec![
            ("op", Json::str("lint")),
            ("source", Json::str(src)),
            ("window_us", Json::u64(10)),
        ]);
        let (r1, _) = handle_request(&mut s, &req);
        assert!(ok(&r1), "{r1:?}");
        assert_eq!(r1.get("cached").and_then(Json::as_bool), Some(false));
        let report = r1.get("report").expect("report member");
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some("ocelot-lint-report")
        );
        assert_eq!(report.get("errors").and_then(Json::as_u64), Some(1));
        // Second identical request: answered from the cache, byte-stable.
        let (r2, _) = handle_request(&mut s, &req);
        assert_eq!(r2.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            r1.get("report").unwrap().render().unwrap(),
            r2.get("report").unwrap().render().unwrap()
        );
        // Different knobs are a different cache key — and a generous
        // window drops the error.
        let (r3, _) = handle_request(
            &mut s,
            &Json::obj(vec![
                ("op", Json::str("lint")),
                ("source", Json::str(src)),
                ("window_us", Json::u64(1_000_000)),
            ]),
        );
        assert_eq!(r3.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(
            r3.get("report")
                .and_then(|r| r.get("errors"))
                .and_then(Json::as_u64),
            Some(0)
        );
        let (st, _) = handle_request(&mut s, &Json::obj(vec![("op", Json::str("stats"))]));
        assert_eq!(st.get("lints_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(st.get("lints_misses").and_then(Json::as_u64), Some(2));
        // A compile failure is an op error, not a report.
        let (bad, _) = handle_request(
            &mut s,
            &Json::obj(vec![
                ("op", Json::str("lint")),
                ("source", Json::str("fn main( {")),
            ]),
        );
        assert!(!ok(&bad));
    }

    #[test]
    fn verify_with_a_doc_is_incremental_across_requests() {
        let mut s = state();
        let req = |src: &str| {
            Json::obj(vec![
                ("op", Json::str("verify")),
                ("doc", Json::str("d1")),
                ("source", Json::str(src)),
            ])
        };
        let (r1, _) = handle_request(&mut s, &req(SRC));
        assert!(ok(&r1), "{r1:?}");
        assert_eq!(r1.get("reused").and_then(Json::as_u64), Some(0));
        let (r2, _) = handle_request(&mut s, &req(SRC));
        assert_eq!(r2.get("analyzed").and_then(Json::as_u64), Some(0));
        assert_eq!(
            r1.get("verdict").unwrap().render().unwrap(),
            r2.get("verdict").unwrap().render().unwrap(),
            "cached verdict byte-identical"
        );
        // Doc-less verify of the same source: same verdict bytes.
        let (r3, _) = handle_request(
            &mut s,
            &Json::obj(vec![
                ("op", Json::str("verify")),
                ("source", Json::str(SRC)),
            ]),
        );
        assert_eq!(
            r1.get("verdict").unwrap().render().unwrap(),
            r3.get("verdict").unwrap().render().unwrap()
        );
    }

    #[test]
    fn sweep_is_deterministic_in_request_order() {
        let mut s = state();
        let (resp, _) = handle_request(
            &mut s,
            &Json::obj(vec![
                ("op", Json::str("submit")),
                ("source", Json::str(SRC)),
            ]),
        );
        let hash = resp.get("program").and_then(Json::as_u64).unwrap();
        let sweep = Json::obj(vec![
            ("op", Json::str("sweep")),
            ("program", Json::u64(hash)),
            (
                "scenarios",
                Json::Arr(vec![
                    Json::str("rf-lab"),
                    Json::str("office-day"),
                    Json::str("rf-lab@9"),
                ]),
            ),
            ("runs", Json::u64(1)),
        ]);
        let (a, _) = handle_request(&mut s, &sweep);
        assert!(ok(&a), "{a:?}");
        let cells = a.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 3);
        assert_eq!(
            cells[1].get("scenario").and_then(Json::as_str),
            Some("office-day")
        );
        // Same sweep at a different worker count: identical bytes.
        s.jobs = 8;
        let (b, _) = handle_request(&mut s, &sweep);
        assert_eq!(a.render().unwrap(), b.render().unwrap());
    }

    #[test]
    fn stats_field_order_is_pinned_and_byte_stable_across_instances() {
        // Two servers, same request sequence: the stats line must be
        // byte-identical (per-instance counters, no process globals),
        // and the field order is part of the wire contract.
        let script = |s: &mut ServerState| {
            let (sub, _) = handle_request(
                s,
                &Json::obj(vec![
                    ("op", Json::str("submit")),
                    ("source", Json::str(SRC)),
                ]),
            );
            let hash = sub.get("program").and_then(Json::as_u64).unwrap();
            for _ in 0..2 {
                handle_request(
                    s,
                    &Json::obj(vec![
                        ("op", Json::str("run")),
                        ("program", Json::u64(hash)),
                        ("scenario", Json::str("rf-lab")),
                        ("runs", Json::u64(1)),
                    ]),
                );
                handle_request(
                    s,
                    &Json::obj(vec![
                        ("op", Json::str("verify")),
                        ("doc", Json::str("d")),
                        ("source", Json::str(SRC)),
                    ]),
                );
            }
            let (st, _) = handle_request(s, &Json::obj(vec![("op", Json::str("stats"))]));
            st.render_compact().unwrap()
        };
        let a = script(&mut state());
        let b = script(&mut state());
        assert_eq!(a, b, "stats bytes differ across instances");
        // Pin the exact field order (and the counter values the script
        // implies: 1 program miss, 1 core miss + 1 hit, 1 doc miss + 1
        // hit).
        let order = [
            "programs",
            "cores",
            "docs",
            "cached_funcs",
            "requests",
            "programs_hits",
            "programs_misses",
            "cores_hits",
            "cores_misses",
            "docs_hits",
            "docs_misses",
        ];
        let mut last = 0;
        for key in order {
            let at = a
                .find(&format!("\"{key}\""))
                .unwrap_or_else(|| panic!("stats response lacks `{key}`: {a}"));
            assert!(at > last, "`{key}` out of order in {a}");
            last = at;
        }
        let st = ocelot_bench::json::parse(&a).unwrap();
        let field = |k: &str| st.get(k).and_then(Json::as_u64).unwrap();
        assert_eq!(field("programs_hits"), 0);
        assert_eq!(field("programs_misses"), 1);
        assert_eq!(field("cores_hits"), 1);
        assert_eq!(field("cores_misses"), 1);
        assert_eq!(field("docs_hits"), 1);
        assert_eq!(field("docs_misses"), 1);
        assert_eq!(field("requests"), 6, "stats itself is the 6th request");
    }

    #[test]
    fn metrics_op_returns_the_sorted_global_snapshot() {
        let mut s = state();
        let (resp, out) = handle_request(&mut s, &Json::obj(vec![("op", Json::str("metrics"))]));
        assert_eq!(out, Outcome::Continue);
        assert!(ok(&resp), "{resp:?}");
        let snap = resp.get("metrics").expect("metrics object");
        // Every registry row is present, in sorted key order.
        let Json::Obj(pairs) = snap else {
            panic!("metrics member is not an object: {snap:?}")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "snapshot keys not sorted");
        assert!(keys.contains(&"serve.requests"), "{keys:?}");
        assert!(keys.contains(&"serve.cache.programs.hits"), "{keys:?}");
        assert!(keys.contains(&"serve.request_ns.p99"), "{keys:?}");
    }

    #[test]
    fn errors_are_flagged_not_panics() {
        let mut s = state();
        for req in [
            Json::obj(vec![("op", Json::str("nope"))]),
            Json::obj(vec![
                ("op", Json::str("verify")),
                ("source", Json::str("fn (")),
            ]),
            Json::obj(vec![
                ("op", Json::str("run")),
                ("program", Json::u64(1)),
                ("scenario", Json::str("rf-lab")),
            ]),
            Json::obj(vec![("op", Json::str("submit"))]),
            Json::Null,
        ] {
            let (resp, out) = handle_request(&mut s, &req);
            assert_eq!(out, Outcome::Continue);
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
            assert!(resp.get("error").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn shutdown_reports_and_stops() {
        let mut s = state();
        let (resp, out) = handle_request(&mut s, &Json::obj(vec![("op", Json::str("shutdown"))]));
        assert_eq!(out, Outcome::Shutdown);
        assert!(ok(&resp));
    }
}
