//! # ocelot-serve
//!
//! The always-on enforcement service: a long-running server that keeps
//! compiled programs, analysis results, and per-scenario
//! [`ocelot_runtime::machine::MachineCore`]s resident between requests,
//! so interactive clients (editors, CI bots, fleet dashboards) get
//! sub-rebuild answers. Clients speak line-delimited JSON over TCP
//! (see [`protocol`] for the op table): submit a program once, then
//! verify edits incrementally, run scenario cells, or sweep scenario
//! lists that fan out over the work-stealing pool.
//!
//! Three caching layers, all keyed by content:
//!
//! * **program hash → leaked [`ocelot_runtime::model::Built`]** — the
//!   transform runs once per distinct program ([`cache`]);
//! * **(program, scenario name) → shared `MachineCore`** — compiled
//!   blocks, chain tables, and frame layouts built once and shared by
//!   every run/sweep against that scenario (the PR-6 fleet sharing
//!   unit);
//! * **document → per-function flow cache** — `verify` requests naming
//!   a `doc` re-verify incrementally: only functions whose body
//!   fingerprint changed are re-analyzed
//!   ([`ocelot_analysis::incremental`]), which is what makes a one-line
//!   edit orders of magnitude cheaper than a full re-analysis.
//!
//! Responses carry no timing, so they are byte-identical across worker
//! counts, warm/cold caches, and execution backends — held by the
//! determinism tests in `tests/`. The entry point is `ocelotc serve`;
//! [`self_test`] is the end-to-end smoke CI runs.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod protocol;
pub mod server;

pub use cache::ProgramCache;
pub use protocol::{handle_request, Outcome, ServerState};
pub use server::{serve, Client, ServeConfig, ServerHandle};

use ocelot_bench::json::Json;
use ocelot_bench::verify::{edited_source, percentile, workload_source, EditTrace};

/// End-to-end smoke: boots a server on an ephemeral port, replays a
/// small edit-trace workload through a real TCP client (verify with a
/// `doc`, submit, run, sweep, stats), checks every response, and shuts
/// the server down cleanly. Returns a human-readable report including
/// the client-observed p50/p99 re-verify latency.
///
/// # Errors
///
/// A one-line message naming the first failing step.
pub fn self_test() -> Result<String, String> {
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 2,
        max_programs: 8,
        max_inflight: 8,
    })
    .map_err(|e| format!("bind: {e}"))?;
    let result = self_test_against(handle.addr);
    // The shutdown op already stopped the accept loop; stop() is then
    // idempotent and joins the threads.
    handle.stop();
    result
}

fn self_test_against(addr: std::net::SocketAddr) -> Result<String, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let expect_ok = |resp: &Json, step: &str| -> Result<(), String> {
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(())
        } else {
            Err(format!("{step}: {resp:?}"))
        }
    };

    let pong = client.request(&Json::obj(vec![("op", Json::str("ping"))]))?;
    expect_ok(&pong, "ping")?;

    // Replay a small edit trace through an incremental document,
    // measuring client-observed re-verify latency.
    let trace = EditTrace {
        funcs: 12,
        edits: 6,
        seed: 7,
    };
    let verify = |client: &mut Client, src: &str| {
        client.request(&Json::obj(vec![
            ("op", Json::str("verify")),
            ("doc", Json::str("self-test")),
            ("source", Json::str(src)),
        ]))
    };
    let base = workload_source(&trace);
    expect_ok(&verify(&mut client, &base)?, "verify base")?;
    let mut latencies_ns = Vec::new();
    for n in 1..=trace.edits {
        let src = edited_source(&trace, n);
        let t0 = std::time::Instant::now();
        let resp = verify(&mut client, &src)?;
        latencies_ns.push(t0.elapsed().as_nanos() as u64);
        expect_ok(&resp, "verify edit")?;
        let analyzed = resp.get("analyzed").and_then(Json::as_u64).unwrap_or(99);
        if analyzed > 2 {
            return Err(format!(
                "edit {n} re-analyzed {analyzed} functions (expected the edited worker + main)"
            ));
        }
    }
    latencies_ns.sort_unstable();

    // Submit + run + sweep against cached cores.
    let sub = client.request(&Json::obj(vec![
        ("op", Json::str("submit")),
        ("source", Json::str(&base)),
    ]))?;
    expect_ok(&sub, "submit")?;
    let hash = sub
        .get("program")
        .and_then(Json::as_u64)
        .ok_or("submit response has no program hash")?;
    let run = client.request(&Json::obj(vec![
        ("op", Json::str("run")),
        ("program", Json::u64(hash)),
        ("scenario", Json::str("rf-lab")),
        ("runs", Json::u64(1)),
    ]))?;
    expect_ok(&run, "run")?;
    let sweep = client.request(&Json::obj(vec![
        ("op", Json::str("sweep")),
        ("program", Json::u64(hash)),
        (
            "scenarios",
            Json::Arr(vec![Json::str("rf-lab"), Json::str("office-day")]),
        ),
        ("runs", Json::u64(1)),
    ]))?;
    expect_ok(&sweep, "sweep")?;
    let stats = client.request(&Json::obj(vec![("op", Json::str("stats"))]))?;
    expect_ok(&stats, "stats")?;
    for key in ["programs_hits", "cores_hits", "docs_hits"] {
        if stats.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("stats response lacks `{key}`: {stats:?}"));
        }
    }
    let metrics = client.request(&Json::obj(vec![("op", Json::str("metrics"))]))?;
    expect_ok(&metrics, "metrics")?;
    if metrics
        .get("metrics")
        .and_then(|m| m.get("serve.requests"))
        .is_none()
    {
        return Err(format!("metrics response lacks the snapshot: {metrics:?}"));
    }
    let down = client.request(&Json::obj(vec![("op", Json::str("shutdown"))]))?;
    expect_ok(&down, "shutdown")?;

    Ok(format!(
        "serve self-test passed: {} edits re-verified incrementally over TCP\n\
         re-verify latency: p50 {:.3} ms, p99 {:.3} ms\n\
         programs cached: {}, cores built: {}, clean shutdown\n",
        trace.edits,
        percentile(&latencies_ns, 50.0) as f64 / 1.0e6,
        percentile(&latencies_ns, 99.0) as f64 / 1.0e6,
        stats.get("programs").and_then(Json::as_u64).unwrap_or(0),
        stats.get("cores").and_then(Json::as_u64).unwrap_or(0),
    ))
}
