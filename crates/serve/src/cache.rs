//! The server's compiled-artifact caches, keyed by program hash.
//!
//! A submitted program is compiled and transformed once; the resulting
//! [`Built`] (transformed program, policies, region ω sets) is leaked
//! to `'static` and every later request against the same source hash
//! reuses it. Per-scenario [`MachineCore`]s — the unit of sharing the
//! fleet sweep established: compiled blocks, interned chain table,
//! frame layouts, detector tables — hang off the program entry keyed by
//! scenario name, so a sweep of 10 000 devices against one program
//! builds each core exactly once.
//!
//! The leak is deliberate and bounded: entries are never evicted (a
//! `&'static Built` handed to a running simulation cannot be reclaimed
//! safely without reference-counting every machine), so the cache
//! instead *refuses* new submissions past its capacity — the client
//! gets a one-line error instead of the server growing without bound.

use ocelot_bench::verify::{program_hash, Verdict};
use ocelot_core::ocelot_transform;
use ocelot_hw::energy::CostModel;
use ocelot_runtime::machine::MachineCore;
use ocelot_runtime::model::{Built, ExecModel};
use ocelot_scenario::Scenario;
use ocelot_telemetry::metrics;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-instance cache hit/miss counters, one pair per caching layer.
///
/// These are plain fields owned by the cache instance — *not* the
/// process-wide telemetry counters — so the `stats` op answers the same
/// bytes whether one server or ten share the process, and whether
/// telemetry is enabled at all. Every event is additionally mirrored to
/// the global `ocelot_telemetry` registry (where it is subject to the
/// metrics on/off gate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Submissions answered from the program cache.
    pub programs_hits: u64,
    /// Submissions that compiled, verified, and cached a fresh program.
    pub programs_misses: u64,
    /// Per-scenario cores served from the memo table.
    pub cores_hits: u64,
    /// Per-scenario cores built fresh.
    pub cores_misses: u64,
}

/// One cached program: its leaked build and per-scenario cores.
pub struct ProgramEntry {
    /// The transformed program and its runtime metadata.
    pub built: &'static Built,
    /// The verdict recorded at submission time.
    pub verdict: Verdict,
    /// Shared read-only cores, one per scenario name.
    cores: HashMap<&'static str, Arc<MachineCore<'static>>>,
}

/// All cached programs, keyed by the hash of their *submitted* source
/// program (pre-transform — the hash a client can compute itself).
pub struct ProgramCache {
    max: usize,
    entries: HashMap<u64, ProgramEntry>,
    counters: CacheCounters,
}

impl ProgramCache {
    /// A cache refusing submissions past `max` distinct programs.
    pub fn new(max: usize) -> Self {
        ProgramCache {
            max: max.max(1),
            entries: HashMap::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Compiles, verifies, and caches `src`, or reuses the entry if the
    /// same program was submitted before. Returns the program hash and
    /// whether the entry was already cached.
    ///
    /// # Errors
    ///
    /// One-line messages for compile/validation/transform failures and
    /// for a full cache.
    pub fn submit(&mut self, src: &str) -> Result<(u64, bool), String> {
        let p = ocelot_ir::compile(src).map_err(|e| format!("compile: {e}"))?;
        ocelot_ir::validate(&p).map_err(|e| format!("validate: {e}"))?;
        let hash = program_hash(&p);
        if self.entries.contains_key(&hash) {
            self.counters.programs_hits += 1;
            metrics::SERVE_PROGRAMS_HIT.incr();
            return Ok((hash, true));
        }
        if self.entries.len() >= self.max {
            return Err(format!(
                "program cache full ({} programs): restart the server or raise --max-programs",
                self.max
            ));
        }
        let c = ocelot_transform(p.clone()).map_err(|e| format!("transform: {e}"))?;
        let verdict = Verdict {
            source_hash: hash,
            transformed_hash: program_hash(&c.program),
            funcs: p.funcs.len(),
            policies: c.policies.len(),
            regions: c.regions.len(),
            passes: c.check.passes(),
        };
        let built: &'static Built = Box::leak(Box::new(Built {
            model: ExecModel::Ocelot,
            program: c.program,
            policies: c.policies,
            regions: c.regions,
        }));
        self.entries.insert(
            hash,
            ProgramEntry {
                built,
                verdict,
                cores: HashMap::new(),
            },
        );
        // A miss is only counted once the fresh entry actually lands:
        // rejected submissions (compile error, full cache) are neither
        // hits nor misses.
        self.counters.programs_misses += 1;
        metrics::SERVE_PROGRAMS_MISS.incr();
        Ok((hash, false))
    }

    /// The cached entry for `hash`, if any.
    pub fn entry(&self, hash: u64) -> Option<&ProgramEntry> {
        self.entries.get(&hash)
    }

    /// The shared core for (`hash`, `sc`'s scenario), building and
    /// memoizing it on first use. Cores are keyed by scenario *name*:
    /// the channel layout a core records is a pure function of the
    /// scenario shape (seeds only perturb signal values), so one core
    /// serves every reseeding of the scenario — and, because levels and
    /// backends are observationally identical, every `--opt` level and
    /// both backends too.
    ///
    /// # Errors
    ///
    /// `unknown program` when `hash` was never submitted.
    pub fn core(&mut self, hash: u64, sc: &Scenario) -> Result<Arc<MachineCore<'static>>, String> {
        let entry = self
            .entries
            .get_mut(&hash)
            .ok_or_else(|| format!("unknown program {hash} (submit it first)"))?;
        if entry.cores.contains_key(sc.name) {
            self.counters.cores_hits += 1;
            metrics::SERVE_CORES_HIT.incr();
        } else {
            self.counters.cores_misses += 1;
            metrics::SERVE_CORES_MISS.incr();
        }
        let built = entry.built;
        let core = entry.cores.entry(sc.name).or_insert_with(|| {
            Arc::new(MachineCore::build(
                &built.program,
                &built.regions,
                built.policies.clone(),
                &sc.environment(),
                CostModel::default(),
            ))
        });
        Ok(Arc::clone(core))
    }

    /// This instance's hit/miss counters — for the `stats` op.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// (cached programs, built cores) — for the `stats` op.
    pub fn counts(&self) -> (usize, usize) {
        (
            self.entries.len(),
            self.entries.values().map(|e| e.cores.len()).sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        sensor s;
        fn main() { let x = in(s); fresh(x); out(log, x); }
    "#;

    #[test]
    fn resubmission_hits_the_cache() {
        let mut c = ProgramCache::new(4);
        let (h1, cached1) = c.submit(SRC).unwrap();
        let (h2, cached2) = c.submit(SRC).unwrap();
        assert_eq!(h1, h2);
        assert!(!cached1);
        assert!(cached2);
        assert_eq!(c.counts(), (1, 0));
        let v = &c.entry(h1).unwrap().verdict;
        assert!(v.passes);
        assert_eq!(v.source_hash, h1);
    }

    #[test]
    fn full_cache_refuses_new_programs_but_keeps_serving_cached_ones() {
        let mut c = ProgramCache::new(1);
        let (h, _) = c.submit(SRC).unwrap();
        let other = SRC.replace("log", "uart");
        let err = c.submit(&other).unwrap_err();
        assert!(err.contains("cache full"), "{err}");
        assert!(err.contains("--max-programs"), "{err}");
        assert!(c.submit(SRC).unwrap().1, "cached entry still served");
        assert!(c.entry(h).is_some());
    }

    #[test]
    fn cores_are_shared_per_scenario_name_across_seeds() {
        let mut c = ProgramCache::new(4);
        let (h, _) = c.submit(SRC).unwrap();
        let sc = ocelot_scenario::parse("rf-lab").unwrap();
        let a = c.core(h, &sc).unwrap();
        let b = c.core(h, &sc.reseeded(99)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one core per scenario name");
        assert_eq!(c.counts(), (1, 1));
        let err = c.core(12345, &sc).err().expect("unknown hash errors");
        assert!(err.contains("unknown program"), "{err}");
    }

    #[test]
    fn hit_miss_counters_are_per_instance_and_telemetry_independent() {
        // Two caches in one process: counters must not bleed between
        // them (they are instance fields, not the global registry), and
        // they count with telemetry off.
        let mut a = ProgramCache::new(4);
        let mut b = ProgramCache::new(4);
        a.submit(SRC).unwrap();
        a.submit(SRC).unwrap();
        let sc = ocelot_scenario::parse("rf-lab").unwrap();
        let h = a.submit(SRC).unwrap().0;
        a.core(h, &sc).unwrap();
        a.core(h, &sc).unwrap();
        assert_eq!(
            a.counters(),
            CacheCounters {
                programs_hits: 2,
                programs_misses: 1,
                cores_hits: 1,
                cores_misses: 1,
            }
        );
        b.submit(SRC).unwrap();
        assert_eq!(b.counters().programs_misses, 1);
        assert_eq!(b.counters().programs_hits, 0, "instances do not share");
        // Rejected submissions count neither way.
        let mut full = ProgramCache::new(1);
        full.submit(SRC).unwrap();
        let _ = full.submit(&SRC.replace("log", "uart"));
        let _ = full.submit("fn main( {");
        assert_eq!(full.counters().programs_misses, 1);
        assert_eq!(full.counters().programs_hits, 0);
    }

    #[test]
    fn invalid_programs_report_one_line_errors() {
        let mut c = ProgramCache::new(4);
        let err = c.submit("fn main( {").unwrap_err();
        assert!(err.starts_with("compile:"), "{err}");
        assert_eq!(err.lines().count(), 1);
    }
}
