//! Dominator and post-dominator trees.
//!
//! Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple,
//! Fast Dominance Algorithm") over the block CFG, plus the
//! `closestCommonDominator` / `closestCommonPostDominator` queries that
//! Algorithm 1 of the paper takes from LLVM, and instruction-granularity
//! dominance used by `truncate` (§6.2).

use ocelot_ir::cfg::{Cfg, ReverseCfg};
use ocelot_ir::{BlockId, Function};

/// A dominance relation over one function's blocks.
///
/// The same type serves the forward (dominator) and reverse
/// (post-dominator) relations; see [`DomTree::dominators`] and
/// [`DomTree::post_dominators`].
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`; the root maps to itself;
    /// unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    /// Order index used to intersect paths (RPO of the underlying graph).
    order: Vec<usize>,
    root: BlockId,
}

impl DomTree {
    /// Builds the dominator tree of `f` (rooted at the entry block).
    pub fn dominators(f: &Function, cfg: &Cfg) -> Self {
        let rpo: Vec<BlockId> = cfg.rpo().to_vec();
        Self::build(f.blocks.len(), f.entry, &rpo, |b| cfg.preds(b).to_vec())
    }

    /// Builds the post-dominator tree of `f` (rooted at the exit block).
    ///
    /// Lowered functions funnel every return through a single landing-pad
    /// block, so the reverse graph has one root and post-dominance is
    /// total over reachable blocks (§6.2 of the paper relies on this).
    pub fn post_dominators(f: &Function, cfg: &Cfg) -> Self {
        let rcfg = ReverseCfg::new(f, cfg);
        let rpo = rcfg.rpo.clone();
        // CHK needs each node's predecessors *in the reversed graph*,
        // which are the original successors (`rcfg.preds`).
        Self::build(f.blocks.len(), f.exit, &rpo, |b| {
            rcfg.preds[b.0 as usize].clone()
        })
    }

    /// Core CHK iteration. `preds` yields the predecessors of a block in
    /// the graph being dominated (already reversed for post-dominance).
    fn build(
        n: usize,
        root: BlockId,
        rpo: &[BlockId],
        preds: impl Fn(BlockId) -> Vec<BlockId>,
    ) -> Self {
        let mut order = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            order[b.0 as usize] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[root.0 as usize] = Some(root);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for p in preds(b) {
                    if idom[p.0 as usize].is_none() {
                        continue; // predecessor not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, order, root }
    }

    /// The root of the tree (entry for dominators, exit for
    /// post-dominators).
    pub fn root(&self) -> BlockId {
        self.root
    }

    /// Immediate dominator of `b`; `None` for the root and for
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let d = self.idom[b.0 as usize]?;
        if b == self.root {
            None
        } else {
            Some(d)
        }
    }

    /// True when `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// True when `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Nearest common ancestor of `a` and `b` in the tree — LLVM's
    /// `closestCommonDominator`.
    ///
    /// Returns `None` if either block is unreachable.
    pub fn common(&self, a: BlockId, b: BlockId) -> Option<BlockId> {
        if self.idom[a.0 as usize].is_none() || self.idom[b.0 as usize].is_none() {
            return None;
        }
        Some(intersect(&self.idom, &self.order, a, b))
    }

    /// Nearest common ancestor of all blocks in `blocks`.
    ///
    /// Returns `None` for an empty iterator or if any block is
    /// unreachable.
    pub fn common_of<I: IntoIterator<Item = BlockId>>(&self, blocks: I) -> Option<BlockId> {
        let mut it = blocks.into_iter();
        let first = it.next()?;
        let mut acc = first;
        self.idom[acc.0 as usize]?;
        for b in it {
            acc = self.common(acc, b)?;
        }
        Some(acc)
    }

    /// Depth of `b` in the tree (root has depth 0); `None` if
    /// unreachable.
    pub fn depth(&self, b: BlockId) -> Option<usize> {
        self.idom[b.0 as usize]?;
        let mut d = 0;
        let mut cur = b;
        while cur != self.root {
            cur = self.idom[cur.0 as usize]?;
            d += 1;
        }
        Some(d)
    }
}

/// Computes the dominance frontier of every block: `df[b]` is the set
/// of blocks where `b`'s dominance ends — the join points that decide
/// where control-dependent effects merge (used by the control-dependence
/// computation in [`crate::taint`] via post-dominators, and exposed for
/// clients building SSA-style analyses).
pub fn dominance_frontier(f: &Function, cfg: &Cfg, dom: &DomTree) -> Vec<Vec<BlockId>> {
    let n = f.blocks.len();
    let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for b in &f.blocks {
        let preds = cfg.preds(b.id);
        if preds.len() < 2 {
            continue;
        }
        let Some(idom_b) = dom.idom(b.id) else {
            continue;
        };
        for &p in preds {
            let mut runner = p;
            loop {
                if runner == idom_b {
                    break;
                }
                if !df[runner.0 as usize].contains(&b.id) {
                    df[runner.0 as usize].push(b.id);
                }
                match dom.idom(runner) {
                    Some(next) => runner = next,
                    None => break,
                }
            }
        }
    }
    df
}

fn intersect(idom: &[Option<BlockId>], order: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while order[a.0 as usize] > order[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed block has idom");
        }
        while order[b.0 as usize] > order[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed block has idom");
        }
    }
    a
}

/// A program point at instruction granularity: instruction `index` within
/// `block` (`index == instrs.len()` addresses the terminator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// The containing block.
    pub block: BlockId,
    /// Instruction index, terminator at `instrs.len()`.
    pub index: usize,
}

impl Point {
    /// Creates a point.
    pub fn new(block: BlockId, index: usize) -> Self {
        Point { block, index }
    }
}

/// Instruction-granularity dominance: `a` dominates `b` when `a`'s block
/// strictly dominates `b`'s, or they share a block and `a` is not after
/// `b`.
pub fn point_dominates(dom: &DomTree, a: Point, b: Point) -> bool {
    if a.block == b.block {
        a.index <= b.index
    } else {
        dom.strictly_dominates(a.block, b.block)
    }
}

/// Instruction-granularity post-dominance: `a` post-dominates `b` when
/// `a`'s block strictly post-dominates `b`'s, or they share a block and
/// `a` is not before `b`.
pub fn point_post_dominates(pdom: &DomTree, a: Point, b: Point) -> bool {
    if a.block == b.block {
        a.index >= b.index
    } else {
        pdom.strictly_dominates(a.block, b.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::lower::compile;
    use ocelot_ir::Cfg;

    fn trees(src: &str) -> (ocelot_ir::Program, DomTree, DomTree) {
        let p = compile(src).unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let pdom = DomTree::post_dominators(f, &cfg);
        (p, dom, pdom)
    }

    #[test]
    fn entry_dominates_everything() {
        let (p, dom, _) = trees(
            "fn main() { let x = 1; if x > 0 { let a = 1; } else { let b = 2; } let c = 3; }",
        );
        let f = p.func(p.main);
        for b in &f.blocks {
            assert!(dom.dominates(f.entry, b.id));
        }
    }

    #[test]
    fn exit_post_dominates_everything() {
        let (p, _, pdom) =
            trees("fn main() { let x = 1; if x > 0 { return 1; } else { return 2; } }");
        let f = p.func(p.main);
        for b in &f.blocks {
            assert!(
                pdom.dominates(f.exit, b.id),
                "exit must post-dominate bb{}",
                b.id.0
            );
        }
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let (p, dom, _) = trees(
            "fn main() { let x = 1; if x > 0 { let a = 1; } else { let b = 2; } let c = 3; }",
        );
        let f = p.func(p.main);
        let entry = f.entry;
        let (then_bb, else_bb) = match &f.block(entry).term {
            ocelot_ir::Terminator::Branch {
                then_bb, else_bb, ..
            } => (*then_bb, *else_bb),
            _ => panic!("expected branch"),
        };
        // The join block is the common successor of both arms.
        let join = f.block(then_bb).term.successors()[0];
        assert!(!dom.dominates(then_bb, join));
        assert!(!dom.dominates(else_bb, join));
        assert!(dom.dominates(entry, join));
        assert_eq!(dom.common(then_bb, else_bb), Some(entry));
    }

    #[test]
    fn common_of_multiple_blocks() {
        let (p, dom, pdom) = trees(
            "fn main() { let x = 1; if x > 0 { let a = 1; } else { let b = 2; } let c = 3; }",
        );
        let f = p.func(p.main);
        let all: Vec<BlockId> = f.blocks.iter().map(|b| b.id).collect();
        assert_eq!(dom.common_of(all.clone()), Some(f.entry));
        assert_eq!(pdom.common_of(all), Some(f.exit));
    }

    #[test]
    fn loop_header_dominates_body() {
        let (p, dom, _) = trees("sensor s; fn main() { repeat 3 { let v = in(s); } }");
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let (from, header) = cfg.back_edges()[0];
        assert!(
            dom.dominates(header, from),
            "natural loop: header dominates latch"
        );
    }

    #[test]
    fn point_dominance_within_block_is_index_order() {
        let (_, dom, pdom) = trees("fn main() { let x = 1; let y = 2; }");
        let b = BlockId(0);
        assert!(point_dominates(&dom, Point::new(b, 0), Point::new(b, 1)));
        assert!(!point_dominates(&dom, Point::new(b, 2), Point::new(b, 1)));
        assert!(point_post_dominates(
            &pdom,
            Point::new(b, 2),
            Point::new(b, 1)
        ));
        assert!(!point_post_dominates(
            &pdom,
            Point::new(b, 0),
            Point::new(b, 1)
        ));
    }

    #[test]
    fn depth_increases_down_the_tree() {
        let (p, dom, _) = trees(
            "fn main() { let x = 1; if x > 0 { if x > 1 { let a = 1; } let b = 2; } let c = 3; }",
        );
        let f = p.func(p.main);
        assert_eq!(dom.depth(f.entry), Some(0));
        // Some block must be at depth >= 2 (nested if).
        assert!(f.blocks.iter().any(|b| dom.depth(b.id).unwrap_or(0) >= 2));
    }

    #[test]
    fn dominance_frontier_of_branch_arms_is_the_join() {
        let p = compile(
            "fn main() { let x = 1; if x > 0 { let a = 1; } else { let b = 2; } let c = 3; }",
        )
        .unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let df = dominance_frontier(f, &cfg, &dom);
        let (then_bb, else_bb) = match &f.block(f.entry).term {
            ocelot_ir::Terminator::Branch {
                then_bb, else_bb, ..
            } => (*then_bb, *else_bb),
            _ => panic!("expected branch"),
        };
        let join = f.block(then_bb).term.successors()[0];
        assert_eq!(df[then_bb.0 as usize], vec![join]);
        assert_eq!(df[else_bb.0 as usize], vec![join]);
        // The entry dominates the join, so its frontier excludes it.
        assert!(!df[f.entry.0 as usize].contains(&join));
    }

    #[test]
    fn dominance_frontier_of_loop_latch_contains_header() {
        let p = compile("sensor s; fn main() { repeat 3 { let v = in(s); } }").unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let df = dominance_frontier(f, &cfg, &dom);
        let (latch, header) = cfg.back_edges()[0];
        assert!(
            df[latch.0 as usize].contains(&header),
            "the latch's frontier includes the loop header"
        );
    }

    #[test]
    fn idom_of_root_is_none() {
        let (p, dom, pdom) = trees("fn main() { let x = 1; }");
        let f = p.func(p.main);
        assert_eq!(dom.idom(f.entry), None);
        assert_eq!(pdom.idom(f.exit), None);
    }
}
