//! Incrementally-maintained analysis results: per-function entries
//! keyed by function-body fingerprints, so re-verifying a program after
//! a one-line edit recomputes only the functions whose analysis inputs
//! actually changed.
//!
//! The expensive half of [`TaintAnalysis::run`] is the per-function
//! flow fixpoint; its structure makes it cacheable by construction:
//! each [`FuncFlow`] depends only on the function's own body, the
//! program's declaration header (sensors and globals), and the flows of
//! its direct callees — nothing about callers. The cache key
//! ([`input_fingerprints`]) therefore folds a function's printed body
//! (labels, block structure, parameter modes, callee names), its
//! positional [`ocelot_ir::FuncId`] (provenance chains carry positional
//! ids, so an id shift must invalidate), the declaration header, and
//! the keys of its direct callees — closing the fingerprint
//! transitively over the whole callee subtree. Labels are
//! function-unique in this IR, so an edit in one function never shifts
//! labels (and hence fingerprints) in another.
//!
//! The cheap tail — context enumeration and the stored-global fixpoint
//! — is recomputed from the (cached or fresh) flows by
//! [`TaintAnalysis::from_flows`], which guarantees the assembled result
//! is *identical* to a from-scratch [`TaintAnalysis::run`]: the
//! downstream transform, policies, summaries, and verdicts cannot tell
//! the difference (held by the equivalence tests here and byte-identity
//! tests in the serve layer).
//!
//! [`FuncCache`] generalizes the same keying for other per-function
//! results (the serve layer caches per-function loop/progress bounds
//! with it).

use crate::taint::{analyze_function, FuncFlow, TaintAnalysis};
use ocelot_ir::print::function_to_string;
use ocelot_ir::{CallGraph, Program};
use std::collections::HashMap;
use std::fmt::Write as _;

/// FNV-1a over bytes: the workspace's no-deps stable fingerprint.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Folds another 64-bit value into an FNV-1a accumulator.
fn fold(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The program-level declaration header every function's analysis can
/// observe: sensors and non-volatile globals, in declaration order.
fn decl_signature(p: &Program) -> u64 {
    let mut s = String::new();
    for sensor in &p.sensors {
        let _ = writeln!(s, "sensor {sensor};");
    }
    for g in &p.globals {
        let _ = writeln!(s, "nv {} {:?};", g.name, g.array_len);
    }
    fnv1a(s.as_bytes())
}

/// Per-function input fingerprints, indexed by [`ocelot_ir::FuncId`]
/// position: everything the per-function flow analysis reads about
/// function `i`, transitively including its callee subtree.
///
/// Two programs assigning a function equal fingerprints have equal
/// printed bodies, equal positional ids, equal declaration headers, and
/// recursively equal callee subtrees — which makes the cached
/// [`FuncFlow`] (labels, provenance chains and all) valid verbatim.
///
/// # Panics
///
/// Panics on recursive programs; run [`ocelot_ir::validate()`] first.
pub fn input_fingerprints(p: &Program) -> Vec<u64> {
    let cg = CallGraph::new(p);
    let order = cg
        .topo_callees_first(p)
        .expect("fingerprints require an acyclic call graph");
    let decl = decl_signature(p);
    let mut keys = vec![0u64; p.funcs.len()];
    for f in order {
        let body = function_to_string(p, p.func(f));
        let mut h = fold(fnv1a(body.as_bytes()), decl);
        h = fold(h, u64::from(f.0));
        for edge in cg.callees(f) {
            h = fold(h, u64::from(edge.callee.0));
            h = fold(h, keys[edge.callee.0 as usize]);
        }
        keys[f.0 as usize] = h;
    }
    keys
}

/// What one incremental pass did: how much work the cache saved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Functions in the analyzed program.
    pub funcs: usize,
    /// Functions whose flow was recomputed (fingerprint miss).
    pub analyzed: usize,
    /// Functions whose cached flow was reused verbatim.
    pub reused: usize,
}

/// A per-function [`FuncFlow`] cache keyed by function name, validated
/// by [`input_fingerprints`]. One cache serves one logical *document*
/// (an edit stream of versions of the same program); feeding it
/// unrelated programs is correct but thrashes.
#[derive(Debug, Default)]
pub struct FlowCache {
    entries: HashMap<String, (u64, FuncFlow)>,
}

impl FlowCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the taint analysis over `p`, reusing every cached flow
    /// whose input fingerprint is unchanged and recomputing the rest
    /// callees-first. The result equals [`TaintAnalysis::run`] exactly.
    ///
    /// # Panics
    ///
    /// Panics on recursive programs; run [`ocelot_ir::validate()`]
    /// first.
    pub fn run(&mut self, p: &Program) -> (TaintAnalysis, IncrementalStats) {
        let cg = CallGraph::new(p);
        let order = cg
            .topo_callees_first(p)
            .expect("taint analysis requires an acyclic call graph");
        let keys = input_fingerprints(p);

        let mut flows: Vec<FuncFlow> = vec![FuncFlow::default(); p.funcs.len()];
        let mut stats = IncrementalStats {
            funcs: p.funcs.len(),
            analyzed: 0,
            reused: 0,
        };
        for f in order {
            let func = p.func(f);
            let key = keys[f.0 as usize];
            match self.entries.get(&func.name) {
                Some((cached_key, flow)) if *cached_key == key => {
                    stats.reused += 1;
                    flows[f.0 as usize] = flow.clone();
                }
                _ => {
                    stats.analyzed += 1;
                    let flow = analyze_function(p, func, &flows);
                    self.entries.insert(func.name.clone(), (key, flow.clone()));
                    flows[f.0 as usize] = flow;
                }
            }
        }
        // Drop entries for functions the edit removed, so the cache
        // tracks the document instead of growing monotonically.
        self.entries
            .retain(|name, _| p.funcs.iter().any(|f| &f.name == name));

        (TaintAnalysis::from_flows(p, flows), stats)
    }

    /// Cached functions (for cache-statistics surfaces).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A generic per-function result cache with the same name + fingerprint
/// keying as [`FlowCache`], for analysis results that are a pure
/// function of one function's body (per-function progress/loop bounds,
/// say). The caller supplies the fingerprint — [`input_fingerprints`]
/// for anything reading callee summaries, or a plain body hash for
/// strictly local results.
#[derive(Debug)]
pub struct FuncCache<T> {
    entries: HashMap<String, (u64, T)>,
}

impl<T> Default for FuncCache<T> {
    fn default() -> Self {
        FuncCache {
            entries: HashMap::new(),
        }
    }
}

impl<T: Clone> FuncCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached value for `name` when its fingerprint still
    /// matches, otherwise computes, stores and returns it. The boolean
    /// reports whether the cache hit.
    pub fn get_or_insert(
        &mut self,
        name: &str,
        fingerprint: u64,
        build: impl FnOnce() -> T,
    ) -> (T, bool) {
        match self.entries.get(name) {
            Some((key, v)) if *key == fingerprint => (v.clone(), true),
            _ => {
                let v = build();
                self.entries
                    .insert(name.to_string(), (fingerprint, v.clone()));
                (v, false)
            }
        }
    }

    /// Drops entries whose name is not in `live` (edit removed them).
    pub fn retain_names(&mut self, live: &[&str]) {
        self.entries.retain(|name, _| live.contains(&name.as_str()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        let p = ocelot_ir::compile(src).unwrap();
        ocelot_ir::validate(&p).unwrap();
        p
    }

    const BASE: &str = r#"
        sensor temp; sensor pres;
        nv total;
        fn scale(v) { let w = v * 3; return w; }
        fn read_temp() { let t = in(temp); let s = scale(t); return s; }
        fn read_pres() { let q = in(pres); return q; }
        fn main() {
            let a = read_temp();
            fresh(a);
            let b = read_pres();
            consistent(b, 1);
            total = total + a;
            out(log, a, b);
        }
    "#;

    #[test]
    fn incremental_equals_from_scratch_on_first_run() {
        let p = program(BASE);
        let full = TaintAnalysis::run(&p);
        let mut cache = FlowCache::new();
        let (incr, stats) = cache.run(&p);
        assert_eq!(incr, full);
        assert_eq!(stats.analyzed, 4, "cold cache analyzes everything");
        assert_eq!(stats.reused, 0);
    }

    #[test]
    fn unchanged_program_reuses_every_flow() {
        let mut cache = FlowCache::new();
        let (first, _) = cache.run(&program(BASE));
        let (second, stats) = cache.run(&program(BASE));
        assert_eq!(stats.analyzed, 0, "identical text reuses all flows");
        assert_eq!(stats.reused, 4);
        assert_eq!(first, second);
    }

    #[test]
    fn one_function_edit_recomputes_only_the_changed_subtree() {
        let mut cache = FlowCache::new();
        cache.run(&program(BASE));
        // Edit `read_pres` only: its own flow and nothing else changes
        // (main's fingerprint folds its callees' keys, so main
        // recomputes too — callers above an edit are part of the
        // changed subtree; siblings are not).
        let edited = BASE.replace(
            "let q = in(pres); return q;",
            "let q = in(pres); return q + 1;",
        );
        let p2 = program(&edited);
        let (incr, stats) = cache.run(&p2);
        assert_eq!(
            stats.analyzed, 2,
            "edited function + its (transitive) callers, nothing else"
        );
        assert_eq!(stats.reused, 2, "scale and read_temp reused");
        assert_eq!(
            incr,
            TaintAnalysis::run(&p2),
            "verdict-identical to from-scratch"
        );
    }

    #[test]
    fn declaration_changes_invalidate_everything() {
        let mut cache = FlowCache::new();
        cache.run(&program(BASE));
        let p2 = program(&BASE.replace("sensor temp;", "sensor temp; sensor hum;"));
        let (_, stats) = cache.run(&p2);
        assert_eq!(stats.reused, 0, "header is every function's input");
    }

    #[test]
    fn function_insertion_shifts_ids_and_invalidates_consistently() {
        let mut cache = FlowCache::new();
        cache.run(&program(BASE));
        // Insert a function *before* the others: every positional id
        // shifts, so every cached flow (whose provenance carries ids)
        // must be invalidated — correctness over reuse.
        let p2 = program(&BASE.replace(
            "fn scale(v)",
            "fn noop() { return 0; }\n        fn scale(v)",
        ));
        let (incr, stats) = cache.run(&p2);
        assert_eq!(stats.reused, 0, "id shifts invalidate verbatim reuse");
        assert_eq!(incr, TaintAnalysis::run(&p2));
        // Removal prunes the cache back to the live set.
        let (_, _) = cache.run(&program(BASE));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn func_cache_reuses_by_fingerprint() {
        let mut cache: FuncCache<u64> = FuncCache::new();
        let (v, hit) = cache.get_or_insert("f", 1, || 10);
        assert_eq!((v, hit), (10, false));
        let (v, hit) = cache.get_or_insert("f", 1, || unreachable!("must reuse"));
        assert_eq!((v, hit), (10, true));
        let (v, hit) = cache.get_or_insert("f", 2, || 20);
        assert_eq!((v, hit), (20, false));
        cache.retain_names(&[]);
        let (_, hit) = cache.get_or_insert("f", 2, || 30);
        assert!(!hit, "retain_names dropped the entry");
    }
}
