//! Natural-loop detection.
//!
//! The paper's formal model unrolls bounded loops; the IR keeps them as
//! CFG back edges. Region inference (in `ocelot-core`) widens any policy
//! operation that sits inside a loop to the whole loop, which encloses
//! every unrolled copy — loop membership is computed here.

use crate::dom::DomTree;
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{BlockId, Function};
use std::collections::HashSet;

/// One natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the loop).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: HashSet<BlockId>,
}

impl NaturalLoop {
    /// True when `b` is inside this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// All natural loops of a function.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Finds the natural loop of every back edge of `f`. Back edges
    /// sharing a header are merged into one loop.
    pub fn new(_f: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (latch, header) in cfg.back_edges() {
            // A true natural loop requires the header to dominate the latch.
            if !dom.dominates(header, latch) {
                continue;
            }
            let mut body = HashSet::from([header]);
            let mut stack = vec![latch];
            while let Some(b) = stack.pop() {
                if body.insert(b) {
                    for &p in cfg.preds(b) {
                        stack.push(p);
                    }
                }
            }
            if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
                existing.body.extend(body);
            } else {
                loops.push(NaturalLoop { header, body });
            }
        }
        LoopForest { loops }
    }

    /// All loops.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// The loops containing block `b`, innermost-last by body size.
    pub fn loops_containing(&self, b: BlockId) -> Vec<&NaturalLoop> {
        let mut ls: Vec<&NaturalLoop> = self.loops.iter().filter(|l| l.contains(b)).collect();
        ls.sort_by_key(|l| std::cmp::Reverse(l.body.len()));
        ls
    }

    /// The outermost loop containing `b`, if any.
    pub fn outermost_containing(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops_containing(b).into_iter().next()
    }

    /// True when `b` is inside any loop.
    pub fn in_loop(&self, b: BlockId) -> bool {
        self.loops.iter().any(|l| l.contains(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::lower::compile;

    fn forest(src: &str) -> (ocelot_ir::Program, LoopForest) {
        let p = compile(src).unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let lf = LoopForest::new(f, &cfg, &dom);
        (p, lf)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let (_, lf) = forest("fn main() { let x = 1; }");
        assert!(lf.loops().is_empty());
    }

    #[test]
    fn repeat_yields_one_loop() {
        let (p, lf) = forest("sensor s; fn main() { repeat 3 { let v = in(s); } }");
        assert_eq!(lf.loops().len(), 1);
        let l = &lf.loops()[0];
        // Header + body + latch structure: at least 2 blocks.
        assert!(l.body.len() >= 2);
        let f = p.func(p.main);
        assert!(!l.contains(f.entry), "entry precedes the loop");
        assert!(!l.contains(f.exit), "exit follows the loop");
    }

    #[test]
    fn nested_repeats_yield_nested_loops() {
        let (_, lf) = forest("sensor s; fn main() { repeat 2 { repeat 3 { let v = in(s); } } }");
        assert_eq!(lf.loops().len(), 2);
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = lf.loops().iter().map(|l| l.body.len()).collect();
            v.sort_unstable();
            v
        };
        assert!(sizes[0] < sizes[1], "inner loop strictly smaller");
        // Inner loop body is inside the outer loop.
        let inner = lf.loops().iter().min_by_key(|l| l.body.len()).unwrap();
        let outer = lf.loops().iter().max_by_key(|l| l.body.len()).unwrap();
        assert!(inner.body.iter().all(|b| outer.contains(*b)));
        // Outermost query returns the big loop for an inner block.
        let some_inner_block = *inner.body.iter().next().unwrap();
        assert_eq!(
            lf.outermost_containing(some_inner_block)
                .unwrap()
                .body
                .len(),
            outer.body.len()
        );
    }

    #[test]
    fn if_inside_loop_is_in_loop_body() {
        let (_, lf) =
            forest("sensor s; fn main() { repeat 3 { let v = in(s); if v > 0 { out(log, v); } } }");
        assert_eq!(lf.loops().len(), 1);
        // All non-entry/exit blocks of this program are inside the loop:
        // header, branch blocks, join, latch.
        assert!(lf.loops()[0].body.len() >= 4);
    }
}
