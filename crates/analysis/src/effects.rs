//! Read/write effect helpers and per-function global-effect summaries.
//!
//! Both the taint analysis and the WAR/EMW analysis need to know which
//! variables an instruction reads and writes, and which non-volatile
//! globals a call may touch transitively.

use ocelot_ir::ast::{Arg, Expr};
use ocelot_ir::{CallGraph, Function, Op, Place, Program, Terminator};
use std::collections::BTreeSet;

/// Variables (locals, params, and globals — by name) read by `e`.
/// Dereferenced reference parameters are reported as the parameter name.
pub fn expr_reads(e: &Expr) -> BTreeSet<String> {
    e.vars().into_iter().collect()
}

/// Variable names read by an operation (data operands only — branch
/// conditions are handled separately via the terminator).
pub fn op_reads(op: &Op) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    match op {
        Op::Skip | Op::AtomStart { .. } | Op::AtomEnd { .. } => {}
        Op::Bind { src, .. } => out.extend(expr_reads(src)),
        Op::Assign { place, src } => {
            out.extend(expr_reads(src));
            match place {
                Place::Index(a, i) => {
                    // Storing to a[i] reads the index; the array base `a`
                    // is written, not read.
                    let _ = a;
                    out.extend(expr_reads(i));
                }
                Place::Deref(x) => {
                    // `*x = e` uses the reference x as an address.
                    out.insert(x.clone());
                }
                Place::Var(_) => {}
            }
        }
        Op::Input { .. } => {}
        Op::Call { args, .. } => {
            for a in args {
                match a {
                    Arg::Value(e) => out.extend(expr_reads(e)),
                    Arg::Ref(x) => {
                        out.insert(x.clone());
                    }
                }
            }
        }
        Op::Output { args, .. } => {
            for e in args {
                out.extend(expr_reads(e));
            }
        }
        Op::Annot { .. } => {
            // Annotations are analysis markers, not uses (§6.1 erases
            // them before the program runs).
        }
    }
    out
}

/// The local or global scalar directly written by an operation, if any
/// (array writes report the array base; deref writes report the
/// parameter).
pub fn op_write(op: &Op) -> Option<String> {
    match op {
        Op::Bind { var, .. } | Op::Input { var, .. } => Some(var.clone()),
        Op::Assign { place, .. } => Some(place.base().clone()),
        Op::Call { dst, .. } => dst.clone(),
        _ => None,
    }
}

/// Transitive non-volatile global effects of each function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalEffects {
    /// Globals possibly read (directly or via callees).
    pub reads: BTreeSet<String>,
    /// Globals possibly written (directly or via callees).
    pub writes: BTreeSet<String>,
}

/// Computes [`GlobalEffects`] for every function, callees first.
///
/// # Panics
///
/// Panics if the call graph is cyclic; run
/// [`ocelot_ir::validate()`] first.
pub fn global_effects(p: &Program) -> Vec<GlobalEffects> {
    let cg = CallGraph::new(p);
    let order = cg
        .topo_callees_first(p)
        .expect("global_effects requires an acyclic call graph");
    let mut fx: Vec<GlobalEffects> = vec![GlobalEffects::default(); p.funcs.len()];
    for f in order {
        let func = p.func(f);
        let mut e = GlobalEffects::default();
        collect_function(p, func, &fx, &mut e);
        fx[f.0 as usize] = e;
    }
    fx
}

fn collect_function(p: &Program, f: &Function, done: &[GlobalEffects], e: &mut GlobalEffects) {
    let note_reads = |names: &BTreeSet<String>, e: &mut GlobalEffects| {
        for n in names {
            if p.is_global(n) {
                e.reads.insert(n.clone());
            }
        }
    };
    for b in &f.blocks {
        for inst in &b.instrs {
            note_reads(&op_reads(&inst.op), e);
            if let Some(w) = op_write(&inst.op) {
                if p.is_global(&w) {
                    e.writes.insert(w);
                }
            }
            if let Op::Call { callee, .. } = &inst.op {
                let ce = &done[callee.0 as usize];
                e.reads.extend(ce.reads.iter().cloned());
                e.writes.extend(ce.writes.iter().cloned());
            }
        }
        match &b.term {
            Terminator::Branch { cond, .. } => note_reads(&expr_reads(cond), e),
            Terminator::Ret(Some(expr)) => note_reads(&expr_reads(expr), e),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::lower::compile;

    #[test]
    fn expr_reads_cover_all_operand_kinds() {
        let p = compile(
            "nv a[4]; nv g = 0; fn f(&r) { let x = a[g] + *r; } fn main() { let s = 0; f(&s); }",
        )
        .unwrap();
        let f = p.func(p.func_by_name("f").unwrap());
        let bind = f
            .iter_insts()
            .find_map(|(_, i)| match &i.op {
                Op::Bind { var, src } if var == "x" => Some(src.clone()),
                _ => None,
            })
            .unwrap();
        let reads = expr_reads(&bind);
        assert!(reads.contains("a"));
        assert!(reads.contains("g"));
        assert!(reads.contains("r"));
    }

    #[test]
    fn global_effects_are_transitive() {
        let p = compile(
            r#"
            nv g = 0;
            nv h = 0;
            fn leaf() { g = g + 1; }
            fn mid() { leaf(); let x = h; }
            fn main() { mid(); }
            "#,
        )
        .unwrap();
        let fx = global_effects(&p);
        let main_fx = &fx[p.main.0 as usize];
        assert!(
            main_fx.writes.contains("g"),
            "write reaches main transitively"
        );
        assert!(main_fx.reads.contains("g"), "leaf reads g before increment");
        assert!(main_fx.reads.contains("h"));
        assert!(!main_fx.writes.contains("h"));
        let leaf_fx = &fx[p.func_by_name("leaf").unwrap().0 as usize];
        assert!(!leaf_fx.reads.contains("h"));
    }

    #[test]
    fn locals_do_not_appear_in_global_effects() {
        let p = compile("fn main() { let x = 1; let y = x; }").unwrap();
        let fx = global_effects(&p);
        assert!(fx[p.main.0 as usize].reads.is_empty());
        assert!(fx[p.main.0 as usize].writes.is_empty());
    }

    #[test]
    fn array_store_counts_as_write_and_index_as_read() {
        let p = compile("nv a[4]; nv i = 0; fn main() { a[i] = 5; }").unwrap();
        let fx = global_effects(&p);
        let m = &fx[p.main.0 as usize];
        assert!(m.writes.contains("a"));
        assert!(m.reads.contains("i"));
        assert!(!m.reads.contains("a"));
    }

    #[test]
    fn branch_condition_reads_globals() {
        let p = compile("nv g = 0; fn main() { if g > 0 { skip; } }").unwrap();
        let fx = global_effects(&p);
        assert!(fx[p.main.0 as usize].reads.contains("g"));
    }
}
