//! SSA lifting of lowered functions, and the static facts the compiled
//! backend's optimizing middle-end consumes.
//!
//! The lifting is the textbook construction: place phi nodes at the
//! iterated dominance frontier of every variable's definition blocks
//! (reusing [`crate::dom::dominance_frontier`]), then rename along a
//! dominator-tree walk with one value stack per variable — the same
//! shape as LLVM's `mem2reg` and the compact `rust_bril` exemplar this
//! repo's roadmap points at. The SSA form itself is never materialized
//! as rewritten IR; instead the walk records the *facts* the backend
//! needs:
//!
//! * [`FuncSsa::const_uses`] — instruction operand reads whose unique
//!   reaching definition binds a compile-time constant (sparse
//!   conditional constant propagation, pessimistic over back edges);
//! * [`FuncSsa::dead_defs`] — `Bind`/`Assign`-to-local definitions
//!   whose value no later use (including phi arguments) ever observes;
//! * [`FuncSsa::always_bound`] — declared locals provably never read
//!   before a definition on any path (no SSA use can see the entry
//!   `undef` value), the fact behind reclassifying "in-scope-but-
//!   unbound" stores as volatile;
//! * [`FuncSsa::address_taken`] — locals passed by `&x`; these escape
//!   the rename and are excluded from every fact above.
//!
//! Everything here is *advisory*: the interpreter never reads these
//! facts, so the differential suites hold the optimized compiled
//! backend to the unoptimized oracle's observable behavior.

use crate::dom::{dominance_frontier, DomTree};
use ocelot_ir::ast::{Arg, BinOp, Expr, Ident, UnOp};
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{BlockId, Function, Label, Op, Place, Program, Terminator};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Identifies one SSA value inside a [`FuncSsa`] build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ValId(u32);

/// The lattice value carried by one SSA definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lattice {
    /// The entry value of a local before any definition.
    Undef,
    /// A run-time value the analysis cannot name.
    Opaque,
    /// A compile-time constant.
    Const(i64),
}

/// One SSA value: its lattice element plus bookkeeping for the
/// undef-reachability and use-count queries.
#[derive(Debug, Clone)]
struct Val {
    lattice: Lattice,
    /// Phi operands (empty for ordinary definitions).
    phi_args: Vec<ValId>,
    /// Number of reads (operand uses + phi-argument positions).
    uses: u32,
    /// Operand reads only (phi-argument positions excluded): the count
    /// that decides whether a value is ever *observed* by an
    /// instruction. A phi can carry an undef operand yet be killed by a
    /// following definition before any read — that is not an undef
    /// read.
    read_uses: u32,
    /// The defining instruction, when it is a `Bind` or scalar
    /// `Assign` to a tracked local (the dead-store candidates).
    def_site: Option<Label>,
}

/// SSA-derived facts for one function. See the module docs for what
/// each field means and how the compiled backend uses it.
#[derive(Debug, Clone, Default)]
pub struct FuncSsa {
    /// `(use site label, variable) -> k`: the read of `variable` at the
    /// labeled instruction (or terminator, keyed by its `term_label`)
    /// always observes the constant `k`.
    pub const_uses: BTreeMap<(Label, Ident), i64>,
    /// `Bind` / `Assign`-to-local sites whose defined value is never
    /// used. The binding side effect may still matter; only the stored
    /// *value* is dead.
    pub dead_defs: BTreeSet<Label>,
    /// Declared locals (params excluded) that no path reads before
    /// defining. Writes to these can never leak a stale pre-reboot
    /// value, so they are safe to keep volatile.
    pub always_bound: BTreeSet<Ident>,
    /// Locals whose address escapes via `&x` call arguments.
    pub address_taken: BTreeSet<Ident>,
    /// Number of phi nodes the lifting placed (diagnostic surface).
    pub phis_placed: usize,
}

/// SSA facts for every function of a program, indexed by `FuncId`.
#[derive(Debug, Clone, Default)]
pub struct ProgramSsa {
    /// Per-function facts, indexed by [`ocelot_ir::FuncId`] position.
    pub funcs: Vec<FuncSsa>,
}

impl ProgramSsa {
    /// Analyzes every function of `p`.
    pub fn analyze(p: &Program) -> Self {
        let _span = ocelot_telemetry::span!("opt");
        ProgramSsa {
            funcs: p.funcs.iter().map(analyze_func).collect(),
        }
    }
}

/// Lifts `f` into SSA and extracts its facts.
pub fn analyze_func(f: &Function) -> FuncSsa {
    Builder::new(f).run()
}

/// Variables the rename tracks: declared locals and by-value params.
/// By-ref params alias caller storage and globals live in NV — neither
/// has an SSA story here.
fn tracked_vars(f: &Function) -> BTreeSet<Ident> {
    let mut vars: BTreeSet<Ident> = f.locals.iter().cloned().collect();
    for p in &f.params {
        if !p.by_ref {
            vars.insert(p.name.clone());
        }
    }
    vars
}

/// The tracked variable directly (re)defined by `op`, if any. `&x`
/// call arguments are *also* definitions (the callee may write back);
/// those are handled separately because one call can define several.
fn scalar_def(op: &Op) -> Option<&Ident> {
    match op {
        Op::Bind { var, .. } | Op::Input { var, .. } => Some(var),
        Op::Assign {
            place: Place::Var(x),
            ..
        } => Some(x),
        Op::Call { dst, .. } => dst.as_ref(),
        _ => None,
    }
}

/// All tracked variables `op` defines, including `&x` arguments.
fn op_defs<'a>(op: &'a Op, tracked: &BTreeSet<Ident>) -> Vec<&'a Ident> {
    let mut out = Vec::new();
    if let Some(d) = scalar_def(op) {
        if tracked.contains(d) {
            out.push(d);
        }
    }
    if let Op::Call { args, .. } = op {
        for a in args {
            if let Arg::Ref(x) = a {
                if tracked.contains(x) && !out.contains(&x) {
                    out.push(x);
                }
            }
        }
    }
    out
}

struct Builder<'f> {
    f: &'f Function,
    cfg: Cfg,
    dom: DomTree,
    tracked: BTreeSet<Ident>,
    vals: Vec<Val>,
    /// Rename stacks, one per tracked variable.
    stacks: HashMap<Ident, Vec<ValId>>,
    /// Phi nodes per block: `(var, value)` in placement order.
    phis: BTreeMap<BlockId, Vec<(Ident, ValId)>>,
    /// Vars that have some use reaching the entry `undef`.
    undef_read: BTreeSet<Ident>,
    out: FuncSsa,
}

impl<'f> Builder<'f> {
    fn new(f: &'f Function) -> Self {
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let tracked = tracked_vars(f);
        Builder {
            f,
            cfg,
            dom,
            tracked,
            vals: Vec::new(),
            stacks: HashMap::new(),
            phis: BTreeMap::new(),
            undef_read: BTreeSet::new(),
            out: FuncSsa::default(),
        }
    }

    fn new_val(&mut self, lattice: Lattice, def_site: Option<Label>) -> ValId {
        let id = ValId(self.vals.len() as u32);
        self.vals.push(Val {
            lattice,
            phi_args: Vec::new(),
            uses: 0,
            read_uses: 0,
            def_site,
        });
        id
    }

    fn run(mut self) -> FuncSsa {
        for a in self.address_taken_vars() {
            self.out.address_taken.insert(a);
        }
        self.place_phis();

        // Entry state: params are opaque run-time values, locals undef.
        let params: Vec<Ident> = self
            .f
            .params
            .iter()
            .filter(|p| !p.by_ref)
            .map(|p| p.name.clone())
            .collect();
        for v in self.tracked.clone() {
            let is_param = params.contains(&v);
            let lat = if is_param {
                Lattice::Opaque
            } else {
                Lattice::Undef
            };
            let id = self.new_val(lat, None);
            self.stacks.insert(v, vec![id]);
        }

        self.rename(self.f.entry);
        self.finish()
    }

    fn address_taken_vars(&self) -> BTreeSet<Ident> {
        fn expr_refs(e: &Expr, out: &mut BTreeSet<Ident>) {
            match e {
                Expr::Ref(x) => {
                    out.insert(x.clone());
                }
                Expr::Index(_, i) => expr_refs(i, out),
                Expr::Binary(_, l, r) => {
                    expr_refs(l, out);
                    expr_refs(r, out);
                }
                Expr::Unary(_, e) => expr_refs(e, out),
                _ => {}
            }
        }
        let mut out = BTreeSet::new();
        for b in &self.f.blocks {
            for inst in &b.instrs {
                match &inst.op {
                    Op::Call { args, .. } => {
                        for a in args {
                            match a {
                                Arg::Ref(x) => {
                                    out.insert(x.clone());
                                }
                                Arg::Value(e) => expr_refs(e, &mut out),
                            }
                        }
                    }
                    Op::Bind { src, .. } | Op::Assign { src, .. } => expr_refs(src, &mut out),
                    Op::Output { args, .. } => {
                        for e in args {
                            expr_refs(e, &mut out);
                        }
                    }
                    _ => {}
                }
            }
            match &b.term {
                Terminator::Branch { cond, .. } => expr_refs(cond, &mut out),
                Terminator::Ret(Some(e)) => expr_refs(e, &mut out),
                _ => {}
            }
        }
        out
    }

    /// Standard iterated-dominance-frontier phi placement over each
    /// variable's definition blocks.
    fn place_phis(&mut self) {
        let df = dominance_frontier(self.f, &self.cfg, &self.dom);
        // Definition blocks per tracked var (the entry block counts as
        // a definition point: params/undef are "defined" there).
        let mut def_blocks: BTreeMap<Ident, BTreeSet<BlockId>> = BTreeMap::new();
        for v in &self.tracked {
            def_blocks
                .entry(v.clone())
                .or_default()
                .insert(self.f.entry);
        }
        for b in &self.f.blocks {
            for inst in &b.instrs {
                for d in op_defs(&inst.op, &self.tracked) {
                    def_blocks.entry(d.clone()).or_default().insert(b.id);
                }
            }
        }
        for (v, blocks) in def_blocks {
            let mut work: Vec<BlockId> = blocks.iter().copied().collect();
            let mut has_phi: BTreeSet<BlockId> = BTreeSet::new();
            while let Some(b) = work.pop() {
                for &y in &df[b.0 as usize] {
                    if has_phi.insert(y) {
                        self.phis.entry(y).or_default().push((v.clone(), ValId(0)));
                        if !blocks.contains(&y) {
                            work.push(y);
                        }
                    }
                }
            }
        }
        // Materialize phi values now that the set is fixed.
        let placements: Vec<(BlockId, usize)> =
            self.phis.iter().map(|(b, ps)| (*b, ps.len())).collect();
        for (b, n) in placements {
            for i in 0..n {
                let id = self.new_val(Lattice::Opaque, None);
                self.phis.get_mut(&b).expect("placed")[i].1 = id;
            }
        }
        self.out.phis_placed = self.phis.values().map(Vec::len).sum();
    }

    fn top(&self, v: &str) -> Option<ValId> {
        self.stacks.get(v).and_then(|s| s.last().copied())
    }

    /// Records a read of `v` at use site `at`, returning its lattice
    /// value.
    fn use_var(&mut self, v: &str, at: Label) -> Lattice {
        let Some(id) = self.top(v) else {
            return Lattice::Opaque; // global / by-ref: not tracked
        };
        self.vals[id.0 as usize].uses += 1;
        self.vals[id.0 as usize].read_uses += 1;
        let lat = self.vals[id.0 as usize].lattice;
        if let Lattice::Const(k) = lat {
            self.out.const_uses.insert((at, v.to_string()), k);
        }
        lat
    }

    /// Evaluates `e` over the current rename state. Reads of globals,
    /// arrays, and derefs are opaque but still walked (array index
    /// subexpressions contain variable uses).
    fn eval(&mut self, e: &Expr, at: Label) -> Lattice {
        match e {
            Expr::Int(k) => Lattice::Const(*k),
            Expr::Bool(b) => Lattice::Const(i64::from(*b)),
            Expr::Var(x) => {
                if self.tracked.contains(x) && !self.out.address_taken.contains(x) {
                    self.use_var(x, at)
                } else {
                    // Globals and escaping locals: count the use (for
                    // dead-def purposes the escaping local read still
                    // pins its def) but never fold.
                    self.use_var(x, at);
                    self.out.const_uses.remove(&(at, x.clone()));
                    Lattice::Opaque
                }
            }
            Expr::Deref(x) | Expr::Ref(x) => {
                self.use_var(x, at);
                self.out.const_uses.remove(&(at, x.clone()));
                Lattice::Opaque
            }
            Expr::Index(_, i) => {
                self.eval(i, at);
                Lattice::Opaque
            }
            Expr::Binary(op, l, r) => {
                let a = self.eval(l, at);
                let b = self.eval(r, at);
                match (a, b) {
                    (Lattice::Const(x), Lattice::Const(y)) => Lattice::Const(fold_binop(*op, x, y)),
                    _ => Lattice::Opaque,
                }
            }
            Expr::Unary(op, e) => match self.eval(e, at) {
                Lattice::Const(x) => Lattice::Const(fold_unop(*op, x)),
                _ => Lattice::Opaque,
            },
        }
    }

    fn define(&mut self, v: &Ident, lattice: Lattice, site: Option<Label>) {
        let id = self.new_val(lattice, site);
        self.stacks.get_mut(v).expect("tracked var").push(id);
    }

    fn rename(&mut self, b: BlockId) {
        let mut pushed: Vec<Ident> = Vec::new();

        // Phi definitions first: their value is pessimistically opaque
        // (back-edge operands are not known yet), refined in finish().
        if let Some(phis) = self.phis.get(&b).cloned() {
            for (v, id) in phis {
                self.stacks.get_mut(&v).expect("tracked").push(id);
                pushed.push(v);
            }
        }

        let block = self.f.block(b).clone();
        for inst in &block.instrs {
            let at = inst.label;
            match &inst.op {
                Op::Skip | Op::AtomStart { .. } | Op::AtomEnd { .. } | Op::Annot { .. } => {}
                Op::Bind { var, src } => {
                    let lat = self.eval(src, at);
                    if self.tracked.contains(var) {
                        self.define(var, lat, Some(at));
                        pushed.push(var.clone());
                    }
                }
                Op::Assign { place, src } => {
                    let lat = self.eval(src, at);
                    match place {
                        Place::Var(x) if self.tracked.contains(x) => {
                            self.define(x, lat, Some(at));
                            pushed.push(x.clone());
                        }
                        Place::Var(_) => {}
                        Place::Index(_, i) => {
                            let i = i.clone();
                            self.eval(&i, at);
                        }
                        Place::Deref(x) => {
                            self.use_var(x, at);
                        }
                    }
                }
                Op::Input { var, .. } => {
                    if self.tracked.contains(var) {
                        self.define(var, Lattice::Opaque, None);
                        pushed.push(var.clone());
                    }
                }
                Op::Call { dst, args, .. } => {
                    for a in args {
                        match a {
                            Arg::Value(e) => {
                                let e = e.clone();
                                self.eval(&e, at);
                            }
                            Arg::Ref(x) => {
                                // Address-taken: the callee may read the
                                // current value and write a new one.
                                self.use_var(x, at);
                                if self.tracked.contains(x) {
                                    self.define(x, Lattice::Opaque, None);
                                    pushed.push(x.clone());
                                }
                            }
                        }
                    }
                    if let Some(d) = dst {
                        if self.tracked.contains(d) {
                            self.define(d, Lattice::Opaque, None);
                            pushed.push(d.clone());
                        }
                    }
                }
                Op::Output { args, .. } => {
                    for e in args {
                        let e = e.clone();
                        self.eval(&e, at);
                    }
                }
            }
        }
        match &block.term {
            Terminator::Branch { cond, .. } => {
                let cond = cond.clone();
                self.eval(&cond, block.term_label);
            }
            Terminator::Ret(Some(e)) => {
                let e = e.clone();
                self.eval(&e, block.term_label);
            }
            _ => {}
        }

        // Fill phi arguments of successors from this block's exit state.
        for s in block.term.successors() {
            if let Some(phis) = self.phis.get(&s).cloned() {
                for (v, phi_id) in phis {
                    if let Some(arg) = self.top(&v) {
                        self.vals[arg.0 as usize].uses += 1;
                        self.vals[phi_id.0 as usize].phi_args.push(arg);
                    }
                }
            }
        }

        // Recurse into dominator-tree children.
        let children: Vec<BlockId> = self
            .f
            .blocks
            .iter()
            .map(|blk| blk.id)
            .filter(|&c| c != b && self.dom.idom(c) == Some(b))
            .collect();
        for c in children {
            self.rename(c);
        }

        for v in pushed.iter().rev() {
            self.stacks.get_mut(v).expect("tracked").pop();
        }
    }

    fn finish(mut self) -> FuncSsa {
        // Undef reachability through the phi graph (cycles default to
        // "no undef" unless an operand proves otherwise).
        let n = self.vals.len();
        let mut reaches_undef = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                if reaches_undef[i] {
                    continue;
                }
                let hit = match self.vals[i].lattice {
                    Lattice::Undef => true,
                    _ => self.vals[i]
                        .phi_args
                        .iter()
                        .any(|a| reaches_undef[a.0 as usize]),
                };
                if hit {
                    reaches_undef[i] = true;
                    changed = true;
                }
            }
        }
        // A use of var v observing an undef-reaching value marks v. The
        // rename recorded uses against values, not vars, so re-derive:
        // every value on v's stack belongs to v; simpler to re-walk?
        // The mapping is already implicit: undef entry values carry
        // def_site None and lattice Undef and were created per-var in
        // run(); phi membership is per-var in self.phis. Walk both.
        let mut var_of_val: HashMap<u32, Ident> = HashMap::new();
        for (v, stack) in &self.stacks {
            // Only the entry value remains on each stack after rename.
            for id in stack {
                var_of_val.insert(id.0, v.clone());
            }
        }
        for phis in self.phis.values() {
            for (v, id) in phis {
                var_of_val.insert(id.0, v.clone());
            }
        }
        // Only direct operand reads observe a value. A phi that merges
        // undef but is overwritten before any read never exposes it —
        // `reaches_undef` already propagated through phi chains, so any
        // *read* phi downstream of undef is caught here.
        for (i, val) in self.vals.iter().enumerate() {
            if val.read_uses > 0 && reaches_undef[i] {
                if let Some(v) = var_of_val.get(&(i as u32)) {
                    self.undef_read.insert(v.clone());
                }
            }
        }
        // Values defined by Bind/Assign never reach undef themselves,
        // but a *use* of such a def is attributed via phi chains only —
        // an ordinary def used directly cannot observe undef. What can:
        // entry values and phis, both covered above.

        for v in &self.tracked {
            let is_param = self.f.params.iter().any(|p| &p.name == v);
            if !is_param && !self.undef_read.contains(v) && !self.out.address_taken.contains(v) {
                self.out.always_bound.insert(v.clone());
            }
        }

        for val in &self.vals {
            if val.uses == 0 {
                if let Some(site) = val.def_site {
                    let defines_escaping = self
                        .f
                        .inst(site)
                        .and_then(|i| scalar_def(&i.op).cloned())
                        .is_some_and(|x| self.out.address_taken.contains(&x));
                    if !defines_escaping {
                        self.out.dead_defs.insert(site);
                    }
                }
            }
        }

        // Never fold or kill escaping locals.
        let escaping = self.out.address_taken.clone();
        self.out
            .const_uses
            .retain(|(_, v), _| !escaping.contains(v));
        self.out
    }
}

/// Constant folding with the runtime's exact arithmetic: wrapping
/// two's-complement ops, division/remainder by zero evaluating to 0,
/// comparisons and logicals producing 1/0 (non-short-circuit).
pub fn fold_binop(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::And => i64::from(a != 0 && b != 0),
        BinOp::Or => i64::from(a != 0 || b != 0),
    }
}

/// Unary folding matching the runtime (`-` wraps, `!` maps 0 ↔ 1).
pub fn fold_unop(op: UnOp, v: i64) -> i64 {
    match op {
        UnOp::Neg => v.wrapping_neg(),
        UnOp::Not => i64::from(v == 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::lower::compile;

    fn ssa_main(src: &str) -> (ocelot_ir::Program, FuncSsa) {
        let p = compile(src).unwrap();
        let facts = analyze_func(p.func(p.main));
        (p, facts)
    }

    fn label_of_out(p: &ocelot_ir::Program) -> Label {
        let f = p.func(p.main);
        f.iter_insts()
            .find_map(|(_, i)| matches!(i.op, Op::Output { .. }).then_some(i.label))
            .expect("program has an out()")
    }

    #[test]
    fn straight_line_constants_propagate_to_uses() {
        let (p, facts) = ssa_main("fn main() { let a = 3; let b = a + 4; out(log, b); }");
        let out = label_of_out(&p);
        assert_eq!(facts.const_uses.get(&(out, "b".into())), Some(&7));
    }

    #[test]
    fn branch_join_of_equal_constants_is_not_folded_pessimistically() {
        // Both arms redefine c to different constants: the join phi is
        // opaque and the use after the if must NOT fold.
        let (p, facts) = ssa_main(
            "sensor s; fn main() { let c = 1; let v = in(s); \
             if v > 0 { c = 2; } else { c = 3; } out(log, c); }",
        );
        let out = label_of_out(&p);
        assert_eq!(facts.const_uses.get(&(out, "c".into())), None);
        assert!(facts.phis_placed > 0, "join requires a phi for c");
    }

    #[test]
    fn single_def_constant_survives_a_branch() {
        // c is defined once before the branch; no redefinition, so the
        // use after the join still sees the constant.
        let (p, facts) = ssa_main(
            "sensor s; fn main() { let c = 7; let v = in(s); \
             if v > 0 { let d = 1; } else { skip; } out(log, c); }",
        );
        let out = label_of_out(&p);
        assert_eq!(facts.const_uses.get(&(out, "c".into())), Some(&7));
    }

    #[test]
    fn input_and_call_results_are_opaque() {
        let (p, facts) =
            ssa_main("sensor s; fn main() { let v = in(s); let w = v + 0; out(log, w); }");
        let out = label_of_out(&p);
        assert_eq!(facts.const_uses.get(&(out, "w".into())), None);
    }

    #[test]
    fn unused_definitions_are_dead() {
        let (p, facts) = ssa_main("fn main() { let a = 3; let b = 5; out(log, b); }");
        let f = p.func(p.main);
        let a_site = f
            .iter_insts()
            .find_map(|(_, i)| match &i.op {
                Op::Bind { var, .. } if var == "a" => Some(i.label),
                _ => None,
            })
            .unwrap();
        assert!(facts.dead_defs.contains(&a_site), "a is never read");
    }

    #[test]
    fn overwritten_definition_is_dead_but_last_is_live() {
        let (p, facts) = ssa_main("fn main() { let a = 3; a = 4; out(log, a); }");
        let f = p.func(p.main);
        let bind = f
            .iter_insts()
            .find_map(|(_, i)| match &i.op {
                Op::Bind { var, .. } if var == "a" => Some(i.label),
                _ => None,
            })
            .unwrap();
        let assign = f
            .iter_insts()
            .find_map(|(_, i)| match &i.op {
                Op::Assign {
                    place: Place::Var(x),
                    ..
                } if x == "a" => Some(i.label),
                _ => None,
            })
            .unwrap();
        assert!(facts.dead_defs.contains(&bind), "first def overwritten");
        assert!(!facts.dead_defs.contains(&assign), "second def is read");
    }

    #[test]
    fn loop_counter_is_not_constant_across_the_back_edge() {
        let (p, facts) =
            ssa_main("fn main() { let i = 0; while i < 3 { i = i + 1; } out(log, i); }");
        let out = label_of_out(&p);
        assert_eq!(
            facts.const_uses.get(&(out, "i".into())),
            None,
            "loop phis stay opaque"
        );
        assert!(facts.always_bound.contains("i"));
    }

    #[test]
    fn all_reads_dominated_by_defs_means_always_bound() {
        let (_, facts) = ssa_main("fn main() { let a = 1; let b = a + 1; out(log, b); }");
        assert!(facts.always_bound.contains("a"));
        assert!(facts.always_bound.contains("b"));
    }

    #[test]
    fn branch_local_read_after_join_is_not_always_bound() {
        // `t` is defined only on one arm and read at the join — the IR
        // has no block scoping, so this lowers to an in-scope-but-maybe-
        // unbound local.
        let (p, facts) =
            ssa_main("fn main() { let c = 1; if c > 0 { let t = 5; out(log, t); } out(log, t); }");
        assert!(
            !facts.always_bound.contains("t"),
            "the else path reads t before any def"
        );
        // And the partial def must not be folded at the join use.
        let out = p
            .func(p.main)
            .iter_insts()
            .filter_map(|(_, i)| match &i.op {
                Op::Output { .. } => Some(i.label),
                _ => None,
            })
            .last()
            .unwrap();
        assert_eq!(facts.const_uses.get(&(out, "t".into())), None);
    }

    #[test]
    fn address_taken_locals_are_excluded_everywhere() {
        let (p, facts) = ssa_main(
            "fn bump(&r) { *r = *r + 1; } \
             fn main() { let a = 3; bump(&a); out(log, a); }",
        );
        assert!(facts.address_taken.contains("a"));
        assert!(!facts.always_bound.contains("a"));
        let out = label_of_out(&p);
        assert_eq!(
            facts.const_uses.get(&(out, "a".into())),
            None,
            "callee write-back invalidates the constant"
        );
        assert!(facts.dead_defs.is_empty(), "escaping defs are never dead");
    }

    #[test]
    fn params_are_opaque_and_never_always_bound() {
        let p =
            compile("fn g(x) { out(log, x + 0); return 0; } fn main() { let r = g(2); }").unwrap();
        let g = p.func(p.func_by_name("g").unwrap());
        let facts = analyze_func(g);
        assert!(!facts.always_bound.contains("x"), "params bind at entry");
        assert!(facts.const_uses.iter().all(|((_, v), _)| v != "x"));
    }

    #[test]
    fn folding_matches_runtime_arithmetic() {
        assert_eq!(fold_binop(BinOp::Div, 7, 0), 0, "div by zero is 0");
        assert_eq!(fold_binop(BinOp::Rem, 7, 0), 0);
        assert_eq!(fold_binop(BinOp::Add, i64::MAX, 1), i64::MIN, "wrapping");
        assert_eq!(fold_binop(BinOp::Lt, 1, 2), 1);
        assert_eq!(fold_binop(BinOp::And, 2, 0), 0);
        assert_eq!(fold_unop(UnOp::Not, 0), 1);
        assert_eq!(fold_unop(UnOp::Neg, i64::MIN), i64::MIN);
    }

    #[test]
    fn dead_def_with_side_effect_free_src_only_kills_the_value() {
        // The dead def of `a` must not take the *binding* with it: that
        // is the backend's call. Here we only assert the fact surface.
        let (_, facts) = ssa_main("fn main() { let a = 1 + 2; out(log, 9); }");
        assert_eq!(facts.dead_defs.len(), 1);
        assert!(facts.always_bound.contains("a"));
    }

    #[test]
    fn whole_program_analysis_covers_every_function() {
        let p = compile(
            "fn helper() { let h = 2; return h; } \
             fn main() { let x = helper(); out(log, x); }",
        )
        .unwrap();
        let ssa = ProgramSsa::analyze(&p);
        assert_eq!(ssa.funcs.len(), p.funcs.len());
        let h = p.func_by_name("helper").unwrap();
        assert!(ssa.funcs[h.0 as usize].always_bound.contains("h"));
    }
}
