//! # ocelot-analysis
//!
//! Compiler analyses for the Ocelot reproduction: dominator and
//! post-dominator trees with closest-common-(post)dominator queries
//! (what Algorithm 1 of the paper takes from LLVM), natural-loop
//! detection, the interprocedural context-sensitive input-taint analysis
//! with provenance call chains (Appendix I), Figure-5-style function
//! summaries, and the WAR/EMW non-volatile footprint analysis that sizes
//! atomic-region undo logs.
//!
//! ## Examples
//!
//! ```
//! use ocelot_analysis::taint::TaintAnalysis;
//!
//! let program = ocelot_ir::compile(r#"
//!     sensor temp;
//!     fn read() { let t = in(temp); return t; }
//!     fn main() { let x = read(); fresh(x); out(log, x); }
//! "#)?;
//! ocelot_ir::validate(&program)?;
//! let taint = TaintAnalysis::run(&program);
//! let annot = program.annotations()[0].0;
//! let chains = taint.annotation_inputs(&program, annot);
//! assert_eq!(chains.len(), 1); // one input op, one calling context
//! # Ok::<(), ocelot_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod chains;
pub mod dom;
pub mod effects;
pub mod flow;
pub mod incremental;
pub mod loops;
pub mod ssa;
pub mod summary;
pub mod taint;
pub mod war;

pub use chains::{static_input_chains, unique_contexts, ChainId, ChainTable};
pub use dom::{dominance_frontier, point_dominates, point_post_dominates, DomTree, Point};
pub use effects::{global_effects, GlobalEffects};
pub use flow::ValueFlow;
pub use incremental::{input_fingerprints, FlowCache, FuncCache, IncrementalStats};
pub use loops::LoopForest;
pub use ssa::{analyze_func, FuncSsa, ProgramSsa};
pub use summary::{build_summaries, FuncSummary};
pub use taint::{Prov, TaintAnalysis, TaintSet, TaintSource};
pub use war::{region_effects, whole_function_effects, RegionEffects};
