//! Interprocedural, context-sensitive input-taint analysis with
//! provenance (the paper's Appendix I, Algorithm 2).
//!
//! The analysis answers: *which input operations does this value depend
//! on, and through which chain of calls?* Provenance call chains
//! disambiguate different calls to the same input-wrapping function
//! (Figure 6(b): two calls to `pres` from `confirm` yield two distinct
//! chains), which region inference needs to pull every involved call
//! site into one atomic region.
//!
//! Structure:
//!
//! 1. **Per-function flow** ([`FuncFlow`]) — computed callees-first. Taint
//!    sources are *symbolic*: a local input operation (with the chain of
//!    call sites from this function down to it), a parameter's entry
//!    value, or a global's entry value. Tracks data flow and control flow
//!    (a definition under a tainted branch is tainted, per §4.3).
//! 2. **Context enumeration** — every acyclic chain of call sites from
//!    `main` to each function.
//! 3. **Expansion** ([`TaintAnalysis::expand`]) — resolves symbolic
//!    sources into full chains from `main`, fixpointing the taint stored
//!    in non-volatile globals across the whole program.

use crate::dom::DomTree;
use crate::effects::{expr_reads, op_reads};
use ocelot_ir::ast::{Arg, Expr};
use ocelot_ir::cfg::Cfg;
use ocelot_ir::{CallGraph, FuncId, Function, InstrRef, Label, Op, Place, Program, Terminator};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// A provenance chain: call sites descending from some scope, ending at
/// the input instruction itself. A *full* chain starts in `main`.
pub type Prov = Vec<InstrRef>;

/// A symbolic taint source, relative to one function's scope.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TaintSource {
    /// An input operation reached via `Prov` (first element is an
    /// instruction in this function: the input itself or a call site).
    Input(Prov),
    /// The entry value of a parameter (for by-ref parameters, the value
    /// behind the reference at entry).
    Param(String),
    /// The entry value of a non-volatile global.
    Global(String),
}

/// A set of symbolic taint sources.
pub type TaintSet = BTreeSet<TaintSource>;

/// A memory location tracked by the per-function analysis.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Loc {
    Local(String),
    DerefParam(String),
    Global(String),
}

type State = BTreeMap<Loc, TaintSet>;

/// Per-function taint-flow summary (the information content of the
/// paper's Figure 5 function summaries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncFlow {
    /// Taint of the returned value.
    pub ret: TaintSet,
    /// Final taint of the cell behind each by-ref parameter.
    pub ref_out: BTreeMap<String, TaintSet>,
    /// Exit taint of each global this function (transitively) writes.
    pub global_out: BTreeMap<String, TaintSet>,
    /// Taint of the value defined at each defining instruction.
    pub def_taint: BTreeMap<Label, TaintSet>,
    /// Taint of the annotated variable at each `Annot` instruction.
    pub annot_taint: BTreeMap<Label, TaintSet>,
    /// Taint of each call argument at each call site: for by-value
    /// arguments the argument expression's taint, for by-ref arguments
    /// the entry taint of the referenced cell.
    pub call_arg_taint: BTreeMap<(Label, usize), TaintSet>,
    /// Labels (instructions and terminators) that *use* each variable.
    /// Passing `&x` to a callee counts as a use only when the callee may
    /// read the incoming value (pure out-parameters are writes, not
    /// uses — `Fresh` policies care about value consumption).
    pub var_uses: BTreeMap<String, BTreeSet<Label>>,
    /// By-ref parameters whose *incoming* value may be read by this
    /// function (directly or via callees).
    pub ref_param_read: BTreeSet<String>,
}

/// The whole-program analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintAnalysis {
    /// Per-function flow summaries, indexed by [`FuncId`].
    pub flows: Vec<FuncFlow>,
    /// Calling contexts per function: each context is the chain of call
    /// sites from `main` (empty for `main` itself). Functions unreachable
    /// from `main` have no contexts.
    pub contexts: Vec<Vec<Prov>>,
    /// Fixpoint of full-provenance taint stored in each global.
    pub global_taint: BTreeMap<String, BTreeSet<Prov>>,
}

impl TaintAnalysis {
    /// Runs the analysis on a validated program.
    ///
    /// # Panics
    ///
    /// Panics on recursive programs; run [`ocelot_ir::validate()`] first.
    pub fn run(p: &Program) -> Self {
        let _span = ocelot_telemetry::span!("analysis");
        let cg = CallGraph::new(p);
        let order = cg
            .topo_callees_first(p)
            .expect("taint analysis requires an acyclic call graph");

        let mut flows: Vec<FuncFlow> = vec![FuncFlow::default(); p.funcs.len()];
        for f in order {
            let flow = analyze_function(p, p.func(f), &flows);
            flows[f.0 as usize] = flow;
        }

        Self::from_flows(p, flows)
    }

    /// Assembles the whole-program result from already-computed
    /// per-function flows: context enumeration plus the global-taint
    /// fixpoint. This is the non-incremental tail of [`TaintAnalysis::run`];
    /// [`crate::incremental::FlowCache`] feeds it a mix of cached and
    /// freshly-analyzed flows and gets an identical result.
    ///
    /// # Panics
    ///
    /// Panics on recursive programs (context enumeration requires an
    /// acyclic call graph) or when `flows.len() != p.funcs.len()`.
    pub fn from_flows(p: &Program, flows: Vec<FuncFlow>) -> Self {
        assert_eq!(flows.len(), p.funcs.len(), "one flow per function");
        let cg = CallGraph::new(p);
        let contexts = enumerate_contexts(p, &cg);
        let mut analysis = TaintAnalysis {
            flows,
            contexts,
            global_taint: BTreeMap::new(),
        };
        analysis.fixpoint_global_taint(p);
        analysis
    }

    /// Iterates the taint stored in globals to a fixpoint: each pass
    /// expands every function's `global_out` under every context and
    /// unions the resulting full chains into the global map.
    fn fixpoint_global_taint(&mut self, p: &Program) {
        loop {
            let mut changed = false;
            for f in &p.funcs {
                let outs: Vec<(String, TaintSet)> = self.flows[f.id.0 as usize]
                    .global_out
                    .iter()
                    .map(|(g, t)| (g.clone(), t.clone()))
                    .collect();
                let ctxs = self.contexts[f.id.0 as usize].clone();
                for ctx in &ctxs {
                    for (g, taints) in &outs {
                        for src in taints {
                            for chain in self.expand(p, f.id, ctx, src) {
                                if self
                                    .global_taint
                                    .entry(g.clone())
                                    .or_default()
                                    .insert(chain)
                                {
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Expands a symbolic source observed in function `f` under context
    /// `ctx` into the set of full provenance chains from `main`.
    pub fn expand(&self, p: &Program, f: FuncId, ctx: &Prov, src: &TaintSource) -> BTreeSet<Prov> {
        match src {
            TaintSource::Input(suffix) => {
                let mut chain = ctx.clone();
                chain.extend(suffix.iter().copied());
                BTreeSet::from([chain])
            }
            TaintSource::Global(g) => self.global_taint.get(g).cloned().unwrap_or_default(),
            TaintSource::Param(param) => {
                let Some(site) = ctx.last().copied() else {
                    // `main` takes no arguments; a Param source with an
                    // empty context cannot carry input taint.
                    return BTreeSet::new();
                };
                let caller = site.func;
                let parent_ctx: Prov = ctx[..ctx.len() - 1].to_vec();
                let idx = match param_index(p, f, param) {
                    Some(i) => i,
                    None => return BTreeSet::new(),
                };
                let arg_taint = self.flows[caller.0 as usize]
                    .call_arg_taint
                    .get(&(site.label, idx))
                    .cloned()
                    .unwrap_or_default();
                let mut out = BTreeSet::new();
                for s in &arg_taint {
                    out.extend(self.expand(p, caller, &parent_ctx, s));
                }
                out
            }
        }
    }

    /// Expands a whole taint set under every context of `f`.
    pub fn expand_all_contexts(&self, p: &Program, f: FuncId, taints: &TaintSet) -> BTreeSet<Prov> {
        let mut out = BTreeSet::new();
        for ctx in &self.contexts[f.0 as usize] {
            for src in taints {
                out.extend(self.expand(p, f, ctx, src));
            }
        }
        out
    }

    /// Full input chains on which the variable annotated at `at`
    /// depends, across all calling contexts.
    pub fn annotation_inputs(&self, p: &Program, at: InstrRef) -> BTreeSet<Prov> {
        let flow = &self.flows[at.func.0 as usize];
        let Some(taints) = flow.annot_taint.get(&at.label) else {
            return BTreeSet::new();
        };
        self.expand_all_contexts(p, at.func, taints)
    }

    /// Labels in `f` that use variable `var` (excluding annotations).
    pub fn use_labels(&self, f: FuncId, var: &str) -> BTreeSet<Label> {
        self.flows[f.0 as usize]
            .var_uses
            .get(var)
            .cloned()
            .unwrap_or_default()
    }
}

fn param_index(p: &Program, f: FuncId, param: &str) -> Option<usize> {
    p.func(f).params.iter().position(|q| q.name == param)
}

/// Enumerates all call-site chains from `main` per function.
fn enumerate_contexts(p: &Program, cg: &CallGraph) -> Vec<Vec<Prov>> {
    let mut ctxs: Vec<Vec<Prov>> = vec![Vec::new(); p.funcs.len()];
    ctxs[p.main.0 as usize].push(Vec::new());
    // Process callers before callees.
    let mut order = cg
        .topo_callees_first(p)
        .expect("contexts require an acyclic call graph");
    order.reverse();
    for f in order {
        let f_ctxs = ctxs[f.0 as usize].clone();
        for edge in cg.callees(f) {
            for ctx in &f_ctxs {
                let mut child = ctx.clone();
                child.push(edge.site);
                ctxs[edge.callee.0 as usize].push(child);
            }
        }
    }
    for c in &mut ctxs {
        c.sort();
        c.dedup();
    }
    ctxs
}

// ---------------------------------------------------------------------
// Per-function flow analysis
// ---------------------------------------------------------------------

pub(crate) fn analyze_function(p: &Program, f: &Function, flows: &[FuncFlow]) -> FuncFlow {
    let cfg = Cfg::new(f);
    let pdom = DomTree::post_dominators(f, &cfg);
    let ctrl_parents = control_dependence(f, &cfg, &pdom);

    let entry_state = initial_state(p, f);
    let mut block_in: HashMap<u32, State> = HashMap::new();
    block_in.insert(f.entry.0, entry_state);

    // Condition taint of each branch block, from the last processing pass.
    let mut cond_taint: HashMap<u32, TaintSet> = HashMap::new();

    let mut worklist: VecDeque<u32> = cfg.rpo().iter().map(|b| b.0).collect();
    let mut guard = 0usize;
    let budget = 64 * (f.blocks.len() + 4) * (f.blocks.len() + 4);
    while let Some(b) = worklist.pop_front() {
        guard += 1;
        assert!(
            guard <= budget.max(100_000),
            "taint fixpoint failed to converge in `{}`",
            f.name
        );
        let Some(in_state) = block_in.get(&b).cloned() else {
            continue;
        };
        let ctrl = ctrl_taint_of(&ctrl_parents, &cond_taint, b);
        let (out_state, branch_taint) =
            transfer_block(p, f, flows, &f.blocks[b as usize], in_state, &ctrl, None);
        if let Some(bt) = branch_taint {
            let entry = cond_taint.entry(b).or_default();
            let before = entry.len();
            entry.extend(bt);
            if entry.len() != before {
                // Re-queue control-dependent blocks.
                for (blk, parents) in &ctrl_parents {
                    if parents.contains(&b) {
                        worklist.push_back(*blk);
                    }
                }
            }
        }
        for succ in cfg.succs(ocelot_ir::BlockId(b)) {
            let entry = block_in.entry(succ.0).or_default();
            let mut changed = false;
            for (loc, taint) in &out_state {
                let slot = entry.entry(loc.clone()).or_default();
                let before = slot.len();
                slot.extend(taint.iter().cloned());
                if slot.len() != before {
                    changed = true;
                }
            }
            if changed {
                worklist.push_back(succ.0);
            }
        }
    }

    // Recording pass: states are at fixpoint; walk each block once to
    // populate the per-instruction maps.
    let mut flow = FuncFlow::default();
    let mut all_observed_taints: Vec<TaintSet> = Vec::new();
    for b in cfg.rpo() {
        let Some(in_state) = block_in.get(&b.0).cloned() else {
            continue;
        };
        let ctrl = ctrl_taint_of(&ctrl_parents, &cond_taint, b.0);
        let (out_state, branch_taint) = transfer_block(
            p,
            f,
            flows,
            &f.blocks[b.0 as usize],
            in_state,
            &ctrl,
            Some(&mut flow),
        );
        if let Some(bt) = branch_taint {
            all_observed_taints.push(bt);
        }
        let block = &f.blocks[b.0 as usize];
        // Record uses at the terminator.
        match &block.term {
            Terminator::Branch { cond, .. } => {
                for v in expr_reads(cond) {
                    flow.var_uses.entry(v).or_default().insert(block.term_label);
                }
            }
            Terminator::Ret(Some(e)) => {
                for v in expr_reads(e) {
                    flow.var_uses.entry(v).or_default().insert(block.term_label);
                }
            }
            _ => {}
        }
        if b == &f.exit {
            if let Terminator::Ret(Some(e)) = &block.term {
                flow.ret = taint_expr(p, f, e, &out_state);
            }
            for param in &f.params {
                if param.by_ref {
                    let t = out_state
                        .get(&Loc::DerefParam(param.name.clone()))
                        .cloned()
                        .unwrap_or_default();
                    flow.ref_out.insert(param.name.clone(), t);
                }
            }
            for g in &p.globals {
                if let Some(t) = out_state.get(&Loc::Global(g.name.clone())) {
                    let identity = TaintSet::from([TaintSource::Global(g.name.clone())]);
                    if *t != identity {
                        flow.global_out.insert(g.name.clone(), t.clone());
                    }
                }
            }
        }
    }

    // A by-ref parameter's incoming value was read iff its `Param`
    // source surfaced in any observed taint set (definitions, returns,
    // ref/global out-flows, call arguments, annotations, or branch
    // conditions).
    let scan = |ts: &TaintSet, out: &mut BTreeSet<String>| {
        for s in ts {
            if let TaintSource::Param(q) = s {
                out.insert(q.clone());
            }
        }
    };
    let mut read_params = std::mem::take(&mut flow.ref_param_read);
    for ts in flow
        .def_taint
        .values()
        .chain(flow.annot_taint.values())
        .chain(flow.global_out.values())
        .chain(std::iter::once(&flow.ret))
        .chain(all_observed_taints.iter())
    {
        scan(ts, &mut read_params);
    }
    // `ref_out[p]` trivially holds `Param(p)` when `p` was never
    // written; surviving unread is not a read, so skip the identity
    // entry (cross-parameter flows like `*a = *b` still count).
    for (p_name, ts) in &flow.ref_out {
        for s in ts {
            if let TaintSource::Param(q) = s {
                if q != p_name {
                    read_params.insert(q.clone());
                }
            }
        }
    }
    for param in &f.params {
        if param.by_ref && read_params.contains(&param.name) {
            flow.ref_param_read.insert(param.name.clone());
        }
    }
    flow
}

fn initial_state(p: &Program, f: &Function) -> State {
    let mut s = State::new();
    for param in &f.params {
        if param.by_ref {
            s.insert(
                Loc::DerefParam(param.name.clone()),
                TaintSet::from([TaintSource::Param(param.name.clone())]),
            );
        } else {
            s.insert(
                Loc::Local(param.name.clone()),
                TaintSet::from([TaintSource::Param(param.name.clone())]),
            );
        }
    }
    for g in &p.globals {
        s.insert(
            Loc::Global(g.name.clone()),
            TaintSet::from([TaintSource::Global(g.name.clone())]),
        );
    }
    s
}

/// Classic control-dependence: block `X` is control-dependent on branch
/// block `A` if `X` post-dominates a successor of `A` but does not
/// strictly post-dominate `A`. Returns, for each block, the branch
/// blocks it is control-dependent on.
fn control_dependence(f: &Function, cfg: &Cfg, pdom: &DomTree) -> HashMap<u32, BTreeSet<u32>> {
    let mut deps: HashMap<u32, BTreeSet<u32>> = HashMap::new();
    for a in &f.blocks {
        if !matches!(a.term, Terminator::Branch { .. }) {
            continue;
        }
        let stop = pdom.idom(a.id);
        for s in cfg.succs(a.id) {
            let mut cur = Some(*s);
            while let Some(x) = cur {
                if Some(x) == stop {
                    break;
                }
                deps.entry(x.0).or_default().insert(a.id.0);
                cur = pdom.idom(x);
            }
        }
    }
    deps
}

fn ctrl_taint_of(
    ctrl_parents: &HashMap<u32, BTreeSet<u32>>,
    cond_taint: &HashMap<u32, TaintSet>,
    b: u32,
) -> TaintSet {
    let mut out = TaintSet::new();
    if let Some(parents) = ctrl_parents.get(&b) {
        for a in parents {
            if let Some(t) = cond_taint.get(a) {
                out.extend(t.iter().cloned());
            }
        }
    }
    out
}

/// Resolves a variable name to its tracked location within `f`.
fn loc_of(p: &Program, f: &Function, name: &str) -> Loc {
    if f.params.iter().any(|q| q.name == name && q.by_ref) {
        Loc::DerefParam(name.to_string())
    } else if p.is_global(name) {
        Loc::Global(name.to_string())
    } else {
        Loc::Local(name.to_string())
    }
}

fn taint_of(state: &State, loc: &Loc) -> TaintSet {
    state.get(loc).cloned().unwrap_or_default()
}

fn taint_expr(p: &Program, f: &Function, e: &Expr, state: &State) -> TaintSet {
    let mut out = TaintSet::new();
    for v in expr_reads(e) {
        out.extend(taint_of(state, &loc_of(p, f, &v)));
    }
    out
}

/// Applies the transfer function of one block. When `record` is given,
/// also populates the per-instruction maps of the final [`FuncFlow`].
/// Returns the out-state and, for branch terminators, the condition
/// taint.
fn transfer_block(
    p: &Program,
    f: &Function,
    flows: &[FuncFlow],
    block: &ocelot_ir::Block,
    mut state: State,
    ctrl: &TaintSet,
    mut record: Option<&mut FuncFlow>,
) -> (State, Option<TaintSet>) {
    for inst in &block.instrs {
        // Record uses before mutating state. A `&x` argument is a use
        // only when the callee may read the incoming value.
        if let Some(rec) = record.as_deref_mut() {
            match &inst.op {
                Op::Annot { .. } => {}
                Op::Call { callee, args, .. } => {
                    let callee_fn = p.func(*callee);
                    let callee_flow = &flows[callee.0 as usize];
                    for (a, param) in args.iter().zip(&callee_fn.params) {
                        match a {
                            Arg::Value(e) => {
                                for v in expr_reads(e) {
                                    rec.var_uses.entry(v).or_default().insert(inst.label);
                                }
                            }
                            Arg::Ref(x) => {
                                if callee_flow.ref_param_read.contains(&param.name) {
                                    rec.var_uses
                                        .entry(x.clone())
                                        .or_default()
                                        .insert(inst.label);
                                }
                            }
                        }
                    }
                }
                op => {
                    for v in op_reads(op) {
                        rec.var_uses.entry(v).or_default().insert(inst.label);
                    }
                }
            }
        }
        match &inst.op {
            Op::Skip | Op::AtomStart { .. } | Op::AtomEnd { .. } => {}
            Op::Bind { var, src } => {
                let mut t = taint_expr(p, f, src, &state);
                t.extend(ctrl.iter().cloned());
                if let Some(rec) = record.as_deref_mut() {
                    rec.def_taint.insert(inst.label, t.clone());
                }
                state.insert(loc_of(p, f, var), t);
            }
            Op::Assign { place, src } => {
                let mut t = taint_expr(p, f, src, &state);
                t.extend(ctrl.iter().cloned());
                match place {
                    Place::Var(x) => {
                        if let Some(rec) = record.as_deref_mut() {
                            rec.def_taint.insert(inst.label, t.clone());
                        }
                        state.insert(loc_of(p, f, x), t);
                    }
                    Place::Index(a, i) => {
                        // Arrays are a single abstract cell: weak update.
                        let mut merged = taint_of(&state, &Loc::Global(a.clone()));
                        merged.extend(t);
                        merged.extend(taint_expr(p, f, i, &state));
                        if let Some(rec) = record.as_deref_mut() {
                            rec.def_taint.insert(inst.label, merged.clone());
                        }
                        state.insert(Loc::Global(a.clone()), merged);
                    }
                    Place::Deref(x) => {
                        if let Some(rec) = record.as_deref_mut() {
                            rec.def_taint.insert(inst.label, t.clone());
                        }
                        state.insert(Loc::DerefParam(x.clone()), t);
                    }
                }
            }
            Op::Input { var, .. } => {
                let mut t = TaintSet::from([TaintSource::Input(vec![InstrRef {
                    func: f.id,
                    label: inst.label,
                }])]);
                t.extend(ctrl.iter().cloned());
                if let Some(rec) = record.as_deref_mut() {
                    rec.def_taint.insert(inst.label, t.clone());
                }
                state.insert(loc_of(p, f, var), t);
            }
            Op::Call { dst, callee, args } => {
                let site = InstrRef {
                    func: f.id,
                    label: inst.label,
                };
                let callee_fn = p.func(*callee);
                let callee_flow = &flows[callee.0 as usize];
                // Bind argument taints.
                let mut arg_taints: Vec<TaintSet> = Vec::with_capacity(args.len());
                for (i, a) in args.iter().enumerate() {
                    let t = match a {
                        Arg::Value(e) => taint_expr(p, f, e, &state),
                        Arg::Ref(x) => taint_of(&state, &loc_of(p, f, x)),
                    };
                    if let Some(rec) = record.as_deref_mut() {
                        rec.call_arg_taint.insert((inst.label, i), t.clone());
                        if matches!(a, Arg::Value(_)) {
                            // A by-value argument consumes its operands;
                            // Param sources observed here count as reads
                            // of the incoming value. (Ref args only count
                            // if the callee reads them — filtered at the
                            // end of the analysis.)
                            for s in &t {
                                if let TaintSource::Param(q) = s {
                                    rec.ref_param_read.insert(q.clone());
                                }
                            }
                        } else if let Arg::Ref(x) = a {
                            // Forwarding an incoming reference: treat as a
                            // read only if the sub-callee reads it.
                            if f.params.iter().any(|q| q.name == *x && q.by_ref)
                                && flows[callee.0 as usize]
                                    .ref_param_read
                                    .contains(&callee_fn.params[i].name)
                            {
                                rec.ref_param_read.insert(x.clone());
                            }
                        }
                    }
                    arg_taints.push(t);
                }
                let subst = |ts: &TaintSet, state: &State| -> TaintSet {
                    let mut out = TaintSet::new();
                    for s in ts {
                        match s {
                            TaintSource::Input(suffix) => {
                                let mut chain = vec![site];
                                chain.extend(suffix.iter().copied());
                                out.insert(TaintSource::Input(chain));
                            }
                            TaintSource::Param(q) => {
                                if let Some(i) =
                                    callee_fn.params.iter().position(|pp| pp.name == *q)
                                {
                                    out.extend(arg_taints[i].iter().cloned());
                                }
                            }
                            TaintSource::Global(g) => {
                                out.extend(taint_of(state, &Loc::Global(g.clone())));
                            }
                        }
                    }
                    out
                };
                // Global side effects of the callee.
                let global_updates: Vec<(String, TaintSet)> = callee_flow
                    .global_out
                    .iter()
                    .map(|(g, ts)| {
                        let mut t = subst(ts, &state);
                        t.extend(ctrl.iter().cloned());
                        (g.clone(), t)
                    })
                    .collect();
                // By-ref out-flows.
                let mut ref_updates: Vec<(Loc, TaintSet)> = Vec::new();
                for (i, a) in args.iter().enumerate() {
                    if let Arg::Ref(x) = a {
                        let pname = &callee_fn.params[i].name;
                        if let Some(out_t) = callee_flow.ref_out.get(pname) {
                            let mut t = subst(out_t, &state);
                            t.extend(ctrl.iter().cloned());
                            ref_updates.push((loc_of(p, f, x), t));
                        }
                    }
                }
                let ret_taint = {
                    let mut t = subst(&callee_flow.ret, &state);
                    t.extend(ctrl.iter().cloned());
                    t
                };
                for (g, t) in global_updates {
                    state.insert(Loc::Global(g), t);
                }
                for (loc, t) in ref_updates {
                    state.insert(loc, t);
                }
                if let Some(d) = dst {
                    if let Some(rec) = record.as_deref_mut() {
                        rec.def_taint.insert(inst.label, ret_taint.clone());
                    }
                    state.insert(loc_of(p, f, d), ret_taint);
                }
            }
            Op::Output { .. } => {}
            // Loop-bound markers name no variable; there is no taint
            // to snapshot.
            Op::Annot {
                kind: ocelot_ir::AnnotKind::Bound(_),
                ..
            } => {}
            Op::Annot { var, .. } => {
                if let Some(rec) = record.as_deref_mut() {
                    let t = taint_of(&state, &loc_of(p, f, var));
                    rec.annot_taint.insert(inst.label, t);
                }
            }
        }
    }
    let branch_taint = match &block.term {
        Terminator::Branch { cond, .. } => Some(taint_expr(p, f, cond, &state)),
        _ => None,
    };
    (state, branch_taint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::lower::compile;

    fn analyze(src: &str) -> (ocelot_ir::Program, TaintAnalysis) {
        let p = compile(src).unwrap();
        ocelot_ir::validate(&p).unwrap();
        let t = TaintAnalysis::run(&p);
        (p, t)
    }

    /// Finds the single annotation instruction and returns its expanded
    /// input chains.
    fn sole_annotation_inputs(p: &ocelot_ir::Program, t: &TaintAnalysis) -> BTreeSet<Prov> {
        let annots = p.annotations();
        assert_eq!(annots.len(), 1);
        t.annotation_inputs(p, annots[0].0)
    }

    #[test]
    fn direct_input_has_single_chain() {
        let (p, t) = analyze("sensor s; fn main() { let x = in(s); fresh(x); }");
        let chains = sole_annotation_inputs(&p, &t);
        assert_eq!(chains.len(), 1);
        let chain = chains.iter().next().unwrap();
        assert_eq!(
            chain.len(),
            1,
            "input directly in main: chain is just the input op"
        );
        assert_eq!(chain[0].func, p.main);
    }

    #[test]
    fn figure6a_fresh_through_return() {
        // Figure 6(a): app calls tmp, tmp senses and normalizes.
        let (p, t) = analyze(
            r#"
            sensor sense;
            fn norm(v) { return v * 2; }
            fn tmp() { let t = in(sense); let t2 = norm(t); return t2; }
            fn main() { let x = tmp(); fresh(x); out(log, x); }
            "#,
        );
        let chains = sole_annotation_inputs(&p, &t);
        assert_eq!(chains.len(), 1);
        let chain = chains.iter().next().unwrap();
        // Chain: call site of tmp in main, then the input op in tmp.
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].func, p.main);
        assert_eq!(chain[1].func, p.func_by_name("tmp").unwrap());
        let inst = p.inst(chain[1]).unwrap();
        assert!(inst.op.is_input());
    }

    #[test]
    fn figure6b_two_calls_two_chains() {
        // Figure 6(b): confirm calls pres twice consistently; the two
        // chains must be distinct (different call sites).
        let (p, t) = analyze(
            r#"
            sensor sense;
            fn pres() { let v = in(sense); return v; }
            fn confirm() {
                let y = pres();
                consistent(y, 1);
                let y2 = pres();
                consistent(y2, 1);
            }
            fn main() { confirm(); }
            "#,
        );
        let annots = p.annotations();
        assert_eq!(annots.len(), 2);
        let a = t.annotation_inputs(&p, annots[0].0);
        let b = t.annotation_inputs(&p, annots[1].0);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_ne!(a, b, "two calls to pres have distinct provenance");
        let chain = a.iter().next().unwrap();
        // main->confirm callsite, confirm->pres callsite, input in pres.
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0].func, p.main);
        assert_eq!(chain[1].func, p.func_by_name("confirm").unwrap());
        assert_eq!(chain[2].func, p.func_by_name("pres").unwrap());
    }

    #[test]
    fn taint_through_by_ref_parameter() {
        let (p, t) = analyze(
            r#"
            sensor s;
            fn sample(&dst) { let v = in(s); *dst = v; }
            fn main() { let x = 0; sample(&x); fresh(x); }
            "#,
        );
        let chains = sole_annotation_inputs(&p, &t);
        assert_eq!(chains.len(), 1);
        let chain = chains.iter().next().unwrap();
        assert_eq!(chain.len(), 2, "call site then input op");
        assert_eq!(chain[1].func, p.func_by_name("sample").unwrap());
    }

    #[test]
    fn taint_through_argument() {
        // Taint enters `norm` via its argument and returns — the argBy
        // case of the paper's summaries.
        let (p, t) = analyze(
            r#"
            sensor s;
            fn norm(v) { return v + 1; }
            fn main() { let raw = in(s); let x = norm(raw); fresh(x); }
            "#,
        );
        let chains = sole_annotation_inputs(&p, &t);
        assert_eq!(chains.len(), 1);
        let chain = chains.iter().next().unwrap();
        assert_eq!(chain.len(), 1, "input op is in main itself");
        let inst = p.inst(chain[0]).unwrap();
        assert!(inst.op.is_input());
    }

    #[test]
    fn control_dependence_taints_definitions() {
        // z is assigned under a branch on tainted x: z is tainted (§4.3
        // tracks control flow from inputs).
        let (p, t) = analyze(
            r#"
            sensor s;
            fn main() {
                let x = in(s);
                let z = 0;
                if x > 5 { z = 1; }
                fresh(z);
            }
            "#,
        );
        let chains = sole_annotation_inputs(&p, &t);
        assert_eq!(chains.len(), 1, "z is control-dependent on the input");
    }

    #[test]
    fn untainted_variable_has_no_chains() {
        let (p, t) =
            analyze("sensor s; fn main() { let q = in(s); let x = 1 + 2; fresh(x); out(log, q); }");
        let chains = sole_annotation_inputs(&p, &t);
        assert!(chains.is_empty());
    }

    #[test]
    fn taint_flows_through_globals() {
        let (p, t) = analyze(
            r#"
            sensor s;
            nv cell = 0;
            fn store() { let v = in(s); cell = v; }
            fn main() { store(); let x = cell; fresh(x); }
            "#,
        );
        let chains = sole_annotation_inputs(&p, &t);
        assert_eq!(chains.len(), 1);
        let chain = chains.iter().next().unwrap();
        assert_eq!(chain.len(), 2, "chain through store()'s input");
    }

    #[test]
    fn taint_flows_through_arrays() {
        let (p, t) = analyze(
            r#"
            sensor s;
            nv buf[4];
            fn main() { let v = in(s); buf[0] = v; let x = buf[1]; fresh(x); }
            "#,
        );
        // Arrays are one abstract cell: reading any element sees the
        // stored taint.
        let chains = sole_annotation_inputs(&p, &t);
        assert_eq!(chains.len(), 1);
    }

    #[test]
    fn two_contexts_yield_two_chains() {
        // helper senses; called from two different sites in main via a
        // wrapper — the policy must see both chains.
        let (p, t) = analyze(
            r#"
            sensor s;
            nv acc = 0;
            fn helper() { let v = in(s); return v; }
            fn addone() { let h = helper(); acc = acc + h; }
            fn main() { addone(); addone(); let x = acc; fresh(x); }
            "#,
        );
        let chains = sole_annotation_inputs(&p, &t);
        assert_eq!(chains.len(), 2, "two call sites of addone: two chains");
        for c in &chains {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn use_labels_include_branch_and_output() {
        let (p, t) =
            analyze("sensor s; fn main() { let x = in(s); fresh(x); if x > 5 { out(alarm, x); } }");
        let uses = t.use_labels(p.main, "x");
        // Uses: the branch terminator and the output (annotation excluded).
        assert_eq!(uses.len(), 2);
    }

    #[test]
    fn contexts_of_main_is_empty_chain() {
        let (p, t) = analyze("fn main() { }");
        assert_eq!(t.contexts[p.main.0 as usize], vec![Vec::<InstrRef>::new()]);
    }

    #[test]
    fn loop_carried_taint_converges() {
        let (p, t) = analyze(
            r#"
            sensor s;
            fn main() {
                let acc = 0;
                repeat 5 {
                    let v = in(s);
                    acc = acc + v;
                }
                fresh(acc);
            }
            "#,
        );
        let chains = sole_annotation_inputs(&p, &t);
        assert_eq!(chains.len(), 1, "single static input op in the loop");
        let _ = p;
    }

    #[test]
    fn consistent_annotations_tracked_separately() {
        let (p, t) = analyze(
            r#"
            sensor a;
            sensor b;
            fn main() {
                let x = in(a);
                consistent(x, 1);
                let y = in(b);
                consistent(y, 1);
            }
            "#,
        );
        let annots = p.annotations();
        let ca = t.annotation_inputs(&p, annots[0].0);
        let cb = t.annotation_inputs(&p, annots[1].0);
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
        assert_ne!(ca, cb);
    }
}
