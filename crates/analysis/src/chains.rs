//! Provenance-chain interning and static chain resolution.
//!
//! The runtime identifies every input *collection* by its provenance
//! call chain — the call sites from `main` down to the input operation
//! (the paper's context-sensitivity, Figure 6(b)). Chains are small
//! `Vec<InstrRef>`s, but the detector, the TICS timekeeper, and the
//! observation trace all key off them, so an uninterned chain costs a
//! fresh allocation and a deep comparison at every lookup.
//!
//! This module provides the interning surface both execution backends
//! share:
//!
//! * [`ChainTable`] — a stable `chain → u32` interner handing out
//!   [`Arc`]-shared chains, so a chain resolved once is a cheap copy
//!   forever after;
//! * [`unique_contexts`] — for every function, its single calling
//!   context *if it has exactly one* (computed without enumerating the
//!   possibly-exponential context set of diamond-shaped call graphs);
//! * [`static_input_chains`] — the input sites whose enclosing call
//!   stack is fixed, each with its fully-resolved chain. These are the
//!   sites the compiled backend pre-resolves; everything else falls
//!   back to the dynamic rebuild.
//!
//! Call graphs with cycles (rejected by [`ocelot_ir::validate()`], but
//! representable in hand-built IR) degrade gracefully: no chain is
//! static, every site takes the dynamic path.

use crate::taint::Prov;
use ocelot_ir::callgraph::CallGraph;
use ocelot_ir::{InstrRef, Op, Program};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Index of an interned chain in a [`ChainTable`].
pub type ChainId = u32;

/// A stable interner for provenance chains.
///
/// Ids are dense and append-only: once interned, a chain keeps its id
/// and its [`Arc`] for the lifetime of the table.
#[derive(Debug, Clone, Default)]
pub struct ChainTable {
    index: BTreeMap<Prov, ChainId>,
    chains: Vec<Arc<Prov>>,
}

impl ChainTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `chain`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, chain: Prov) -> ChainId {
        if let Some(&id) = self.index.get(&chain) {
            return id;
        }
        let id = self.chains.len() as ChainId;
        self.index.insert(chain.clone(), id);
        self.chains.push(Arc::new(chain));
        id
    }

    /// The id of `chain`, if it has been interned.
    pub fn lookup(&self, chain: &Prov) -> Option<ChainId> {
        self.index.get(chain).copied()
    }

    /// The shared chain behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not handed out by this table.
    pub fn get(&self, id: ChainId) -> &Arc<Prov> {
        &self.chains[id as usize]
    }

    /// Number of interned chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Iterates `(id, chain)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ChainId, &Arc<Prov>)> {
        self.chains
            .iter()
            .enumerate()
            .map(|(i, c)| (i as ChainId, c))
    }
}

/// For every function, its calling context when it has **exactly one**
/// (the chain of call sites from `main`); `None` when the function is
/// unreachable, reachable through several paths, or the call graph is
/// cyclic.
///
/// Unlike full context enumeration this never blows up: a function's
/// context count is not materialized, only whether it is one.
pub fn unique_contexts(p: &Program) -> Vec<Option<Prov>> {
    let cg = CallGraph::new(p);
    let mut unique: Vec<Option<Prov>> = vec![None; p.funcs.len()];
    let Ok(mut order) = cg.topo_callees_first(p) else {
        // Cyclic call graph: no fixed stacks anywhere.
        return unique;
    };
    // Callers before callees.
    order.reverse();
    unique[p.main.0 as usize] = Some(Vec::new());
    for f in order {
        if f == p.main {
            continue;
        }
        let mut edges = cg.callers(f);
        let (Some(edge), None) = (edges.next(), edges.next()) else {
            continue; // zero or several call sites
        };
        if let Some(ctx) = &unique[edge.caller.0 as usize] {
            let mut chain = ctx.clone();
            chain.push(edge.site);
            unique[f.0 as usize] = Some(chain);
        }
    }
    unique
}

/// Every calling context of every function: for each
/// [`ocelot_ir::FuncId`] index,
/// the chains of call sites from `main` that reach it (empty chain for
/// `main` itself; no chains for unreachable functions).
///
/// Diamond-shaped call graphs make this set exponential in the worst
/// case, so enumeration stops once more than `cap` contexts exist for
/// any one function and returns `None` — callers (the static linter)
/// degrade to context-insensitive answers. A cyclic call graph also
/// yields `None`.
pub fn all_contexts(p: &Program, cap: usize) -> Option<Vec<Vec<Prov>>> {
    let cg = CallGraph::new(p);
    let mut order = cg.topo_callees_first(p).ok()?;
    // Callers before callees.
    order.reverse();
    let mut ctxs: Vec<Vec<Prov>> = vec![Vec::new(); p.funcs.len()];
    ctxs[p.main.0 as usize].push(Vec::new());
    for f in order {
        let f_ctxs = ctxs[f.0 as usize].clone();
        for edge in cg.callees(f) {
            for ctx in &f_ctxs {
                let mut child = ctx.clone();
                child.push(edge.site);
                let dst = &mut ctxs[edge.callee.0 as usize];
                dst.push(child);
                if dst.len() > cap {
                    return None;
                }
            }
        }
    }
    for c in &mut ctxs {
        c.sort();
        c.dedup();
    }
    Some(ctxs)
}

/// Every input site whose enclosing call stack is statically fixed,
/// mapped to its full provenance chain (the unique context of the
/// enclosing function, then the input instruction itself).
pub fn static_input_chains(p: &Program) -> BTreeMap<InstrRef, Prov> {
    let _span = ocelot_telemetry::span!("chains");
    let unique = unique_contexts(p);
    let mut out = BTreeMap::new();
    for f in &p.funcs {
        let Some(ctx) = &unique[f.id.0 as usize] else {
            continue;
        };
        for (_, inst) in f.iter_insts() {
            if matches!(inst.op, Op::Input { .. }) {
                let mut chain = ctx.clone();
                let iref = InstrRef {
                    func: f.id,
                    label: inst.label,
                };
                chain.push(iref);
                out.insert(iref, chain);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::compile;

    #[test]
    fn intern_is_stable_and_shared() {
        let mut t = ChainTable::new();
        let a: Prov = vec![];
        let id = t.intern(a.clone());
        assert_eq!(t.intern(a.clone()), id);
        assert_eq!(t.lookup(&a), Some(id));
        assert_eq!(t.len(), 1);
        let arc1 = Arc::clone(t.get(id));
        let arc2 = Arc::clone(t.get(id));
        assert!(Arc::ptr_eq(&arc1, &arc2), "one shared allocation");
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn single_call_paths_are_static() {
        let p = compile(
            r#"
            sensor s;
            fn leaf() { let v = in(s); return v; }
            fn mid() { let v = leaf(); return v; }
            fn main() { let a = mid(); out(log, a); }
            "#,
        )
        .unwrap();
        let chains = static_input_chains(&p);
        assert_eq!(chains.len(), 1, "the one input site resolves statically");
        let chain = chains.values().next().unwrap();
        // main→mid call, mid→leaf call, then the input op itself.
        assert_eq!(chain.len(), 3);
    }

    #[test]
    fn multi_caller_helpers_stay_dynamic() {
        let p = compile(
            r#"
            sensor s;
            fn grab() { let v = in(s); return v; }
            fn main() {
                let a = grab();
                let b = grab();
                out(log, a + b);
            }
            "#,
        )
        .unwrap();
        // Two call sites into `grab`: its input site has no fixed stack.
        assert!(static_input_chains(&p).is_empty());
        let unique = unique_contexts(&p);
        let main_id = p.main.0 as usize;
        assert_eq!(unique[main_id], Some(vec![]), "main's context is fixed");
        assert_eq!(
            unique.iter().filter(|u| u.is_some()).count(),
            1,
            "only main"
        );
    }

    #[test]
    fn inputs_directly_in_main_are_static() {
        let p = compile("sensor s; fn main() { let v = in(s); out(log, v); }").unwrap();
        let chains = static_input_chains(&p);
        assert_eq!(chains.len(), 1);
        let (iref, chain) = chains.iter().next().unwrap();
        assert_eq!(chain.as_slice(), &[*iref], "chain is just the input op");
    }

    #[test]
    fn unreachable_functions_have_no_context() {
        let p = compile(
            r#"
            sensor s;
            fn orphan() { let v = in(s); return v; }
            fn main() { out(log, 1); }
            "#,
        )
        .unwrap();
        let chains = static_input_chains(&p);
        assert!(chains.is_empty(), "orphan input sites never resolve");
    }
}
