//! WAR-dependence and exclusive-may-write (EMW) analysis for atomic
//! regions.
//!
//! An undo-logging atomic region must snapshot the non-volatile locations
//! it may corrupt on re-execution (§2.1): locations with a
//! Write-After-Read dependence inside the region, plus the
//! conditionally-written "exclusive may-write" set of prior work
//! [51, 52]. The region checkpoint set `ω` is their union; its byte size
//! drives the checkpoint cost in the runtime's energy model (this is
//! what makes whole-program Atomics-only execution expensive on `cem`,
//! Figure 7).

use crate::dom::Point;
use crate::effects::{expr_reads, global_effects, op_reads, op_write, GlobalEffects};
use ocelot_ir::{FuncId, Op, Program, Terminator};
use std::collections::BTreeSet;

/// Non-volatile footprint of one atomic region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionEffects {
    /// Globals with a read-then-write (WAR) pattern in the region.
    pub war: BTreeSet<String>,
    /// Globals written in the region without a detected prior read
    /// (conservatively, the exclusive may-write set).
    pub emw: BTreeSet<String>,
    /// All globals the region may read.
    pub reads: BTreeSet<String>,
}

impl RegionEffects {
    /// The undo-log checkpoint set `ω` — everything the region may write.
    pub fn omega(&self) -> BTreeSet<String> {
        self.war.union(&self.emw).cloned().collect()
    }

    /// Size in (simulated 16-bit) words of the undo log for `ω`, where an
    /// array costs its full length — backing a large structure into the
    /// undo log is exactly the cost cliff the paper describes for `cem`.
    pub fn omega_words(&self, p: &Program) -> usize {
        self.omega()
            .iter()
            .map(|g| p.global(g).and_then(|g| g.array_len).unwrap_or(1))
            .sum()
    }
}

/// Computes the non-volatile effects of a region given the instruction
/// points it contains in its host function plus every function reachable
/// from calls inside it.
///
/// `points` are `(block, index)` pairs within `func`; `index ==
/// instrs.len()` addresses the terminator. The classification is
/// conservative: a global both read and written anywhere in the region
/// counts as WAR; a global only written counts as EMW.
pub fn region_effects(p: &Program, func: FuncId, points: &[Point]) -> RegionEffects {
    let fx: Vec<GlobalEffects> = global_effects(p);
    let f = p.func(func);
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    for pt in points {
        let block = f.block(pt.block);
        if pt.index < block.instrs.len() {
            let inst = &block.instrs[pt.index];
            for r in op_reads(&inst.op) {
                if p.is_global(&r) {
                    reads.insert(r);
                }
            }
            if let Some(w) = op_write(&inst.op) {
                if p.is_global(&w) {
                    writes.insert(w);
                }
            }
            if let Op::Call { callee, .. } = &inst.op {
                let ce = &fx[callee.0 as usize];
                reads.extend(ce.reads.iter().cloned());
                writes.extend(ce.writes.iter().cloned());
            }
        } else {
            match &block.term {
                Terminator::Branch { cond, .. } => {
                    for r in expr_reads(cond) {
                        if p.is_global(&r) {
                            reads.insert(r);
                        }
                    }
                }
                Terminator::Ret(Some(e)) => {
                    for r in expr_reads(e) {
                        if p.is_global(&r) {
                            reads.insert(r);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let war: BTreeSet<String> = writes.intersection(&reads).cloned().collect();
    let emw: BTreeSet<String> = writes.difference(&war).cloned().collect();
    RegionEffects { war, emw, reads }
}

/// Convenience: effects of an *entire function* treated as one region
/// (what an Atomics-only execution model does to whole phases).
pub fn whole_function_effects(p: &Program, func: FuncId) -> RegionEffects {
    let f = p.func(func);
    let mut points = Vec::new();
    for b in &f.blocks {
        for i in 0..=b.instrs.len() {
            points.push(Point::new(b.id, i));
        }
    }
    region_effects(p, func, &points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::lower::compile;

    #[test]
    fn war_requires_read_and_write() {
        let p = compile(
            "nv a = 0; nv b = 0; nv c = 0; fn main() { let x = a; a = x + 1; b = 2; let y = c; }",
        )
        .unwrap();
        let e = whole_function_effects(&p, p.main);
        assert!(e.war.contains("a"), "a is read then written");
        assert!(e.emw.contains("b"), "b is written only");
        assert!(
            !e.war.contains("c") && !e.emw.contains("c"),
            "c is read only"
        );
        assert!(e.reads.contains("c"));
        assert_eq!(
            e.omega(),
            BTreeSet::from(["a".to_string(), "b".to_string()])
        );
    }

    #[test]
    fn array_in_omega_costs_its_length() {
        let p = compile("nv log[64]; nv n = 0; fn main() { log[n] = 1; n = n + 1; }").unwrap();
        let e = whole_function_effects(&p, p.main);
        assert!(e.omega().contains("log"));
        assert!(e.war.contains("n"));
        // 64 words for the array + 1 for the counter.
        assert_eq!(e.omega_words(&p), 65);
    }

    #[test]
    fn callee_effects_included() {
        let p = compile(
            r#"
            nv g = 0;
            fn bump() { g = g + 1; }
            fn main() { bump(); }
            "#,
        )
        .unwrap();
        let e = whole_function_effects(&p, p.main);
        assert!(
            e.war.contains("g"),
            "WAR inside the callee is charged to the region"
        );
    }

    #[test]
    fn partial_region_sees_only_its_points() {
        let p = compile("nv a = 0; nv b = 0; fn main() { a = 1; b = 2; }").unwrap();
        let f = p.func(p.main);
        // Find the point of the `a = 1` instruction only.
        let mut pts = Vec::new();
        for blk in &f.blocks {
            for (i, inst) in blk.instrs.iter().enumerate() {
                if let Op::Assign { place, .. } = &inst.op {
                    if place.base() == "a" {
                        pts.push(Point::new(blk.id, i));
                    }
                }
            }
        }
        assert_eq!(pts.len(), 1);
        let e = region_effects(&p, p.main, &pts);
        assert!(e.omega().contains("a"));
        assert!(!e.omega().contains("b"));
    }

    #[test]
    fn branch_condition_counts_as_read() {
        let p = compile("nv g = 0; fn main() { if g > 0 { g = 0; } }").unwrap();
        let e = whole_function_effects(&p, p.main);
        assert!(e.war.contains("g"));
    }

    #[test]
    fn pure_region_has_empty_omega() {
        let p = compile("fn main() { let x = 1; let y = x + 2; out(log, y); }").unwrap();
        let e = whole_function_effects(&p, p.main);
        assert!(e.omega().is_empty());
        assert_eq!(e.omega_words(&p), 0);
    }
}
