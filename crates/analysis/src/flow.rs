//! Value-flow facts for the compiled backend's taint-free fast path.
//!
//! The runtime evaluates every expression to a `Tainted` value — an
//! `i64` plus the set of input collections it data-depends on. Those
//! dependency sets are *observable* in exactly two places: output
//! records and fresh-variable use logging. Everywhere else they are
//! carried along and eventually dropped (branch conditions, store
//! indices, values that only ever feed branches). This module computes
//! two complementary static facts that let the compiled backend skip
//! the dependency bookkeeping without changing anything observable:
//!
//! * **Value purity** (forward, data-flow only): a local, parameter, or
//!   global whose runtime dependency set is provably *always empty* —
//!   it is never assigned anything data-derived from an input. Note
//!   this is deliberately weaker than [`crate::taint`]'s input taint:
//!   the taint analysis adds control-dependence (a branch on tainted
//!   data taints everything assigned under it), which over-approximates
//!   the runtime's data-only propagation. Purity mirrors the runtime
//!   exactly, so a pure value evaluated without dependency tracking is
//!   bit-identical to the tracked evaluation.
//!
//! * **Dependency liveness** (backward, demand-driven): a variable
//!   whose dependency set can never *reach* an observation point
//!   (an output argument or an annotated variable's use log) through
//!   any chain of data flow — including through globals, call
//!   arguments, returns, and by-reference write-backs. Storing an
//!   empty set for such a variable is observationally equivalent.
//!
//! Both analyses are whole-program, flow-insensitive at the variable
//! level, and sound for hand-built IR (unknown constructs degrade to
//! "impure"/"live").

use ocelot_ir::ast::{Arg, Expr, Ident};
use ocelot_ir::{FuncId, Function, Op, Place, Program, Terminator};
use std::collections::{BTreeMap, BTreeSet};

/// A node in the dependency-liveness graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Node {
    /// A local or by-value parameter of a function.
    Var(FuncId, Ident),
    /// A non-volatile cell (scalar or whole array), by name. Undeclared
    /// names written by hand-built IR land here too.
    Global(Ident),
    /// The return value of a function.
    Ret(FuncId),
    /// Values written through by-ref parameter `.1` of function `.0`.
    RefOut(FuncId, Ident),
}

/// A concrete storage location a by-ref parameter can point at.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Target {
    Local(FuncId, Ident),
    Global(Ident),
}

/// Whole-program value-flow facts. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct ValueFlow {
    pure_locals: BTreeSet<(FuncId, Ident)>,
    pure_globals: BTreeSet<Ident>,
    /// By-ref params whose *pointee read* is pure at every call site.
    pure_derefs: BTreeSet<(FuncId, Ident)>,
    live: BTreeSet<Node>,
}

impl ValueFlow {
    /// Runs both analyses over `p`.
    pub fn analyze(p: &Program) -> Self {
        Self::analyze_observing(p, &[])
    }

    /// Like [`ValueFlow::analyze`], with extra externally-observed
    /// variables seeded dep-live. Policy-driven runtimes log a fresh
    /// variable's dependency set at its *use sites*, which the region
    /// transforms may strip from the instruction stream (the annotation
    /// survives only in the policy set) — the runtime re-injects those
    /// `(function, variable)` pairs here so liveness still sees the
    /// observation points.
    pub fn analyze_observing(p: &Program, observed: &[(FuncId, Ident)]) -> Self {
        let targets = ref_targets(p);
        let mut vf = ValueFlow::default();
        vf.run_purity(p, &targets);
        vf.run_liveness(p, &targets, observed);
        vf
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// True when `e`, evaluated inside `f`, always carries an empty
    /// dependency set at runtime.
    pub fn expr_is_pure(&self, f: &Function, e: &Expr) -> bool {
        match e {
            Expr::Int(_) | Expr::Bool(_) => true,
            Expr::Var(x) => {
                if f.is_by_ref_param(x) {
                    false
                } else if f.declares(x) {
                    self.pure_locals.contains(&(f.id, x.clone()))
                } else {
                    self.pure_globals.contains(x)
                }
            }
            Expr::Index(a, i) => self.pure_globals.contains(a) && self.expr_is_pure(f, i),
            Expr::Deref(x) => self.pure_derefs.contains(&(f.id, x.clone())),
            Expr::Ref(_) => false,
            Expr::Binary(_, l, r) => self.expr_is_pure(f, l) && self.expr_is_pure(f, r),
            Expr::Unary(_, e) => self.expr_is_pure(f, e),
        }
    }

    /// True when the dependency set of local `var` in `f` can never
    /// reach an output record or a fresh-use log.
    pub fn var_deps_dead(&self, f: FuncId, var: &str) -> bool {
        !self.live.contains(&Node::Var(f, var.to_string()))
    }

    /// True when no caller ever observes the dependency set of `f`'s
    /// return value.
    pub fn ret_deps_dead(&self, f: FuncId) -> bool {
        !self.live.contains(&Node::Ret(f))
    }

    /// True when values written through by-ref param `param` of `f`
    /// land only in dependency-dead storage.
    pub fn refout_deps_dead(&self, f: FuncId, param: &str) -> bool {
        !self.live.contains(&Node::RefOut(f, param.to_string()))
    }

    /// True when the dependency set of global `name` is never observed.
    pub fn global_deps_dead(&self, name: &str) -> bool {
        !self.live.contains(&Node::Global(name.to_string()))
    }

    /// True when global `name` provably never stores input-derived data.
    pub fn global_is_pure(&self, name: &str) -> bool {
        self.pure_globals.contains(name)
    }

    // ------------------------------------------------------------------
    // Purity (forward)
    // ------------------------------------------------------------------

    fn run_purity(&mut self, p: &Program, targets: &BTreeMap<(FuncId, Ident), BTreeSet<Target>>) {
        // Optimistic start: everything pure; strip until stable.
        for f in &p.funcs {
            for l in &f.locals {
                self.pure_locals.insert((f.id, l.clone()));
            }
            for prm in &f.params {
                if !prm.by_ref {
                    self.pure_locals.insert((f.id, prm.name.clone()));
                }
            }
        }
        for g in &p.globals {
            self.pure_globals.insert(g.name.clone());
        }

        loop {
            // Deref purity is derived state: recompute from targets.
            self.pure_derefs = targets
                .iter()
                .filter(|(_, ts)| {
                    ts.iter().all(|t| match t {
                        Target::Local(g, y) => self.pure_locals.contains(&(*g, y.clone())),
                        Target::Global(n) => self.pure_globals.contains(n),
                    })
                })
                .map(|(k, _)| k.clone())
                .collect();

            let mut changed = false;
            for f in &p.funcs {
                for (_, inst) in f.iter_insts() {
                    changed |= self.purity_step(p, f, &inst.op, targets);
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn taint_local(&mut self, f: FuncId, x: &str) -> bool {
        self.pure_locals.remove(&(f, x.to_string()))
    }

    fn taint_cell(&mut self, name: &str) -> bool {
        self.pure_globals.remove(name)
    }

    /// Contaminates whatever a write to `place` in `f` can reach.
    fn taint_place(
        &mut self,
        f: &Function,
        place: &Place,
        targets: &BTreeMap<(FuncId, Ident), BTreeSet<Target>>,
    ) -> bool {
        match place {
            Place::Var(x) => {
                if f.is_by_ref_param(x) {
                    // Should not occur (writes through refs use Deref),
                    // but degrade safely.
                    self.taint_ref(f.id, x, targets)
                } else if f.declares(x) {
                    self.taint_local(f.id, x)
                } else {
                    self.taint_cell(x)
                }
            }
            Place::Index(a, _) => self.taint_cell(a),
            Place::Deref(x) => self.taint_ref(f.id, x, targets),
        }
    }

    fn taint_ref(
        &mut self,
        f: FuncId,
        param: &str,
        targets: &BTreeMap<(FuncId, Ident), BTreeSet<Target>>,
    ) -> bool {
        let mut changed = false;
        if let Some(ts) = targets.get(&(f, param.to_string())) {
            for t in ts.clone() {
                changed |= match t {
                    Target::Local(g, y) => self.taint_local(g, &y),
                    Target::Global(n) => self.taint_cell(&n),
                };
            }
        }
        changed
    }

    fn purity_step(
        &mut self,
        p: &Program,
        f: &Function,
        op: &Op,
        targets: &BTreeMap<(FuncId, Ident), BTreeSet<Target>>,
    ) -> bool {
        match op {
            Op::Bind { var, src } => {
                if !self.expr_is_pure(f, src) && f.declares(var) {
                    return self.taint_local(f.id, var);
                }
                false
            }
            Op::Assign { place, src } => {
                if !self.expr_is_pure(f, src) {
                    return self.taint_place(f, place, targets);
                }
                false
            }
            Op::Input { var, .. } => {
                // An input sample carries its own collection id.
                if f.declares(var) {
                    self.taint_local(f.id, var)
                } else {
                    self.taint_cell(var)
                }
            }
            Op::Call { dst, callee, args } => {
                let mut changed = false;
                let cf = p.func(*callee);
                // Impure value arguments contaminate the parameter.
                for (i, a) in args.iter().enumerate() {
                    if let (Arg::Value(e), Some(prm)) = (a, cf.params.get(i)) {
                        if !prm.by_ref && !self.expr_is_pure(f, e) {
                            changed |= self.taint_local(cf.id, &prm.name);
                        }
                    }
                }
                // An impure return contaminates the destination.
                if let Some(d) = dst {
                    if !self.ret_is_pure(cf) && f.declares(d) {
                        changed |= self.taint_local(f.id, d);
                    }
                }
                changed
            }
            _ => false,
        }
    }

    fn ret_is_pure(&self, f: &Function) -> bool {
        f.blocks.iter().all(|b| match &b.term {
            Terminator::Ret(Some(e)) => self.expr_is_pure(f, e),
            _ => true,
        })
    }

    // ------------------------------------------------------------------
    // Dependency liveness (backward)
    // ------------------------------------------------------------------

    fn run_liveness(
        &mut self,
        p: &Program,
        targets: &BTreeMap<(FuncId, Ident), BTreeSet<Target>>,
        observed: &[(FuncId, Ident)],
    ) {
        // live(from) ⇒ live(to) edges.
        let mut edges: BTreeMap<Node, BTreeSet<Node>> = BTreeMap::new();
        let mut seeds: BTreeSet<Node> = BTreeSet::new();
        let mut edge = |from: Node, to: Node| {
            edges.entry(from).or_default().insert(to);
        };

        // Maps a plain name read/written in f to its node.
        let node_of = |f: &Function, x: &Ident| -> Node {
            if f.declares(x) && !f.is_by_ref_param(x) {
                Node::Var(f.id, x.clone())
            } else {
                Node::Global(x.clone())
            }
        };
        // Nodes observed when an expression's *value* is consumed: its
        // dependency set is the union over these.
        fn expr_nodes(f: &Function, e: &Expr, out: &mut Vec<Node>) {
            match e {
                Expr::Int(_) | Expr::Bool(_) => {}
                Expr::Var(x) | Expr::Ref(x) => {
                    if f.is_by_ref_param(x) {
                        // Reading the pointee: resolved via targets later;
                        // encode as a RefOut-independent marker below.
                        out.push(Node::RefOut(f.id, format!("\u{0}in:{x}")));
                    } else if f.declares(x) {
                        out.push(Node::Var(f.id, x.clone()));
                    } else {
                        out.push(Node::Global(x.clone()));
                    }
                }
                Expr::Deref(x) => {
                    out.push(Node::RefOut(f.id, format!("\u{0}in:{x}")));
                }
                Expr::Index(a, i) => {
                    // Element deps and index deps both merge into the read.
                    out.push(Node::Global(a.clone()));
                    expr_nodes(f, i, out);
                }
                Expr::Binary(_, l, r) => {
                    expr_nodes(f, l, out);
                    expr_nodes(f, r, out);
                }
                Expr::Unary(_, e) => expr_nodes(f, e, out),
            }
        }
        // Resolve the deref-read markers: observing *p observes every
        // concrete target.
        let deref_in = |f: FuncId, x: &str| -> Vec<Node> {
            targets
                .get(&(f, x.to_string()))
                .map(|ts| {
                    ts.iter()
                        .map(|t| match t {
                            Target::Local(g, y) => Node::Var(*g, y.clone()),
                            Target::Global(n) => Node::Global(n.clone()),
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        let resolve = |_f: FuncId, n: Node| -> Vec<Node> {
            if let Node::RefOut(g, m) = &n {
                if let Some(x) = m.strip_prefix('\u{0}').and_then(|m| m.strip_prefix("in:")) {
                    return deref_in(*g, x);
                }
            }
            vec![n]
        };

        for f in &p.funcs {
            for b in &f.blocks {
                for inst in &b.instrs {
                    match &inst.op {
                        Op::Bind { var, src }
                        | Op::Assign {
                            place: Place::Var(var),
                            src,
                        } => {
                            let dst = node_of(f, var);
                            let mut ns = Vec::new();
                            expr_nodes(f, src, &mut ns);
                            for n in ns {
                                for n in resolve(f.id, n) {
                                    edge(dst.clone(), n);
                                }
                            }
                        }
                        Op::Assign {
                            place: Place::Index(a, _),
                            src,
                        } => {
                            // Stored value keeps its deps; the index's
                            // are dropped by the store.
                            let mut ns = Vec::new();
                            expr_nodes(f, src, &mut ns);
                            for n in ns {
                                for n in resolve(f.id, n) {
                                    edge(Node::Global(a.clone()), n);
                                }
                            }
                        }
                        Op::Assign {
                            place: Place::Deref(x),
                            src,
                        } => {
                            let mut ns = Vec::new();
                            expr_nodes(f, src, &mut ns);
                            for n in ns {
                                for n in resolve(f.id, n) {
                                    edge(Node::RefOut(f.id, x.clone()), n);
                                }
                            }
                        }
                        Op::Input { .. } => {}
                        Op::Call { dst, callee, args } => {
                            let cf = p.func(*callee);
                            for (i, a) in args.iter().enumerate() {
                                let Some(prm) = cf.params.get(i) else {
                                    continue;
                                };
                                match a {
                                    Arg::Value(e) => {
                                        let mut ns = Vec::new();
                                        expr_nodes(f, e, &mut ns);
                                        for n in ns {
                                            for n in resolve(f.id, n) {
                                                edge(Node::Var(cf.id, prm.name.clone()), n);
                                            }
                                        }
                                    }
                                    Arg::Ref(y) => {
                                        // If the target is ever dep-live,
                                        // the callee's write-backs are too.
                                        let t = node_of(f, y);
                                        for t in resolve(f.id, t) {
                                            edge(t, Node::RefOut(cf.id, prm.name.clone()));
                                        }
                                    }
                                }
                            }
                            if let Some(d) = dst {
                                edge(node_of(f, d), Node::Ret(*callee));
                            }
                        }
                        Op::Output { args, .. } => {
                            // Observation point: argument deps are logged.
                            for e in args {
                                let mut ns = Vec::new();
                                expr_nodes(f, e, &mut ns);
                                for n in ns {
                                    seeds.extend(resolve(f.id, n));
                                }
                            }
                        }
                        // Loop-bound markers carry a placeholder ident,
                        // not a variable — nothing is observed.
                        Op::Annot {
                            kind: ocelot_ir::AnnotKind::Bound(_),
                            ..
                        } => {}
                        Op::Annot { var, .. } => {
                            // Fresh/consistent annotations log the var's
                            // deps at every use site.
                            seeds.extend(resolve(f.id, node_of(f, var)));
                        }
                        Op::Skip | Op::AtomStart { .. } | Op::AtomEnd { .. } => {}
                    }
                }
                match &b.term {
                    // Branch conditions drop their deps — no edges.
                    Terminator::Branch { .. } => {}
                    Terminator::Ret(Some(e)) => {
                        let mut ns = Vec::new();
                        expr_nodes(f, e, &mut ns);
                        for n in ns {
                            for n in resolve(f.id, n) {
                                edge(Node::Ret(f.id), n);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // Ref forwarding: writes through caller param y forwarded as
        // callee param q land in y's targets, which the Arg::Ref edge
        // above already wired (node_of maps by-ref y to ... Global).
        // node_of treats by-ref params as Global(name) — wrong; patch:
        // handled via resolve() in the Arg::Ref arm only when y is a
        // by-ref param, so wire those explicitly here instead.
        for f in &p.funcs {
            for (_, inst) in f.iter_insts() {
                if let Op::Call { callee, args, .. } = &inst.op {
                    let cf = p.func(*callee);
                    for (i, a) in args.iter().enumerate() {
                        if let (Arg::Ref(y), Some(prm)) = (a, cf.params.get(i)) {
                            if f.is_by_ref_param(y) {
                                for t in deref_in(f.id, y) {
                                    edges
                                        .entry(t)
                                        .or_default()
                                        .insert(Node::RefOut(cf.id, prm.name.clone()));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Externally-observed variables (policy-driven fresh-use
        // logging whose annotations were stripped from the stream) are
        // observation points exactly like an in-stream annotation.
        for (fid, x) in observed {
            let f = p.func(*fid);
            if f.is_by_ref_param(x) {
                seeds.extend(deref_in(*fid, x));
            } else {
                seeds.insert(node_of(f, x));
            }
        }

        // BFS from the seeds.
        let mut live: BTreeSet<Node> = BTreeSet::new();
        let mut work: Vec<Node> = seeds.into_iter().collect();
        while let Some(n) = work.pop() {
            if !live.insert(n.clone()) {
                continue;
            }
            if let Some(vs) = edges.get(&n) {
                work.extend(vs.iter().cloned());
            }
        }
        self.live = live;
    }
}

/// For every by-ref parameter, the concrete storage it can alias,
/// resolved transitively through ref forwarding. Iterated to a fixpoint
/// so `f(&x) → g(&p) → h(&q)` resolves `q` to `x`.
fn ref_targets(p: &Program) -> BTreeMap<(FuncId, Ident), BTreeSet<Target>> {
    let mut targets: BTreeMap<(FuncId, Ident), BTreeSet<Target>> = BTreeMap::new();
    for f in &p.funcs {
        for prm in &f.params {
            if prm.by_ref {
                targets.insert((f.id, prm.name.clone()), BTreeSet::new());
            }
        }
    }
    loop {
        let mut changed = false;
        for f in &p.funcs {
            for (_, inst) in f.iter_insts() {
                let Op::Call { callee, args, .. } = &inst.op else {
                    continue;
                };
                let cf = p.func(*callee);
                for (i, a) in args.iter().enumerate() {
                    let (Arg::Ref(y), Some(prm)) = (a, cf.params.get(i)) else {
                        continue;
                    };
                    if !prm.by_ref {
                        continue;
                    }
                    let key = (cf.id, prm.name.clone());
                    let add: BTreeSet<Target> = if f.is_by_ref_param(y) {
                        targets.get(&(f.id, y.clone())).cloned().unwrap_or_default()
                    } else if f.declares(y) {
                        [Target::Local(f.id, y.clone())].into()
                    } else {
                        [Target::Global(y.clone())].into()
                    };
                    let entry = targets.entry(key).or_default();
                    for t in add {
                        changed |= entry.insert(t);
                    }
                }
            }
        }
        if !changed {
            return targets;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::lower::compile;

    fn flow(src: &str) -> (ocelot_ir::Program, ValueFlow) {
        let p = compile(src).unwrap();
        let vf = ValueFlow::analyze(&p);
        (p, vf)
    }

    #[test]
    fn arithmetic_on_constants_is_pure() {
        let (p, vf) = flow("fn main() { let a = 1; let b = a * 3 + 2; out(log, b); }");
        let f = p.func(p.main);
        assert!(vf.expr_is_pure(f, &Expr::Var("a".into())));
        assert!(vf.expr_is_pure(f, &Expr::Var("b".into())));
    }

    #[test]
    fn input_data_is_impure_but_counters_beside_it_stay_pure() {
        let (p, vf) = flow(
            "sensor s; fn main() { let i = 0; let v = in(s); \
             while i < 3 { i = i + 1; } out(log, v + i); }",
        );
        let f = p.func(p.main);
        assert!(!vf.expr_is_pure(f, &Expr::Var("v".into())), "sample");
        assert!(vf.expr_is_pure(f, &Expr::Var("i".into())), "loop counter");
    }

    #[test]
    fn globals_written_with_input_data_become_impure() {
        let (p, vf) = flow(
            "sensor s; nv g = 0; nv c = 0; fn main() { \
             let v = in(s); g = v; c = c + 1; out(log, g + c); }",
        );
        let f = p.func(p.main);
        assert!(!vf.expr_is_pure(f, &Expr::Var("g".into())));
        assert!(
            vf.expr_is_pure(f, &Expr::Var("c".into())),
            "pure increments keep a counter global pure"
        );
        assert!(vf.global_is_pure("c"));
    }

    #[test]
    fn control_dependence_does_not_contaminate_purity() {
        // The taint analysis would taint `n` (incremented under a
        // tainted branch); runtime deps are data-only, so `n` is pure.
        let (p, vf) = flow(
            "sensor s; nv n = 0; fn main() { let v = in(s); \
             if v > 0 { n = n + 1; } out(log, n); }",
        );
        let f = p.func(p.main);
        assert!(vf.expr_is_pure(f, &Expr::Var("n".into())));
    }

    #[test]
    fn array_reads_mix_in_cell_impurity() {
        let (p, vf) = flow(
            "sensor s; nv h[4]; fn main() { let v = in(s); h[0] = v; \
             let x = h[1]; out(log, x); }",
        );
        let f = p.func(p.main);
        assert!(
            !vf.expr_is_pure(f, &Expr::Var("x".into())),
            "whole-array granularity: any impure store contaminates reads"
        );
    }

    #[test]
    fn call_flow_carries_impurity_through_params_and_rets() {
        let (p, vf) = flow(
            "sensor s; fn id(x) { return x; } \
             fn main() { let v = in(s); let w = id(v); let c = id(3); out(log, w + c); }",
        );
        let f = p.func(p.main);
        assert!(!vf.expr_is_pure(f, &Expr::Var("w".into())));
        assert!(
            !vf.expr_is_pure(f, &Expr::Var("c".into())),
            "one impure call site contaminates the shared parameter"
        );
    }

    #[test]
    fn refparam_writebacks_contaminate_the_target() {
        let (p, vf) = flow(
            "sensor s; fn fill(&o) { let v = in(s); *o = v; } \
             fn main() { let t = 0; fill(&t); out(log, t); }",
        );
        let f = p.func(p.main);
        assert!(!vf.expr_is_pure(f, &Expr::Var("t".into())));
    }

    #[test]
    fn deps_of_branch_only_values_are_dead() {
        let (p, vf) = flow(
            "sensor s; nv n = 0; fn main() { let v = in(s); \
             if v > 100 { n = n + 1; } out(log, n); }",
        );
        assert!(
            vf.var_deps_dead(p.main, "v"),
            "v only feeds a branch; its deps are never logged"
        );
    }

    #[test]
    fn output_arguments_are_dep_live() {
        let (p, vf) = flow("sensor s; fn main() { let v = in(s); out(log, v); }");
        assert!(!vf.var_deps_dead(p.main, "v"));
    }

    #[test]
    fn liveness_flows_backward_through_rets_and_args() {
        let (p, vf) = flow(
            "sensor s; fn model(m) { let acc = m * 3; return acc; } \
             fn main() { let v = in(s); let w = model(v); \
             if w > 9 { skip; } out(log, 1); }",
        );
        let model = p.func_by_name("model").unwrap();
        assert!(vf.ret_deps_dead(model), "w only feeds a branch");
        assert!(vf.var_deps_dead(model, "acc"));
        assert!(vf.var_deps_dead(model, "m"));
        assert!(
            vf.var_deps_dead(p.main, "v"),
            "v flows only into dead places"
        );
    }

    #[test]
    fn liveness_flows_backward_through_refparam_writebacks() {
        let (p, vf) = flow(
            "sensor s; fn smooth(&o) { let v = in(s); *o = v; } \
             fn probe(&o2) { let u = in(s); *o2 = u; } \
             fn main() { let a = 0; let b = 0; smooth(&a); probe(&b); \
             if a > 0 { skip; } out(log, b); }",
        );
        let smooth = p.func_by_name("smooth").unwrap();
        let probe = p.func_by_name("probe").unwrap();
        assert!(vf.refout_deps_dead(smooth, "o"), "a only feeds a branch");
        assert!(!vf.refout_deps_dead(probe, "o2"), "b is output");
        assert!(vf.var_deps_dead(p.main, "a"));
        assert!(!vf.var_deps_dead(p.main, "b"));
    }

    #[test]
    fn annotated_variables_are_dep_live() {
        let (p, vf) = flow(
            "sensor s; fn main() { let t = in(s); fresh(t); \
             if t > 0 { skip; } }",
        );
        assert!(
            !vf.var_deps_dead(p.main, "t"),
            "fresh-use logging observes t's deps"
        );
    }

    #[test]
    fn global_store_then_output_keeps_the_chain_live() {
        let (p, vf) = flow(
            "sensor s; nv g = 0; fn main() { let v = in(s); g = v; \
             let w = g; out(log, w); }",
        );
        assert!(!vf.var_deps_dead(p.main, "v"), "v → g → w → out");
        assert!(!vf.global_deps_dead("g"));
    }

    #[test]
    fn global_store_never_read_into_outputs_is_dead() {
        let (p, vf) = flow(
            "sensor s; nv cache[4]; fn main() { let v = in(s); \
             cache[0] = v; if cache[1] > 0 { skip; } out(log, 7); }",
        );
        assert!(vf.global_deps_dead("cache"), "cache feeds only a branch");
        assert!(vf.var_deps_dead(p.main, "v"));
    }

    #[test]
    fn store_index_deps_are_dropped_but_read_index_deps_merge() {
        let (p, vf) = flow(
            "sensor s; nv a[4]; nv b[4]; fn main() { let v = in(s); \
             a[v] = 1; let x = b[v]; out(log, x); }",
        );
        // v as a *store* index: dropped. v as a *read* index: merges
        // into x, which is output.
        assert!(!vf.var_deps_dead(p.main, "v"), "read-index path is live");
        let (p2, vf2) = flow(
            "sensor s; nv a[4]; fn main() { let v = in(s); \
             a[v] = 1; out(log, 3); }",
        );
        assert!(
            vf2.var_deps_dead(p2.main, "v"),
            "store-index deps never propagate"
        );
    }

    #[test]
    fn ref_forwarding_resolves_to_the_original_target() {
        let (p, vf) = flow(
            "sensor s; fn inner(&q) { let v = in(s); *q = v; } \
             fn outer(&r) { inner(&r); } \
             fn main() { let t = 0; outer(&t); out(log, t); }",
        );
        let f = p.func(p.main);
        assert!(!vf.expr_is_pure(f, &Expr::Var("t".into())), "purity");
        let inner = p.func_by_name("inner").unwrap();
        assert!(!vf.refout_deps_dead(inner, "q"), "liveness through forward");
    }
}
