//! # ocelot-hw
//!
//! Simulated energy-harvesting hardware for the Ocelot reproduction:
//! the Capybara-style capacitor bank with a low-power comparator
//! ([`energy`]), harvester models including the paper's
//! PowerCast-at-10-inches RF setup ([`harvest`]), the [`power`] supplies
//! the runtime draws from, and the deterministic sensed-world
//! [`sensors`] whose changes make freshness/consistency violations
//! observable.
//!
//! This crate is deliberately independent of the IR and runtime: it
//! models joules, microseconds, and sensor values only.
//!
//! ## Examples
//!
//! ```
//! use ocelot_hw::power::{HarvestedPower, PowerSupply};
//! use ocelot_hw::energy::PowerEvent;
//!
//! let mut supply = HarvestedPower::capybara_powercast();
//! // Drain until the comparator trips, then charge back up.
//! let mut steps = 0u64;
//! while supply.consume(50.0) == PowerEvent::Ok { steps += 1; }
//! let off_time_us = supply.recharge();
//! assert!(steps > 100 && off_time_us > 0);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod energy;
pub mod harvest;
pub mod power;
pub mod sensors;

pub use energy::{Capacitor, CostModel, PowerEvent};
pub use harvest::Harvester;
pub use power::{ContinuousPower, HarvestedPower, PowerSupply, RandomPower, ScriptedPower};
pub use sensors::{Environment, Signal};
