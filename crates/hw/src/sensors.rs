//! The sensed environment: named, time-varying signals.
//!
//! Freshness and temporal-consistency violations are only *observable*
//! when the world changes while power is off (Figure 2's weather front).
//! An [`Environment`] maps sensor channels to deterministic signals
//! sampled at the execution's wall-clock time; scenario constructors
//! reproduce the situations the paper's benchmarks sense.

use std::collections::BTreeMap;

/// A deterministic time-varying signal. All signals are pure functions
/// of time, so replaying an execution reproduces identical samples.
#[derive(Debug, Clone)]
pub enum Signal {
    /// Always `value`.
    Constant(i64),
    /// `before` until `at_us`, then `after` — a front crossing.
    Step {
        /// Value before the step.
        before: i64,
        /// Value from `at_us` on.
        after: i64,
        /// Step time in microseconds.
        at_us: u64,
    },
    /// Linear ramp from `(t0_us, start)` to `(t1_us, end)`, clamped
    /// outside.
    Ramp {
        /// Value at and before `t0_us`.
        start: i64,
        /// Value at and after `t1_us`.
        end: i64,
        /// Ramp start time.
        t0_us: u64,
        /// Ramp end time.
        t1_us: u64,
    },
    /// A square wave alternating `lo`/`hi` with the given period and
    /// duty fraction (per-mille on-time) — motion episodes, blinking
    /// light.
    Square {
        /// Value in the off phase.
        lo: i64,
        /// Value in the on phase.
        hi: i64,
        /// Period in microseconds.
        period_us: u64,
        /// On-time in per-mille of the period (0..=1000).
        duty_pm: u32,
    },
    /// Piecewise-constant schedule: `(from_us, value)` pairs, sorted.
    Piecewise(Vec<(u64, i64)>),
    /// Base signal plus deterministic pseudo-random noise in
    /// `[-amplitude, +amplitude]`, keyed by time and seed (no state, so
    /// sampling is replayable).
    Noisy {
        /// The underlying signal.
        base: Box<Signal>,
        /// Maximum absolute noise.
        amplitude: i64,
        /// Noise seed.
        seed: u64,
    },
    /// Pointwise sum of the parts (saturating) — compose a diurnal ramp
    /// with episodic bursts, or noise layers with different seeds.
    Sum(Vec<Signal>),
    /// Unbounded linear drift: `start + rate_per_s · t` — slow sensor
    /// drift or a battery temperature creeping over a whole deployment.
    Drift {
        /// Value at `t = 0`.
        start: i64,
        /// Signed change per simulated second.
        rate_per_s: i64,
    },
    /// Episodic bursts layered on a base signal: once per `every_us`
    /// period a burst of `width_us` adds `amplitude`, with the burst's
    /// offset inside each period drawn deterministically from `seed` and
    /// the period index — still a pure function of time.
    Burst {
        /// The quiescent signal.
        base: Box<Signal>,
        /// Added value while a burst is active.
        amplitude: i64,
        /// Burst period in microseconds.
        every_us: u64,
        /// Burst width in microseconds (clamped to the period).
        width_us: u64,
        /// Placement seed.
        seed: u64,
    },
    /// Clamps a base signal into `[lo, hi]` — sensor saturation.
    Clamp {
        /// The underlying signal.
        base: Box<Signal>,
        /// Lower saturation bound.
        lo: i64,
        /// Upper saturation bound.
        hi: i64,
    },
    /// Affine transform `base · num / den + offset` — derive a
    /// *correlated* channel from a shared base (clone one base into two
    /// `Scaled` wrappers and the channels move together, which is
    /// exactly what makes temporal-consistency violations observable
    /// across sensors).
    Scaled {
        /// The shared base signal.
        base: Box<Signal>,
        /// Numerator of the scale factor.
        num: i64,
        /// Denominator of the scale factor (0 is treated as 1).
        den: i64,
        /// Additive offset.
        offset: i64,
    },
}

impl Signal {
    /// Samples the signal at `t_us`.
    pub fn sample(&self, t_us: u64) -> i64 {
        match self {
            Signal::Constant(v) => *v,
            Signal::Step {
                before,
                after,
                at_us,
            } => {
                if t_us < *at_us {
                    *before
                } else {
                    *after
                }
            }
            Signal::Ramp {
                start,
                end,
                t0_us,
                t1_us,
            } => {
                if t_us <= *t0_us || t1_us <= t0_us {
                    *start
                } else if t_us >= *t1_us {
                    *end
                } else {
                    let span = (t1_us - t0_us) as i128;
                    let dt = (t_us - t0_us) as i128;
                    let delta = (*end as i128 - *start as i128) * dt / span;
                    (*start as i128 + delta) as i64
                }
            }
            Signal::Square {
                lo,
                hi,
                period_us,
                duty_pm,
            } => {
                let period = (*period_us).max(1);
                let phase = t_us % period;
                let on = period as u128 * (*duty_pm).min(1000) as u128 / 1000;
                if (phase as u128) < on {
                    *hi
                } else {
                    *lo
                }
            }
            Signal::Piecewise(steps) => {
                let mut v = steps.first().map(|(_, v)| *v).unwrap_or(0);
                for (from, value) in steps {
                    if t_us >= *from {
                        v = *value;
                    } else {
                        break;
                    }
                }
                v
            }
            Signal::Noisy {
                base,
                amplitude,
                seed,
            } => {
                let v = base.sample(t_us);
                if *amplitude == 0 {
                    return v;
                }
                let h = splitmix64(seed ^ t_us.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let span = (*amplitude as i128) * 2 + 1;
                let noise = (h as i128 % span) - *amplitude as i128;
                v + noise as i64
            }
            Signal::Sum(parts) => parts
                .iter()
                .fold(0i64, |acc, s| acc.saturating_add(s.sample(t_us))),
            Signal::Drift { start, rate_per_s } => {
                let delta = (*rate_per_s as i128) * (t_us as i128) / 1_000_000;
                (*start as i128 + delta).clamp(i64::MIN as i128, i64::MAX as i128) as i64
            }
            Signal::Burst {
                base,
                amplitude,
                every_us,
                width_us,
                seed,
            } => {
                let v = base.sample(t_us);
                let period = (*every_us).max(1);
                let width = (*width_us).min(period);
                let idx = t_us / period;
                let phase = t_us % period;
                let slack = period - width;
                let offset = if slack == 0 {
                    0
                } else {
                    splitmix64(seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % slack
                };
                if phase >= offset && phase < offset + width {
                    v.saturating_add(*amplitude)
                } else {
                    v
                }
            }
            Signal::Clamp { base, lo, hi } => {
                let (lo, hi) = (*lo.min(hi), *lo.max(hi));
                base.sample(t_us).clamp(lo, hi)
            }
            Signal::Scaled {
                base,
                num,
                den,
                offset,
            } => {
                let den = if *den == 0 { 1 } else { *den };
                let v =
                    (base.sample(t_us) as i128) * (*num as i128) / (den as i128) + *offset as i128;
                v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A set of named sensor channels.
///
/// Signals live in a dense vector with a name index on the side, so a
/// channel resolved once (via [`Environment::channel_index`]) samples
/// without a name lookup — the runtime's compiled input sites use this.
#[derive(Debug, Clone, Default)]
pub struct Environment {
    index: BTreeMap<String, usize>,
    signals: Vec<Signal>,
}

impl Environment {
    /// An empty environment (all unknown sensors read 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces a channel.
    pub fn with(mut self, sensor: &str, signal: Signal) -> Self {
        match self.index.get(sensor) {
            Some(&i) => self.signals[i] = signal,
            None => {
                self.index.insert(sensor.to_string(), self.signals.len());
                self.signals.push(signal);
            }
        }
        self
    }

    /// The declared channel names, sorted (scenario tooling lists and
    /// previews them).
    pub fn channels(&self) -> Vec<&str> {
        self.index.keys().map(String::as_str).collect()
    }

    /// The stable index of `sensor`, if declared — sampling through it
    /// skips the name lookup forever after.
    pub fn channel_index(&self, sensor: &str) -> Option<usize> {
        self.index.get(sensor).copied()
    }

    /// Samples the channel at a pre-resolved index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was not obtained from
    /// [`Environment::channel_index`].
    pub fn sample_index(&self, idx: usize, t_us: u64) -> i64 {
        self.signals[idx].sample(t_us)
    }

    /// Samples `sensor` at `t_us`; undeclared channels read 0.
    pub fn sample(&self, sensor: &str, t_us: u64) -> i64 {
        self.channel_index(sensor)
            .map(|i| self.sample_index(i, t_us))
            .unwrap_or(0)
    }

    /// The Figure 2 weather scenario: temperature spikes and a storm
    /// front crosses at `front_us` — pressure falls as humidity rises.
    /// Channels: `tmp`, `pres`, `hum`.
    pub fn weather_front(front_us: u64) -> Self {
        Environment::new()
            .with(
                "tmp",
                Signal::Step {
                    before: 2,
                    after: 10,
                    at_us: front_us,
                },
            )
            .with(
                "pres",
                Signal::Step {
                    before: 90,
                    after: 40,
                    at_us: front_us,
                },
            )
            .with(
                "hum",
                Signal::Step {
                    before: 20,
                    after: 80,
                    at_us: front_us,
                },
            )
    }

    /// Greenhouse scenario: slow temperature ramp, humidity steps when
    /// misters fire. Channels: `temp`, `hum`.
    pub fn greenhouse(seed: u64) -> Self {
        Environment::new()
            .with(
                "temp",
                Signal::Noisy {
                    base: Box::new(Signal::Ramp {
                        start: 18,
                        end: 35,
                        t0_us: 0,
                        t1_us: 3_000_000,
                    }),
                    amplitude: 1,
                    seed,
                },
            )
            .with(
                "hum",
                Signal::Noisy {
                    base: Box::new(Signal::Square {
                        lo: 30,
                        hi: 75,
                        period_us: 700_000,
                        duty_pm: 400,
                    }),
                    amplitude: 2,
                    seed: seed ^ 0xDEAD,
                },
            )
    }

    /// Motion episodes for the activity-recognition benchmark: bursts of
    /// acceleration alternating with stillness. Channel: `accel`.
    pub fn motion_episodes(seed: u64) -> Self {
        Environment::new().with(
            "accel",
            Signal::Noisy {
                base: Box::new(Signal::Square {
                    lo: 0,
                    hi: 60,
                    period_us: 400_000,
                    duty_pm: 500,
                }),
                amplitude: 8,
                seed,
            },
        )
    }

    /// Light steps for the photoresistor benchmarks: a lamp toggling,
    /// bright about two-thirds of the time. Channel: `photo`.
    pub fn light_steps(seed: u64) -> Self {
        Environment::new().with(
            "photo",
            Signal::Noisy {
                base: Box::new(Signal::Square {
                    lo: 10,
                    hi: 90,
                    period_us: 250_000,
                    duty_pm: 650,
                }),
                amplitude: 3,
                seed,
            },
        )
    }

    /// Tire scenario: a *burst* — pressure collapses within ~150 ms of
    /// the puncture while temperature climbs and the wheel keeps
    /// spinning. Channels: `tirepres`, `tiretemp`, `wheelacc`.
    pub fn tire_blowout(puncture_us: u64, seed: u64) -> Self {
        Environment::new()
            .with(
                "tirepres",
                Signal::Noisy {
                    base: Box::new(Signal::Ramp {
                        start: 100,
                        end: 18,
                        t0_us: puncture_us,
                        t1_us: puncture_us + 150_000,
                    }),
                    amplitude: 2,
                    seed,
                },
            )
            .with(
                "tiretemp",
                Signal::Ramp {
                    start: 25,
                    end: 70,
                    t0_us: puncture_us,
                    t1_us: puncture_us + 1_000_000,
                },
            )
            .with(
                "wheelacc",
                Signal::Noisy {
                    base: Box::new(Signal::Square {
                        lo: 5,
                        hi: 40,
                        period_us: 120_000,
                        duty_pm: 700,
                    }),
                    amplitude: 5,
                    seed: seed ^ 0xBEEF,
                },
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_changes_exactly_at_front() {
        let s = Signal::Step {
            before: 1,
            after: 9,
            at_us: 100,
        };
        assert_eq!(s.sample(99), 1);
        assert_eq!(s.sample(100), 9);
    }

    #[test]
    fn ramp_interpolates_and_clamps() {
        let s = Signal::Ramp {
            start: 0,
            end: 100,
            t0_us: 0,
            t1_us: 100,
        };
        assert_eq!(s.sample(0), 0);
        assert_eq!(s.sample(50), 50);
        assert_eq!(s.sample(1000), 100);
    }

    #[test]
    fn square_respects_duty() {
        let s = Signal::Square {
            lo: 0,
            hi: 1,
            period_us: 100,
            duty_pm: 250,
        };
        assert_eq!(s.sample(0), 1);
        assert_eq!(s.sample(24), 1);
        assert_eq!(s.sample(25), 0);
        assert_eq!(s.sample(99), 0);
        assert_eq!(s.sample(100), 1, "periodic");
    }

    #[test]
    fn piecewise_takes_latest_step() {
        let s = Signal::Piecewise(vec![(0, 5), (10, 7), (20, 9)]);
        assert_eq!(s.sample(0), 5);
        assert_eq!(s.sample(15), 7);
        assert_eq!(s.sample(25), 9);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let s = Signal::Noisy {
            base: Box::new(Signal::Constant(50)),
            amplitude: 3,
            seed: 99,
        };
        for t in 0..200 {
            let v = s.sample(t);
            assert!((47..=53).contains(&v));
            assert_eq!(v, s.sample(t), "pure function of time");
        }
        // Noise actually varies.
        let distinct: std::collections::BTreeSet<i64> = (0..200).map(|t| s.sample(t)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn sum_adds_parts_saturating() {
        let s = Signal::Sum(vec![
            Signal::Constant(3),
            Signal::Step {
                before: 0,
                after: 4,
                at_us: 10,
            },
        ]);
        assert_eq!(s.sample(0), 3);
        assert_eq!(s.sample(10), 7);
        let sat = Signal::Sum(vec![Signal::Constant(i64::MAX), Signal::Constant(5)]);
        assert_eq!(sat.sample(0), i64::MAX, "saturates instead of wrapping");
    }

    #[test]
    fn drift_is_linear_in_seconds() {
        let s = Signal::Drift {
            start: 100,
            rate_per_s: -6,
        };
        assert_eq!(s.sample(0), 100);
        assert_eq!(s.sample(1_000_000), 94);
        assert_eq!(s.sample(10_500_000), 100 - 63);
    }

    #[test]
    fn burst_fires_once_per_period_and_is_pure() {
        let s = Signal::Burst {
            base: Box::new(Signal::Constant(10)),
            amplitude: 50,
            every_us: 1_000,
            width_us: 100,
            seed: 7,
        };
        for period in 0..20u64 {
            let hits: Vec<u64> = (period * 1000..(period + 1) * 1000)
                .filter(|&t| s.sample(t) == 60)
                .collect();
            assert_eq!(hits.len(), 100, "one burst of exactly width_us per period");
            // Contiguous window.
            assert_eq!(hits[99] - hits[0], 99);
            assert_eq!(s.sample(hits[0]), s.sample(hits[0]), "pure function of t");
        }
        // Placement varies across periods (seeded, not phase-locked).
        let offset = |p: u64| (p * 1000..(p + 1) * 1000).find(|&t| s.sample(t) == 60);
        let offsets: std::collections::BTreeSet<u64> = (0..20)
            .filter_map(|p| offset(p).map(|t| t % 1000))
            .collect();
        assert!(offsets.len() > 1, "burst offsets move between periods");
    }

    #[test]
    fn clamp_saturates_both_ends() {
        let s = Signal::Clamp {
            base: Box::new(Signal::Ramp {
                start: -100,
                end: 100,
                t0_us: 0,
                t1_us: 200,
            }),
            lo: -10,
            hi: 10,
        };
        assert_eq!(s.sample(0), -10);
        assert_eq!(s.sample(100), 0);
        assert_eq!(s.sample(200), 10);
    }

    #[test]
    fn scaled_clones_stay_correlated() {
        // Two channels derived from one shared base move together —
        // the correlated-multi-sensor shape scenarios build on.
        let base = Signal::Square {
            lo: 0,
            hi: 40,
            period_us: 100,
            duty_pm: 500,
        };
        let a = Signal::Scaled {
            base: Box::new(base.clone()),
            num: 1,
            den: 2,
            offset: 5,
        };
        let b = Signal::Scaled {
            base: Box::new(base),
            num: -1,
            den: 1,
            offset: 100,
        };
        for t in 0..300 {
            let (va, vb) = (a.sample(t), b.sample(t));
            // Both are affine images of the same base value.
            let base_v = (va - 5) * 2;
            assert_eq!(vb, 100 - base_v, "t={t}");
        }
        // Division by zero denominator is treated as 1, not a panic.
        let d0 = Signal::Scaled {
            base: Box::new(Signal::Constant(7)),
            num: 3,
            den: 0,
            offset: 0,
        };
        assert_eq!(d0.sample(0), 21);
    }

    #[test]
    fn environment_lists_declared_channels() {
        let env = Environment::new()
            .with("b", Signal::Constant(1))
            .with("a", Signal::Constant(2));
        assert_eq!(env.channels(), vec!["a", "b"]);
    }

    #[test]
    fn environment_unknown_sensor_reads_zero() {
        let env = Environment::new();
        assert_eq!(env.sample("ghost", 123), 0);
    }

    #[test]
    fn weather_front_is_consistent_before_and_after() {
        let env = Environment::weather_front(1000);
        // Before: fair — high pressure, low humidity.
        assert!(env.sample("pres", 0) > 60);
        assert!(env.sample("hum", 0) < 50);
        // After: storm — low pressure, high humidity.
        assert!(env.sample("pres", 2000) < 60);
        assert!(env.sample("hum", 2000) > 50);
        // Temperature spikes with the front.
        assert!(env.sample("tmp", 2000) > env.sample("tmp", 0));
    }

    #[test]
    fn scenarios_produce_named_channels() {
        assert_ne!(Environment::greenhouse(1).sample("temp", 1_500_000), 0);
        assert!(Environment::motion_episodes(1).sample("accel", 50_000) > 0);
        assert!(Environment::light_steps(1).sample("photo", 10_000) > 0);
        let tire = Environment::tire_blowout(0, 1);
        assert!(tire.sample("tirepres", 0) > tire.sample("tirepres", 2_000_000));
        assert!(tire.sample("wheelacc", 50_000) != 0);
    }
}
