//! Energy storage and instruction cost model.
//!
//! Models the Capybara energy-harvesting platform the paper evaluates on
//! (§6.3): a capacitor bank feeding an MSP430-class MCU, with a
//! comparator that raises a low-power interrupt when the stored energy
//! falls below a trigger threshold. The trigger is set high enough that
//! the remaining energy always completes a JIT checkpoint — the same
//! assumption Samoyed and the paper make.

/// Per-operation costs, in CPU cycles.
///
/// Absolute values are calibrated to an 8 MHz MSP430-class core: what
/// matters for the paper's figures is the *ratio* between plain compute,
/// sensor sampling, checkpointing, and undo logging.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Plain ALU op / assignment / bind.
    pub alu: u64,
    /// Non-volatile memory write (per word).
    pub nv_write: u64,
    /// Call/return overhead.
    pub call: u64,
    /// Sensor sample (ADC conversion + settling) — milliseconds-scale.
    pub input: u64,
    /// Per-channel overrides of the sampling cost: real sensors differ
    /// widely (a photoresistor integrates light; a MEMS accelerometer
    /// wakes, settles, and converts; a TPMS pressure cell is nearly
    /// instant).
    pub input_overrides: std::collections::BTreeMap<String, u64>,
    /// Output (UART/radio) per word written.
    pub output_word: u64,
    /// Fixed part of saving volatile context (registers).
    pub ckpt_base: u64,
    /// Per word of volatile state (stack/locals) saved or restored.
    pub ckpt_word: u64,
    /// Per word copied into an atomic region's undo log.
    pub log_word: u64,
    /// Nanoseconds per cycle (125 ns at 8 MHz).
    pub cycle_ns: u64,
    /// Average active-mode energy per cycle, in nanojoules.
    pub energy_per_cycle_nj: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 2,
            nv_write: 4,
            call: 12,
            input: 4_000,
            input_overrides: std::collections::BTreeMap::new(),
            output_word: 800,
            ckpt_base: 400,
            ckpt_word: 8,
            log_word: 8,
            cycle_ns: 125,
            energy_per_cycle_nj: 1.0,
        }
    }
}

impl CostModel {
    /// Sampling cost for `sensor`, honoring per-channel overrides.
    pub fn input_cycles(&self, sensor: &str) -> u64 {
        self.input_overrides
            .get(sensor)
            .copied()
            .unwrap_or(self.input)
    }

    /// Registers a per-channel sampling cost (builder-style).
    pub fn with_input_cost(mut self, sensor: &str, cycles: u64) -> Self {
        self.input_overrides.insert(sensor.to_string(), cycles);
        self
    }

    /// Converts cycles to microseconds (rounded up).
    pub fn cycles_to_us(&self, cycles: u64) -> u64 {
        (cycles * self.cycle_ns).div_ceil(1_000)
    }

    /// Energy in nanojoules consumed by `cycles` active cycles.
    pub fn cycles_to_nj(&self, cycles: u64) -> f64 {
        cycles as f64 * self.energy_per_cycle_nj
    }

    /// Cycles to take a checkpoint of `volatile_words` of state.
    pub fn checkpoint_cycles(&self, volatile_words: usize) -> u64 {
        self.ckpt_base + self.ckpt_word * volatile_words as u64
    }

    /// Cycles to restore a checkpoint of `volatile_words` of state.
    pub fn restore_cycles(&self, volatile_words: usize) -> u64 {
        self.ckpt_base / 2 + self.ckpt_word * volatile_words as u64
    }

    /// Cycles to undo-log `words` of non-volatile data at region entry.
    pub fn log_cycles(&self, words: usize) -> u64 {
        self.log_word * words as u64
    }
}

/// What the comparator reports after consuming energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerEvent {
    /// Enough charge remains above the trigger threshold.
    Ok,
    /// The low-power interrupt fired: checkpoint (JIT mode) and shut
    /// down. The reserve below the trigger still suffices for that.
    LowPower,
}

/// A capacitor bank with a comparator trigger.
#[derive(Debug, Clone)]
pub struct Capacitor {
    capacity_nj: f64,
    level_nj: f64,
    trigger_nj: f64,
}

impl Capacitor {
    /// Creates a full capacitor holding `capacity_nj` of usable energy
    /// with a low-power trigger at `trigger_nj`.
    ///
    /// # Panics
    ///
    /// Panics if the trigger exceeds the capacity or either is negative.
    pub fn new(capacity_nj: f64, trigger_nj: f64) -> Self {
        assert!(capacity_nj > 0.0, "capacity must be positive");
        assert!(
            (0.0..capacity_nj).contains(&trigger_nj),
            "trigger must lie within the capacity"
        );
        Capacitor {
            capacity_nj,
            level_nj: capacity_nj,
            trigger_nj,
        }
    }

    /// A Capybara-like bank: ~50 µJ usable with a trigger leaving ~4 µJ
    /// of checkpoint reserve.
    pub fn capybara() -> Self {
        Capacitor::new(50_000.0, 4_000.0)
    }

    /// Usable capacity in nanojoules.
    pub fn capacity_nj(&self) -> f64 {
        self.capacity_nj
    }

    /// Current charge level in nanojoules.
    pub fn level_nj(&self) -> f64 {
        self.level_nj
    }

    /// The comparator trigger level.
    pub fn trigger_nj(&self) -> f64 {
        self.trigger_nj
    }

    /// Draws `energy_nj`; reports [`PowerEvent::LowPower`] when the level
    /// crosses the trigger.
    pub fn consume(&mut self, energy_nj: f64) -> PowerEvent {
        let was_above = self.level_nj > self.trigger_nj;
        self.level_nj = (self.level_nj - energy_nj).max(0.0);
        if was_above && self.level_nj <= self.trigger_nj {
            PowerEvent::LowPower
        } else if self.level_nj <= self.trigger_nj {
            // Already below trigger (reserve zone): the caller is
            // finishing its checkpoint; don't re-trigger.
            PowerEvent::Ok
        } else {
            PowerEvent::Ok
        }
    }

    /// Energy needed to refill completely.
    pub fn deficit_nj(&self) -> f64 {
        (self.capacity_nj - self.level_nj).max(0.0)
    }

    /// Adds harvested energy (clamped at capacity).
    pub fn charge(&mut self, energy_nj: f64) {
        self.level_nj = (self.level_nj + energy_nj).min(self.capacity_nj);
    }

    /// Refills to capacity (used when the harvester model returns a
    /// closed-form charging time).
    pub fn refill(&mut self) {
        self.level_nj = self.capacity_nj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_have_sane_ratios() {
        let c = CostModel::default();
        assert!(c.input > 100 * c.alu, "sampling dwarfs compute");
        assert!(c.ckpt_base > 10 * c.alu);
        assert_eq!(c.cycles_to_us(8), 1, "8 cycles at 8 MHz = 1 µs");
    }

    #[test]
    fn checkpoint_cost_scales_with_state() {
        let c = CostModel::default();
        assert!(c.checkpoint_cycles(64) > c.checkpoint_cycles(8));
        assert_eq!(
            c.checkpoint_cycles(0),
            c.ckpt_base,
            "empty checkpoint costs the base"
        );
    }

    #[test]
    fn capacitor_triggers_once_at_threshold() {
        let mut cap = Capacitor::new(100.0, 20.0);
        assert_eq!(cap.consume(50.0), PowerEvent::Ok);
        assert_eq!(cap.consume(40.0), PowerEvent::LowPower, "crossed 20");
        // In the reserve zone no re-trigger.
        assert_eq!(cap.consume(5.0), PowerEvent::Ok);
        assert!(cap.level_nj() >= 0.0);
    }

    #[test]
    fn capacitor_clamps_at_zero_and_capacity() {
        let mut cap = Capacitor::new(100.0, 10.0);
        cap.consume(1000.0);
        assert_eq!(cap.level_nj(), 0.0);
        cap.charge(5000.0);
        assert_eq!(cap.level_nj(), 100.0);
    }

    #[test]
    fn deficit_tracks_consumption() {
        let mut cap = Capacitor::new(100.0, 10.0);
        cap.consume(30.0);
        assert!((cap.deficit_nj() - 30.0).abs() < 1e-9);
        cap.refill();
        assert_eq!(cap.deficit_nj(), 0.0);
    }

    #[test]
    #[should_panic(expected = "trigger")]
    fn rejects_trigger_above_capacity() {
        let _ = Capacitor::new(10.0, 20.0);
    }

    #[test]
    fn capybara_reserve_covers_a_checkpoint() {
        let cap = Capacitor::capybara();
        let costs = CostModel::default();
        // Worst-case checkpoint: 256 words of volatile state.
        let worst = costs.cycles_to_nj(costs.checkpoint_cycles(256));
        assert!(
            cap.trigger_nj() > worst,
            "trigger reserve {} must cover worst-case checkpoint {}",
            cap.trigger_nj(),
            worst
        );
    }
}
