//! Power supplies: the interface between the intermittent runtime and
//! the energy substrate.
//!
//! The runtime draws energy per executed instruction and receives a
//! [`PowerEvent::LowPower`] when the comparator trips; on shutdown it
//! asks for the off/charging time before reboot — the arbitrary `n` that
//! the paper's `pick(n)` models in the reboot rules (Appendix H).

use crate::energy::{Capacitor, PowerEvent};
use crate::harvest::Harvester;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of operating power for an intermittent execution.
///
/// Supplies are `Send` so a machine (and the boxed supply it owns) can
/// be moved onto a worker thread of the parallel evaluation harness;
/// every supply here is plain data plus a seeded RNG, so the bound is
/// free.
pub trait PowerSupply: Send {
    /// Draws `energy_nj` for useful work; returns
    /// [`PowerEvent::LowPower`] when the system must checkpoint and
    /// shut down.
    fn consume(&mut self, energy_nj: f64) -> PowerEvent;

    /// Off-time in microseconds until the system can reboot, refilling
    /// storage as a side effect.
    fn recharge(&mut self) -> u64;

    /// True for supplies that never fail (continuous power).
    fn is_continuous(&self) -> bool {
        false
    }

    /// Draws the energy of a whole pre-costed instruction batch in one
    /// call — the compiled execution backend charges straight-line
    /// blocks this way instead of once per instruction.
    ///
    /// A single batched draw is only exact when the comparator cannot
    /// trip mid-batch, so callers must batch only on supplies whose
    /// [`PowerSupply::is_continuous`] is true; on a finite supply the
    /// per-instruction draw sequence determines *which* instruction the
    /// low-power interrupt lands on, and collapsing it would move the
    /// checkpoint. The default forwards to [`PowerSupply::consume`] and
    /// makes that contract self-enforcing: batching a finite supply is
    /// a caller bug, caught by a debug assertion rather than by a
    /// silently relocated checkpoint.
    fn consume_batch(&mut self, energy_nj: f64) -> PowerEvent {
        debug_assert!(
            self.is_continuous(),
            "batched energy draws are only exact on continuous supplies \
             (per-instruction draws decide where the comparator trips)"
        );
        self.consume(energy_nj)
    }
}

/// Continuous bench power: never fails.
#[derive(Debug, Clone, Default)]
pub struct ContinuousPower;

impl PowerSupply for ContinuousPower {
    fn consume(&mut self, _energy_nj: f64) -> PowerEvent {
        PowerEvent::Ok
    }

    fn recharge(&mut self) -> u64 {
        0
    }

    fn is_continuous(&self) -> bool {
        true
    }
}

/// Harvested power: a capacitor fed by a harvester — the Capybara +
/// PowerCast configuration of §7.2.
#[derive(Debug, Clone)]
pub struct HarvestedPower {
    /// The storage bank.
    pub capacitor: Capacitor,
    /// The ambient source.
    pub harvester: Harvester,
    /// Boot-voltage jitter: on each reboot the bank restarts somewhere
    /// below full, modeling comparator hysteresis and ambient variation
    /// during the boot ramp. Without it, constant-length programs
    /// phase-lock the failure point to one spot (`None` disables).
    boot_jitter: Option<(StdRng, f64)>,
}

impl HarvestedPower {
    /// Builds a supply from parts (no boot jitter).
    pub fn new(capacitor: Capacitor, harvester: Harvester) -> Self {
        HarvestedPower {
            capacitor,
            harvester,
            boot_jitter: None,
        }
    }

    /// The paper's evaluation setup.
    pub fn capybara_powercast() -> Self {
        Self::new(Capacitor::capybara(), Harvester::powercast_at_10in())
    }

    /// Capybara storage with a seeded noisy harvester.
    pub fn capybara_noisy(seed: u64) -> Self {
        Self::new(Capacitor::capybara(), Harvester::powercast_noisy(seed))
    }

    /// Enables boot-voltage jitter: each reboot starts with up to
    /// `frac` of the usable capacity already spent (uniformly).
    pub fn with_boot_jitter(mut self, seed: u64, frac: f64) -> Self {
        self.boot_jitter = Some((StdRng::seed_from_u64(seed), frac.clamp(0.0, 0.95)));
        self
    }
}

impl PowerSupply for HarvestedPower {
    fn consume(&mut self, energy_nj: f64) -> PowerEvent {
        self.capacitor.consume(energy_nj)
    }

    fn recharge(&mut self) -> u64 {
        let t = self.harvester.charge_time_us(self.capacitor.deficit_nj());
        self.capacitor.refill();
        if let Some((rng, frac)) = &mut self.boot_jitter {
            let spend = self.capacitor.capacity_nj() * *frac * rng.gen::<f64>();
            // Spend from the top without tripping the comparator.
            let headroom = (self.capacitor.level_nj() - self.capacitor.trigger_nj() - 1.0).max(0.0);
            self.capacitor.consume(spend.min(headroom));
        }
        t
    }
}

/// Scripted power that fails after fixed amounts of consumed energy —
/// used by unit tests to place failures deterministically.
#[derive(Debug, Clone)]
pub struct ScriptedPower {
    /// Remaining energy budgets; each entry is one power-on interval.
    budgets: Vec<f64>,
    current: f64,
    /// Fixed off-time per failure.
    off_time_us: u64,
    exhausted_budgets: usize,
}

impl ScriptedPower {
    /// Power that fails each time `budgets[i]` nanojoules have been
    /// consumed, then never again once the script is exhausted.
    pub fn new(budgets: Vec<f64>, off_time_us: u64) -> Self {
        let current = budgets.first().copied().unwrap_or(f64::INFINITY);
        ScriptedPower {
            budgets,
            current,
            off_time_us,
            exhausted_budgets: 0,
        }
    }

    /// Number of completed power-off cycles so far.
    pub fn failures(&self) -> usize {
        self.exhausted_budgets
    }
}

impl PowerSupply for ScriptedPower {
    fn consume(&mut self, energy_nj: f64) -> PowerEvent {
        self.current -= energy_nj;
        if self.current <= 0.0 {
            PowerEvent::LowPower
        } else {
            PowerEvent::Ok
        }
    }

    fn recharge(&mut self) -> u64 {
        self.exhausted_budgets += 1;
        self.current = self
            .budgets
            .get(self.exhausted_budgets)
            .copied()
            .unwrap_or(f64::INFINITY);
        self.off_time_us
    }
}

/// Random power: exponential-ish on-intervals drawn around a mean energy
/// budget, for soak testing.
#[derive(Debug, Clone)]
pub struct RandomPower {
    mean_budget_nj: f64,
    mean_off_us: u64,
    current: f64,
    rng: StdRng,
}

impl RandomPower {
    /// Seeded random supply with a mean on-interval energy budget and a
    /// mean off-time.
    pub fn new(mean_budget_nj: f64, mean_off_us: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let current = sample_exp(&mut rng, mean_budget_nj);
        RandomPower {
            mean_budget_nj,
            mean_off_us,
            current,
            rng,
        }
    }
}

fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-6..1.0);
    -mean * u.ln()
}

impl PowerSupply for RandomPower {
    fn consume(&mut self, energy_nj: f64) -> PowerEvent {
        self.current -= energy_nj;
        if self.current <= 0.0 {
            PowerEvent::LowPower
        } else {
            PowerEvent::Ok
        }
    }

    fn recharge(&mut self) -> u64 {
        self.current = sample_exp(&mut self.rng, self.mean_budget_nj);
        let off = sample_exp(&mut self.rng, self.mean_off_us as f64);
        off.ceil().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_never_fails() {
        let mut p = ContinuousPower;
        for _ in 0..1000 {
            assert_eq!(p.consume(1e9), PowerEvent::Ok);
        }
        assert!(p.is_continuous());
        assert_eq!(p.recharge(), 0);
        assert_eq!(p.consume_batch(1e12), PowerEvent::Ok);
    }

    #[test]
    fn batched_draw_equals_split_draw_on_continuous_power() {
        // The batching contract: on a continuous supply one batched
        // draw and any per-instruction split of it are indistinguishable.
        let mut a = ContinuousPower;
        let mut b = ContinuousPower;
        assert_eq!(a.consume_batch(30.0), PowerEvent::Ok);
        for _ in 0..3 {
            assert_eq!(b.consume(10.0), PowerEvent::Ok);
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "continuous supplies"))]
    fn batched_draw_on_a_finite_supply_is_a_caller_bug() {
        // The compiled backend gates batching on `is_continuous`; a
        // caller that forgets the gate trips the debug assertion
        // instead of silently moving the comparator trip point.
        let mut p = ScriptedPower::new(vec![10.0], 5);
        assert_eq!(p.consume_batch(11.0), PowerEvent::LowPower);
    }

    #[test]
    fn harvested_fails_and_recovers() {
        let mut p = HarvestedPower::capybara_powercast();
        let mut events = 0;
        let mut safety = 0;
        loop {
            safety += 1;
            assert!(safety < 1_000_000);
            if p.consume(100.0) == PowerEvent::LowPower {
                events += 1;
                break;
            }
        }
        assert_eq!(events, 1);
        let off = p.recharge();
        assert!(off > 1_000, "charging 46 µJ takes real time, got {off} µs");
        assert_eq!(
            p.consume(100.0),
            PowerEvent::Ok,
            "full again after recharge"
        );
    }

    #[test]
    fn scripted_fails_exactly_on_schedule() {
        let mut p = ScriptedPower::new(vec![10.0, 20.0], 5);
        assert_eq!(p.consume(9.0), PowerEvent::Ok);
        assert_eq!(p.consume(2.0), PowerEvent::LowPower);
        assert_eq!(p.recharge(), 5);
        assert_eq!(p.failures(), 1);
        assert_eq!(p.consume(19.0), PowerEvent::Ok);
        assert_eq!(p.consume(2.0), PowerEvent::LowPower);
        p.recharge();
        // Script exhausted: effectively continuous now.
        assert_eq!(p.consume(1e12), PowerEvent::Ok);
    }

    #[test]
    fn random_power_is_reproducible() {
        let run = |seed| {
            let mut p = RandomPower::new(1000.0, 50, seed);
            let mut fails = 0;
            for _ in 0..10_000 {
                if p.consume(10.0) == PowerEvent::LowPower {
                    fails += 1;
                    p.recharge();
                }
            }
            fails
        };
        assert_eq!(run(1), run(1));
        // Mean budget 1000 nJ at 10 nJ/step ≈ failure every ~100 steps.
        let f = run(2);
        assert!(f > 20 && f < 500, "plausible failure count, got {f}");
    }
}
