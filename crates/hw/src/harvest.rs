//! Energy harvester models.
//!
//! The paper's testbed harvests RF energy from a PowerCast transmitter
//! placed 10 inches from the device (§7.2); off-time charging durations
//! are "dictated by the physical environment". These models supply the
//! charging power: a constant RF source parameterized by distance
//! (far-field inverse-square), a noisy source for realistic jitter, and
//! a duty-cycled source for on/off ambients.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of harvested power.
// The `Noisy` variant carries an `StdRng` (~136 bytes); a handful of
// `Harvester` values exist per simulation, so boxing would only add
// indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Harvester {
    /// Constant harvesting power in nanowatts.
    Constant {
        /// Power in nW.
        power_nw: f64,
    },
    /// RF far-field source: power falls off with the square of distance.
    Rf {
        /// Power at 1 inch, in nW.
        power_at_1in_nw: f64,
        /// Distance in inches.
        distance_in: f64,
    },
    /// Log-uniform jitter around a base power (multiplicative noise in
    /// `[1/(1+jitter), 1+jitter]`), resampled per charging interval.
    Noisy {
        /// Base power in nW.
        base_nw: f64,
        /// Relative jitter, e.g. `0.5` for ±50%.
        jitter: f64,
        /// Deterministic RNG.
        rng: StdRng,
    },
    /// Alternating on/off ambient (e.g. rotating machinery or swept RF):
    /// harvests only during the on fraction of each period.
    DutyCycle {
        /// Power while on, in nW.
        on_power_nw: f64,
        /// Fraction of time the source is on, in `(0, 1]`.
        duty: f64,
    },
    /// Piecewise power schedule over *cumulative charging time*: each
    /// `(from_us, power_nw)` segment applies once that much total
    /// off-time has accrued; the last segment holds forever. Models a
    /// supply that browns out (or recovers) over a deployment.
    Schedule {
        /// `(from_us, power_nw)` segments, sorted by `from_us`.
        segments: Vec<(u64, f64)>,
        /// Charging time accrued so far (advanced by
        /// [`Harvester::charge_time_us`]).
        elapsed_us: u64,
    },
    /// Trace-scripted power: successive charging intervals read
    /// successive samples, cycling when the trace is exhausted (a
    /// periodic ambient recording).
    Trace {
        /// Power per charging interval, in nW.
        powers_nw: Vec<f64>,
        /// Next sample index.
        next: usize,
    },
}

impl Harvester {
    /// The paper's setup: PowerCast transmitter at 10 inches. Calibrated
    /// so a Capybara-scale bank (50 µJ) refills in roughly 50 ms —
    /// charging dominates runtime, as in Figure 8.
    pub fn powercast_at_10in() -> Self {
        // 1 nJ/µs at 10in → power_at_1in = 100 nJ/µs = 100_000 nW... using
        // nW: 1 nJ/µs = 1000 µW*? Keep units simple: nJ per µs.
        Harvester::Rf {
            power_at_1in_nw: 100.0, // nJ/µs at 1 inch
            distance_in: 10.0,
        }
    }

    /// A seeded noisy variant of the PowerCast setup.
    pub fn powercast_noisy(seed: u64) -> Self {
        Harvester::Noisy {
            base_nw: 1.0,
            jitter: 0.6,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A piecewise power schedule starting at charging time 0 (see
    /// [`Harvester::Schedule`]). Segments are sorted defensively.
    pub fn schedule(mut segments: Vec<(u64, f64)>) -> Self {
        segments.sort_by_key(|(from, _)| *from);
        Harvester::Schedule {
            segments,
            elapsed_us: 0,
        }
    }

    /// A trace-scripted supply starting at the first sample (see
    /// [`Harvester::Trace`]).
    pub fn trace(powers_nw: Vec<f64>) -> Self {
        Harvester::Trace { powers_nw, next: 0 }
    }

    /// A same-shape copy with its mutable state re-derived from `seed`:
    /// derive statistically independent variants of one configured
    /// harvester (e.g. per evaluation cell or per worker) without
    /// sharing mutable RNG state. Positional variants
    /// ([`Harvester::Schedule`], [`Harvester::Trace`]) rewind to their
    /// start — a reseeded copy always replays the same supply from the
    /// beginning; stateless variants are plain clones.
    pub fn reseeded(&self, seed: u64) -> Harvester {
        match self {
            Harvester::Noisy {
                base_nw, jitter, ..
            } => Harvester::Noisy {
                base_nw: *base_nw,
                jitter: *jitter,
                rng: StdRng::seed_from_u64(seed),
            },
            Harvester::Schedule { segments, .. } => Harvester::Schedule {
                segments: segments.clone(),
                elapsed_us: 0,
            },
            Harvester::Trace { powers_nw, .. } => Harvester::Trace {
                powers_nw: powers_nw.clone(),
                next: 0,
            },
            other => other.clone(),
        }
    }

    /// Instantaneous harvesting power in nanojoules per microsecond for
    /// the next charging interval. Advances trace-scripted supplies by
    /// one sample.
    pub fn sample_power(&mut self) -> f64 {
        match self {
            Harvester::Constant { power_nw } => *power_nw,
            Harvester::Rf {
                power_at_1in_nw,
                distance_in,
            } => *power_at_1in_nw / (*distance_in * *distance_in).max(1.0),
            Harvester::Noisy {
                base_nw,
                jitter,
                rng,
            } => {
                let lo = 1.0 / (1.0 + *jitter);
                let hi = 1.0 + *jitter;
                *base_nw * rng.gen_range(lo..=hi)
            }
            Harvester::DutyCycle { on_power_nw, duty } => *on_power_nw * duty.clamp(0.0, 1.0),
            Harvester::Schedule {
                segments,
                elapsed_us,
            } => schedule_power(segments, *elapsed_us),
            Harvester::Trace { powers_nw, next } => {
                if powers_nw.is_empty() {
                    return 1e-9;
                }
                let p = powers_nw[*next % powers_nw.len()];
                *next = (*next + 1) % powers_nw.len();
                p.max(1e-9)
            }
        }
    }

    /// Microseconds needed to harvest `needed_nj` of energy (at least
    /// 1 µs; infinite-power sources still take a reboot instant).
    /// [`Harvester::Schedule`] integrates across its segments and
    /// accrues the charging time it spends.
    pub fn charge_time_us(&mut self, needed_nj: f64) -> u64 {
        if needed_nj <= 0.0 {
            if let Harvester::Schedule { elapsed_us, .. } = self {
                *elapsed_us += 1;
            }
            return 1;
        }
        if let Harvester::Schedule {
            segments,
            elapsed_us,
        } = self
        {
            let start = *elapsed_us;
            let mut t = start;
            let mut remaining = needed_nj;
            loop {
                let p = schedule_power(segments, t);
                match segments.iter().map(|(f, _)| *f).find(|&f| f > t) {
                    Some(boundary) => {
                        let capacity_nj = p * (boundary - t) as f64;
                        if capacity_nj >= remaining {
                            t += (remaining / p).ceil() as u64;
                            break;
                        }
                        remaining -= capacity_nj;
                        t = boundary;
                    }
                    None => {
                        t += (remaining / p).ceil().max(1.0) as u64;
                        break;
                    }
                }
            }
            let dt = (t - start).max(1);
            *elapsed_us = start + dt;
            return dt;
        }
        let p = self.sample_power().max(1e-9);
        (needed_nj / p).ceil().max(1.0) as u64
    }
}

/// The scheduled power at cumulative charging time `t` (the first
/// segment applies before its own start; an empty schedule yields the
/// floor power).
fn schedule_power(segments: &[(u64, f64)], t: u64) -> f64 {
    let mut p = segments.first().map(|(_, p)| *p).unwrap_or(0.0);
    for (from, power) in segments {
        if t >= *from {
            p = *power;
        } else {
            break;
        }
    }
    p.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_power_follows_inverse_square() {
        let mut near = Harvester::Rf {
            power_at_1in_nw: 100.0,
            distance_in: 5.0,
        };
        let mut far = Harvester::Rf {
            power_at_1in_nw: 100.0,
            distance_in: 10.0,
        };
        let ratio = near.sample_power() / far.sample_power();
        assert!(
            (ratio - 4.0).abs() < 1e-9,
            "doubling distance quarters power"
        );
    }

    #[test]
    fn charge_time_is_proportional_to_deficit() {
        let mut h = Harvester::Constant { power_nw: 2.0 };
        assert_eq!(h.charge_time_us(100.0), 50);
        assert_eq!(h.charge_time_us(200.0), 100);
        assert_eq!(h.charge_time_us(0.0), 1, "no deficit still takes a beat");
    }

    #[test]
    fn noisy_power_is_deterministic_per_seed() {
        let mut a = Harvester::powercast_noisy(42);
        let mut b = Harvester::powercast_noisy(42);
        for _ in 0..10 {
            assert_eq!(a.sample_power(), b.sample_power());
        }
        let mut c = Harvester::powercast_noisy(43);
        let same = (0..10).all(|_| a.sample_power() == c.sample_power());
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn noisy_power_stays_in_bounds() {
        let mut h = Harvester::Noisy {
            base_nw: 10.0,
            jitter: 0.5,
            rng: StdRng::seed_from_u64(7),
        };
        for _ in 0..100 {
            let p = h.sample_power();
            assert!((10.0 / 1.5 - 1e-9..=15.0 + 1e-9).contains(&p));
        }
    }

    #[test]
    fn reseeded_matches_a_fresh_harvester() {
        let mut worn = Harvester::powercast_noisy(1);
        for _ in 0..5 {
            worn.sample_power(); // advance the RNG
        }
        let mut a = worn.reseeded(42);
        let mut b = Harvester::powercast_noisy(42);
        for _ in 0..10 {
            assert_eq!(a.sample_power(), b.sample_power());
        }
        // Stateless variants reseed to themselves.
        let mut c = Harvester::Constant { power_nw: 7.0 }.reseeded(9);
        assert_eq!(c.sample_power(), 7.0);
    }

    #[test]
    fn schedule_integrates_across_segments() {
        // 10 nW for the first 10 µs of charging, then 1 nW: a 150 nJ
        // deficit takes 10 µs (100 nJ) + 50 µs (50 nJ).
        let mut h = Harvester::schedule(vec![(0, 10.0), (10, 1.0)]);
        assert_eq!(h.charge_time_us(150.0), 60);
        // The schedule *advanced*: the next charge starts in the 1 nW era.
        assert_eq!(h.charge_time_us(30.0), 30);
        assert!((h.sample_power() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_brownout_lengthens_charges() {
        let mut h = Harvester::schedule(vec![(0, 20.0), (500, 2.0)]);
        let early = h.charge_time_us(1000.0); // 50 µs at 20 nW
                                              // Drain past the brownout boundary.
        while let Harvester::Schedule { elapsed_us, .. } = &h {
            if *elapsed_us >= 500 {
                break;
            }
            h.charge_time_us(1000.0);
        }
        let late = h.charge_time_us(1000.0); // 500 µs at 2 nW
        assert!(
            late > early * 5,
            "brownout slows charging: {early} → {late}"
        );
    }

    #[test]
    fn trace_cycles_and_reseeds_to_start() {
        let mut h = Harvester::trace(vec![4.0, 2.0, 1.0]);
        let seq: Vec<u64> = (0..6).map(|_| h.charge_time_us(8.0)).collect();
        assert_eq!(seq, vec![2, 4, 8, 2, 4, 8], "trace cycles");
        let mut r = h.reseeded(99);
        assert_eq!(r.charge_time_us(8.0), 2, "reseeded rewinds to the start");
    }

    #[test]
    fn schedule_reseeds_to_time_zero() {
        let mut h = Harvester::schedule(vec![(0, 10.0), (10, 1.0)]);
        h.charge_time_us(150.0);
        let mut r = h.reseeded(7);
        assert_eq!(r.charge_time_us(150.0), 60, "reseeded replays segment 0");
    }

    #[test]
    fn duty_cycle_scales_power() {
        let mut h = Harvester::DutyCycle {
            on_power_nw: 10.0,
            duty: 0.25,
        };
        assert!((h.sample_power() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn powercast_recharges_capybara_in_tens_of_ms() {
        let mut h = Harvester::powercast_at_10in();
        let t = h.charge_time_us(50_000.0);
        assert!(
            (10_000..200_000).contains(&t),
            "50 µJ should take tens of ms, got {t} µs"
        );
    }
}
