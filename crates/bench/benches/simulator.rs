//! Criterion benchmarks for the intermittent-execution simulator: one
//! complete program run per iteration, on continuous and harvested
//! power, across execution models — and the interpreter vs compiled
//! backend comparison that baselines the compiled engine's speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocelot_bench::harness::{bench_supply, build_for, calibrated_costs, MAX_STEPS};
use ocelot_hw::power::ContinuousPower;
use ocelot_runtime::machine::Machine;
use ocelot_runtime::model::ExecModel;
use ocelot_runtime::{ExecBackend, OptLevel};

fn bench_continuous(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_continuous");
    for b in ocelot_apps::all() {
        for model in [ExecModel::Jit, ExecModel::Ocelot, ExecModel::AtomicsOnly] {
            let built = build_for(&b, model);
            let id = BenchmarkId::new(model.name(), b.name);
            g.bench_function(id, |bencher| {
                bencher.iter(|| {
                    let mut m = Machine::new(
                        &built.program,
                        &built.regions,
                        built.policies.clone(),
                        b.environment(1),
                        calibrated_costs(&b),
                        Box::new(ContinuousPower),
                    );
                    m.run_once(MAX_STEPS)
                });
            });
        }
    }
    g.finish();
}

fn bench_intermittent(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_intermittent");
    for b in ocelot_apps::all() {
        let built = build_for(&b, ExecModel::Ocelot);
        g.bench_with_input(BenchmarkId::from_parameter(b.name), &b, |bencher, b| {
            bencher.iter(|| {
                let mut m = Machine::new(
                    &built.program,
                    &built.regions,
                    built.policies.clone(),
                    b.environment(1),
                    calibrated_costs(b),
                    Box::new(bench_supply(1)),
                );
                m.run_once(MAX_STEPS)
            });
        });
    }
    g.finish();
}

/// The step-loop throughput baseline: one Ocelot-model run per paper
/// app on continuous power, interpreter vs compiled engine. The
/// compiled backend's acceptance bar is ≥2x on at least one app.
fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend");
    for b in ocelot_apps::all() {
        let built = build_for(&b, ExecModel::Ocelot);
        for backend in ExecBackend::all() {
            let id = BenchmarkId::new(backend.name(), b.name);
            g.bench_function(id, |bencher| {
                // Machine construction and one warm-up run stay outside
                // the timed loop: the (one-time) compile pass amortizes
                // into the steady-state step loop being measured, and a
                // single program run is short enough that timing ten
                // per sample is what keeps the measurement above clock
                // jitter.
                let mut m = Machine::new(
                    &built.program,
                    &built.regions,
                    built.policies.clone(),
                    b.environment(1),
                    calibrated_costs(&b),
                    Box::new(ContinuousPower),
                )
                .with_backend(backend);
                m.run_once(MAX_STEPS);
                bencher.iter(|| {
                    for _ in 0..10 {
                        m.run_once(MAX_STEPS);
                    }
                });
            });
        }
    }
    g.finish();
}

/// The input-path throughput bar: the input-bound apps (photo's
/// single-sensor poll loop, fusion's three-sensor consistent set,
/// radiolog's duty-cycled send window), interpreter vs compiled, on
/// continuous power. These are the workloads where per-collection
/// bookkeeping — chain resolution, timestamping, bit checks, frame
/// binding — dominates, so they are what the pre-resolved input sites
/// and slot-indexed frames must visibly speed up (acceptance bar:
/// ≥1.5x over the pre-interning compiled baseline on photo or fusion).
fn bench_input(c: &mut Criterion) {
    let mut g = c.benchmark_group("input");
    let input_bound = ["photo", "send_photo", "fusion", "radiolog"];
    for b in ocelot_apps::all_with_extensions()
        .into_iter()
        .filter(|b| input_bound.contains(&b.name))
    {
        let built = build_for(&b, ExecModel::Ocelot);
        for backend in ExecBackend::all() {
            let id = BenchmarkId::new(backend.name(), b.name);
            g.bench_function(id, |bencher| {
                let mut m = Machine::new(
                    &built.program,
                    &built.regions,
                    built.policies.clone(),
                    b.environment(1),
                    calibrated_costs(&b),
                    Box::new(ContinuousPower),
                )
                .with_backend(backend);
                m.run_once(MAX_STEPS);
                bencher.iter(|| {
                    for _ in 0..10 {
                        m.run_once(MAX_STEPS);
                    }
                });
            });
        }
    }
    g.finish();
}

/// The optimizing middle-end's bar: the compiled engine at `--opt 0`
/// (straight from the lowered IR) vs `--opt 2` (SSA constant folding,
/// dead-store shrink, check elision, pure-expression evaluation), on
/// the compute-bound apps where folding bites (tire's filter math,
/// cem's compression kernel) and the input apps where check elision
/// does (fusion, radiolog). Acceptance bar: ≥1.5x on at least one
/// compute app. Both levels are observationally identical — the
/// differential suite holds that line — so this group measures pure
/// host-side work removed.
fn bench_opt(c: &mut Criterion) {
    let mut g = c.benchmark_group("opt");
    let apps = ["tire", "cem", "fusion", "radiolog"];
    for b in ocelot_apps::all_with_extensions()
        .into_iter()
        .filter(|b| apps.contains(&b.name))
    {
        let built = build_for(&b, ExecModel::Ocelot);
        for opt in OptLevel::all() {
            let id = BenchmarkId::new(format!("O{}", opt.name()), b.name);
            g.bench_function(id, |bencher| {
                let mut m = Machine::new(
                    &built.program,
                    &built.regions,
                    built.policies.clone(),
                    b.environment(1),
                    calibrated_costs(&b),
                    Box::new(ContinuousPower),
                )
                .with_backend(ExecBackend::Compiled)
                .with_opt(opt);
                m.run_once(MAX_STEPS);
                bencher.iter(|| {
                    for _ in 0..10 {
                        m.run_once(MAX_STEPS);
                    }
                });
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_continuous, bench_intermittent, bench_backends, bench_input, bench_opt
}
criterion_main!(benches);
