//! Criterion benchmarks for the fleet engine: device-runs/sec through
//! the shared-core sweep loop, at several worker counts, plus the
//! recycled-vs-fresh DeviceState comparison that justifies the pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocelot_bench::fleet::{run_fleet, FleetOpts, FleetSpec};
use ocelot_runtime::model::ExecModel;
use ocelot_runtime::ExecBackend;

/// The benched fleet: the Table-1 `tire` app across the whole scenario
/// registry, sized so one criterion sample is a real multi-chunk sweep
/// without making `cargo bench` take minutes.
fn bench_fleet_spec(devices: u64, backend: ExecBackend) -> FleetSpec {
    FleetSpec {
        bench: "tire".into(),
        model: ExecModel::Ocelot,
        scenarios: ocelot_scenario::all()
            .iter()
            .map(|s| s.name.to_string())
            .collect(),
        devices,
        seed0: 1,
        runs: 1,
        backend,
        opt: ocelot_runtime::OptLevel::default(),
    }
}

/// Whole-sweep throughput (the `ocelotc fleet` shape): devices/sec at
/// 1, 2, and 4 workers on the compiled engine, and the interpreter at
/// one worker as the oracle baseline.
fn bench_sweep(c: &mut Criterion) {
    let devices = 180u64;
    let mut g = c.benchmark_group("fleet");
    for jobs in [1usize, 2, 4] {
        let spec = bench_fleet_spec(devices, ExecBackend::Compiled);
        g.bench_function(BenchmarkId::new("compiled", jobs), |bencher| {
            bencher.iter(|| {
                run_fleet(
                    &spec,
                    FleetOpts {
                        jobs,
                        share_core: true,
                    },
                )
            });
        });
    }
    let spec = bench_fleet_spec(devices, ExecBackend::Interp);
    g.bench_function(BenchmarkId::new("interp", 1usize), |bencher| {
        bencher.iter(|| {
            run_fleet(
                &spec,
                FleetOpts {
                    jobs: 1,
                    share_core: true,
                },
            )
        });
    });
    g.finish();
}

/// Core sharing vs per-worker rebuild: the same sweep with
/// `share_core` off re-runs program building per worker chunk, which is
/// the cost the shared read-only [`ocelot_runtime::MachineCore`]
/// removes.
fn bench_core_sharing(c: &mut Criterion) {
    let devices = 90u64;
    let mut g = c.benchmark_group("fleet_core");
    for (label, share) in [("shared", true), ("rebuilt", false)] {
        let spec = bench_fleet_spec(devices, ExecBackend::Compiled);
        g.bench_function(BenchmarkId::new(label, 4usize), |bencher| {
            bencher.iter(|| {
                run_fleet(
                    &spec,
                    FleetOpts {
                        jobs: 4,
                        share_core: share,
                    },
                )
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep, bench_core_sharing
}
criterion_main!(benches);
