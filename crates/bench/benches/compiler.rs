//! Criterion benchmarks for the compiler side of Ocelot: parsing and
//! lowering, taint analysis, policy construction, region inference, and
//! the end-to-end transform — per benchmark application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocelot_analysis::taint::TaintAnalysis;
use ocelot_core::{build_policies, ocelot_transform};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    for b in ocelot_apps::all() {
        g.bench_with_input(BenchmarkId::from_parameter(b.name), &b, |bencher, b| {
            bencher.iter(|| ocelot_ir::compile(b.annotated_src).unwrap());
        });
    }
    g.finish();
}

fn bench_taint(c: &mut Criterion) {
    let mut g = c.benchmark_group("taint_analysis");
    for b in ocelot_apps::all() {
        let p = b.annotated();
        g.bench_with_input(BenchmarkId::from_parameter(b.name), &p, |bencher, p| {
            bencher.iter(|| TaintAnalysis::run(p));
        });
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_policies");
    for b in ocelot_apps::all() {
        let p = b.annotated();
        let t = TaintAnalysis::run(&p);
        g.bench_with_input(
            BenchmarkId::from_parameter(b.name),
            &(p, t),
            |bencher, (p, t)| {
                bencher.iter(|| build_policies(p, t));
            },
        );
    }
    g.finish();
}

fn bench_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("ocelot_transform");
    for b in ocelot_apps::all() {
        g.bench_with_input(BenchmarkId::from_parameter(b.name), &b, |bencher, b| {
            bencher.iter(|| ocelot_transform(b.annotated()).unwrap());
        });
    }
    g.finish();
}

fn bench_progress(c: &mut Criterion) {
    let mut g = c.benchmark_group("progress_analysis");
    for b in ocelot_apps::all() {
        let compiled = ocelot_transform(b.annotated()).unwrap();
        let costs = ocelot_hw::energy::CostModel::default();
        g.bench_with_input(
            BenchmarkId::from_parameter(b.name),
            &(compiled, costs),
            |bencher, (compiled, costs)| {
                bencher.iter(|| {
                    ocelot_progress::ProgressReport::analyze(
                        &compiled.program,
                        &compiled.regions,
                        costs,
                    )
                    .unwrap()
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compile, bench_taint, bench_policies, bench_transform, bench_progress
}
criterion_main!(benches);
