//! Cross-validates the linter's OC004 (statically redundant dynamic
//! check) report against the runtime's own elision decisions: the set
//! of sites `ocelot lint` reports must equal the set `MachineCore`
//! elides under `--opt 2`, restricted to sites that actually carry a
//! dynamic check (the machine's elidable set also contains
//! logging-only fresh-use sites, which have no check to report on).
//!
//! Both sides derive from [`ocelot_runtime::elision_witnesses`] /
//! [`ocelot_runtime::MachineCore::elidable_sites`], so agreement is by
//! construction — this suite exists to keep it that way when either
//! side evolves independently.

use ocelot_bench::genprog::SourceGen;
use ocelot_hw::sensors::Environment;
use ocelot_hw::CostModel;
use ocelot_ir::span::Span;
use ocelot_ir::InstrRef;
use ocelot_lint::{lint_compiled, Code, LintOptions};
use ocelot_runtime::detect::DetectorConfig;
use ocelot_runtime::MachineCore;
use std::collections::BTreeSet;

/// The span the linter would label `r` with: the transformed program's
/// span when non-empty, else the pre-erasure program's (annotation
/// sites only survive there).
fn span_of(p: &ocelot_ir::Program, p0: &ocelot_ir::Program, r: InstrRef) -> Span {
    p.span_of(r)
        .filter(|s| !s.is_empty())
        .or_else(|| p0.span_of(r))
        .unwrap_or_default()
}

/// Byte-offset spans, the only currency the lint report speaks.
type SpanSet = BTreeSet<(usize, usize)>;

/// Lints `src` and independently rebuilds the machine's elision set,
/// returning both as span sets.
fn both_sides(src: &str) -> (SpanSet, SpanSet) {
    let p0 = ocelot_ir::compile(src).expect("source compiles");
    let compiled = ocelot_core::ocelot_transform(p0.clone()).expect("transform succeeds");
    let report = lint_compiled(&p0, &compiled, src, &LintOptions::default()).expect("lint runs");
    let lint_spans: BTreeSet<(usize, usize)> = report
        .findings
        .iter()
        .filter(|f| f.code == Code::RedundantCheck)
        .map(|f| (f.primary.span.start, f.primary.span.end))
        .collect();

    let det = DetectorConfig::from_policies(&compiled.policies);
    let core = MachineCore::build(
        &compiled.program,
        &compiled.regions,
        compiled.policies.clone(),
        &Environment::new(),
        CostModel::default(),
    );
    let machine_spans: BTreeSet<(usize, usize)> = core
        .elidable_sites()
        .iter()
        .filter(|site| det.use_checks.get(site).is_some_and(|cs| !cs.is_empty()))
        .map(|site| {
            let s = span_of(&compiled.program, &p0, *site);
            (s.start, s.end)
        })
        .collect();
    (lint_spans, machine_spans)
}

/// On every shipped benchmark, OC004 is exactly the `--opt 2` elision
/// set: no check the machine elides goes unreported, and no reported
/// check survives to run time.
#[test]
fn oc004_equals_the_elision_set_on_every_app() {
    for b in ocelot_apps::all_with_extensions() {
        let (lint, machine) = both_sides(b.annotated_src);
        assert_eq!(
            lint, machine,
            "`{}`: lint OC004 and the machine elision set diverged",
            b.name
        );
    }
}

/// The same equality over randomly generated programs — the generator
/// reaches shapes (deep call stacks, dynamic-chain fallbacks, repeated
/// collection) that no hand-written app exercises.
#[test]
fn oc004_equals_the_elision_set_on_generated_programs() {
    let mut nonempty = 0usize;
    for seed in 0..120u64 {
        let src = SourceGen::generate(seed);
        let (lint, machine) = both_sides(&src);
        assert_eq!(
            lint, machine,
            "seed {seed}: lint OC004 and the machine elision set diverged \
             for program:\n{src}"
        );
        nonempty += usize::from(!lint.is_empty());
    }
    // The property must not hold vacuously: a healthy share of seeds
    // actually produces elidable checks to compare.
    assert!(
        nonempty >= 10,
        "only {nonempty}/120 seeds produced a non-empty elision set; \
         the cross-validation is not exercising anything"
    );
}
