//! Property tests for the linter as a *total, deterministic* function:
//! over the same generator the differential suite uses, every program
//! lints without panicking, the report is identical across repeated
//! runs, and the JSON encoding is byte-for-byte stable — the contract
//! the serve-side cache and CI smoke rely on.

use ocelot_bench::genprog::SourceGen;
use ocelot_bench::lintfmt;
use ocelot_lint::{lint_source, LintOptions};
use proptest::prelude::*;

/// The option grid a fuzzed program is linted under: window and
/// capacity both off, both on (tight and generous), and each alone.
fn option_grid() -> Vec<LintOptions> {
    let mut grid = Vec::new();
    for window_us in [None, Some(1), Some(150), Some(1_000_000)] {
        for capacity_nj in [None, Some(50.0), Some(26_000.0)] {
            grid.push(LintOptions {
                window_us,
                capacity_nj,
                ..LintOptions::default()
            });
        }
    }
    grid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The linter is total over generated programs: no option mix makes
    /// it panic or reject a program the compiler accepts, and both the
    /// report and its JSON encoding are bit-identical across runs.
    #[test]
    fn lint_is_total_and_byte_stable(seed in 0u64..4096) {
        let src = SourceGen::generate(seed);
        for opts in option_grid() {
            let first = lint_source(&src, &opts)
                .unwrap_or_else(|e| panic!("seed {seed}: linter failed: {e}\n{src}"));
            let again = lint_source(&src, &opts).unwrap();
            prop_assert_eq!(&first, &again, "report differs across runs (seed {})", seed);
            let json_a = lintfmt::render_json(&first);
            let json_b = lintfmt::render_json(&again);
            prop_assert_eq!(&json_a, &json_b, "JSON differs across runs (seed {})", seed);
            // The strict reader accepts everything the renderer emits,
            // and the decoded report re-encodes to the same bytes.
            let decoded = lintfmt::from_json(&json_a)
                .unwrap_or_else(|e| panic!("seed {seed}: round-trip rejected: {e}\n{json_a}"));
            prop_assert_eq!(&lintfmt::render_json(&decoded), &json_a);
        }
    }

    /// Rendering never panics either, with or without the source for
    /// excerpts, and is identical across runs.
    #[test]
    fn text_rendering_is_total_and_deterministic(seed in 0u64..4096) {
        let src = SourceGen::generate(seed);
        let opts = LintOptions {
            window_us: Some(150),
            capacity_nj: Some(50.0),
            ..LintOptions::default()
        };
        let report = lint_source(&src, &opts).unwrap();
        let with_src = report.render_text("gen.oc", Some(&src));
        prop_assert_eq!(&with_src, &report.render_text("gen.oc", Some(&src)));
        // Without the source, excerpts are skipped but nothing panics.
        let bare = report.render_text("gen.oc", None);
        prop_assert_eq!(&bare, &report.render_text("gen.oc", None));
    }
}
