//! Golden-file tests: small fixed-seed sweeps of `table2a` and `fig7`
//! checked byte-for-byte against committed fixtures — both the rendered
//! table and (for `fig7`) the persisted JSON artifact, so a change to
//! simulation results, table layout, *or* the on-disk schema shows up
//! as a reviewable diff.
//!
//! ## Regenerating the fixtures
//!
//! After an intentional change (new stats counter, different defaults,
//! schema bump — remember to bump `artifact::SCHEMA_VERSION` when the
//! envelope changes meaning), regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p ocelot-bench --test golden
//! ```
//!
//! then review `git diff crates/bench/tests/golden/` and commit the
//! new fixtures alongside the change that motivated them.

use ocelot_bench::drivers::{self, DriverOpts};
use std::path::PathBuf;

/// Sweep scale used for every golden fixture: small enough for CI,
/// large enough to exercise re-execution and violation paths.
const GOLDEN_RUNS: u64 = 2;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn check_or_update(file: &str, actual: &str) {
    let path = golden_dir().join(file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run `UPDATE_GOLDEN=1 cargo test -p ocelot-bench \
             --test golden` to (re)generate fixtures)",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{file} drifted from its golden fixture — if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and commit the diff"
    );
}

fn collect(name: &str) -> ocelot_bench::artifact::Artifact {
    let d = drivers::by_name(name).expect("driver exists");
    (d.collect)(&DriverOpts {
        jobs: 2, // parallel on purpose: golden bytes must not depend on it
        runs: Some(GOLDEN_RUNS),
        seed: None,
        backend: ocelot_runtime::ExecBackend::Interp,
        opt: ocelot_runtime::OptLevel::default(),
    })
}

#[test]
fn table2a_rendered_output_matches_golden() {
    let a = collect("table2a");
    let d = drivers::by_name("table2a").unwrap();
    check_or_update("table2a.txt", &(d.render)(&a).expect("renders"));
}

#[test]
fn fig7_rendered_output_matches_golden() {
    let a = collect("fig7");
    let d = drivers::by_name("fig7").unwrap();
    check_or_update("fig7.txt", &(d.render)(&a).expect("renders"));
}

#[test]
fn fig7_persisted_artifact_matches_golden() {
    let a = collect("fig7");
    check_or_update("fig7.json", &a.render().expect("serializes"));
}

#[test]
fn scenario_sweep_rendered_output_matches_golden() {
    let a = collect("scenario_sweep");
    let d = drivers::by_name("scenario_sweep").unwrap();
    check_or_update("scenario_sweep.txt", &(d.render)(&a).expect("renders"));
}

#[test]
fn scenario_sweep_persisted_artifact_matches_golden() {
    let a = collect("scenario_sweep");
    check_or_update("scenario_sweep.json", &a.render().expect("serializes"));
}
