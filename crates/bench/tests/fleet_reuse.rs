//! DeviceState recycling under fleet reuse: a pooled [`DeviceState`]
//! carried from one device to the next must leave **no residue** — the
//! recycled machine's stats must equal a fresh machine's bit for bit,
//! even when the previous occupant ran a harvester schedule, a trace
//! harvester, a reseeded world, or thrashed through hundreds of
//! TICS-style mitigation restarts (extending the 200-restart regression
//! in `ocelot-runtime`'s machine tests to the pooled-reuse path).

use ocelot_bench::harness::{build_for, calibrated_costs, MAX_STEPS};
use ocelot_hw::energy::CostModel;
use ocelot_hw::power::{ContinuousPower, ScriptedPower};
use ocelot_hw::sensors::{Environment, Signal};
use ocelot_runtime::model::ExecModel;
use ocelot_runtime::stats::Stats;
use ocelot_runtime::{DeviceState, ExecBackend, Machine, MachineCore};
use std::sync::Arc;

/// Runs `runs` harvested program attempts of `scenario_spec` (an
/// `ocelot_scenario::parse` string) at `seed` on `core`, starting from
/// `dev`, and returns the final stats plus the recyclable state.
fn run_device(
    core: &Arc<MachineCore<'_>>,
    dev: DeviceState,
    scenario_spec: &str,
    seed: u64,
    runs: u64,
    backend: ExecBackend,
) -> (Stats, DeviceState) {
    let sc = ocelot_scenario::parse(scenario_spec)
        .unwrap()
        .reseeded(seed);
    let mut m = Machine::from_core(Arc::clone(core), dev, sc.environment(), sc.supply())
        .with_backend(backend);
    for _ in 0..runs {
        m.run_once(MAX_STEPS);
    }
    let stats = m.stats().clone();
    (stats, m.into_device())
}

/// The built `tire` app plus its benchmark record (the caller keeps
/// the Built alive for the cores that borrow it).
fn tire_parts() -> (ocelot_runtime::Built, ocelot_apps::Benchmark) {
    let b = ocelot_apps::by_name("tire").unwrap();
    let built = build_for(&b, ExecModel::Ocelot);
    (built, b)
}

/// The scenarios exercising every harvester shape the registry has that
/// PR 5's per-cell tests did not pool: a piecewise `Schedule`
/// (brownout), a repeating `Trace` (solar-flicker), and an RF world for
/// contrast.
const REUSE_SCENARIOS: &[&str] = &["brownout", "solar-flicker", "rf-lab"];

#[test]
fn recycled_state_is_invisible_under_schedule_and_trace_harvesters() {
    let (built, b) = tire_parts();
    for backend in [ExecBackend::Interp, ExecBackend::Compiled] {
        for &scenario in REUSE_SCENARIOS {
            let sc = ocelot_scenario::parse(scenario).unwrap();
            let core = Arc::new(MachineCore::build(
                &built.program,
                &built.regions,
                built.policies.clone(),
                &sc.environment(),
                calibrated_costs(&b),
            ));
            // Fresh baseline for device seed 21.
            let (fresh, _) = run_device(&core, DeviceState::default(), scenario, 21, 2, backend);
            // Pollute a DeviceState with two other devices first — a
            // different seed of the same scenario, then a different
            // reseeding again — then recycle it into seed 21.
            let (_, dev) = run_device(&core, DeviceState::default(), scenario, 99, 2, backend);
            let (_, dev) = run_device(&core, dev, scenario, 1_234, 1, backend);
            let (recycled, _) = run_device(&core, dev, scenario, 21, 2, backend);
            assert_eq!(
                fresh, recycled,
                "state bled across devices under {scenario} on {backend:?}"
            );
        }
    }
}

#[test]
fn reseeded_devices_on_one_core_match_their_fresh_machines() {
    // One shared core, one recycled DeviceState walking a seed range —
    // the fleet loop in miniature. Every step must equal the
    // fresh-machine result for that seed.
    let (built, b) = tire_parts();
    let sc = ocelot_scenario::parse("solar-flicker").unwrap();
    let core = Arc::new(MachineCore::build(
        &built.program,
        &built.regions,
        built.policies.clone(),
        &sc.environment(),
        calibrated_costs(&b),
    ));
    let mut dev = DeviceState::default();
    for seed in 40..46 {
        let (fresh, _) = run_device(
            &core,
            DeviceState::default(),
            "solar-flicker",
            seed,
            1,
            ExecBackend::Compiled,
        );
        let (walked, next) =
            run_device(&core, dev, "solar-flicker", seed, 1, ExecBackend::Compiled);
        assert_eq!(fresh, walked, "seed {seed} differs on the recycled walk");
        dev = next;
    }
}

/// The mitigation-restart thrash program from the runtime's 200-restart
/// regression: every power cycle affords the sample but never the use,
/// so a TICS expiry window restarts the run until the per-run cap.
fn thrash_parts() -> (ocelot_ir::Program, ocelot_core::PolicySet) {
    let p = ocelot_ir::compile("sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }")
        .unwrap();
    let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
    let policies = ocelot_core::build_policies(&p, &taint);
    (p, policies)
}

#[test]
fn thrashed_device_state_recycles_clean() {
    let (p, policies) = thrash_parts();
    let env = || Environment::new().with("s", Signal::Constant(5));
    let core = Arc::new(MachineCore::build(
        &p,
        &[],
        policies,
        &env(),
        CostModel::default(),
    ));

    // Fresh baseline: one clean run on continuous power, no window.
    let mut baseline = Machine::from_core(
        Arc::clone(&core),
        DeviceState::default(),
        env(),
        Box::new(ContinuousPower),
    );
    baseline.run_once(1_000_000);
    let fresh = baseline.stats().clone();
    assert_eq!(fresh.runs_completed, 1);
    assert_eq!(fresh.expiry_restarts, 0);

    // Thrash occupant: the PR 5 regression's supply shape, doubled —
    // two consecutive expiry-window machines share the DeviceState,
    // each restarting until its cap, piling hundreds of mitigation
    // restarts and reboots into the pooled allocations.
    let mut dev = DeviceState::default();
    for _ in 0..2 {
        let mut thrasher = Machine::from_core(
            Arc::clone(&core),
            dev,
            env(),
            Box::new(ScriptedPower::new(vec![4_500.0; 200], 100_000)),
        )
        .with_expiry_window(10_000);
        thrasher.run_once(10_000_000);
        assert!(
            thrasher.stats().expiry_restarts >= 25,
            "the occupant really thrashed"
        );
        assert_eq!(thrasher.stats().expiry_giveups, 1);
        dev = thrasher.into_device();
    }

    // Recycle the thrashed state into a clean device: stats must equal
    // the fresh baseline exactly — no leftover restarts, reboots,
    // timestamps, or expiry counters.
    let mut recycled = Machine::from_core(Arc::clone(&core), dev, env(), Box::new(ContinuousPower));
    recycled.run_once(1_000_000);
    assert_eq!(recycled.stats(), &fresh, "thrash residue leaked");
}

#[test]
fn thrash_behaviour_itself_survives_recycling() {
    // The converse direction: a recycled DeviceState must also
    // reproduce the *thrashing* run exactly — mitigation restarts,
    // giveups, and violation counts are per-device, not pool-lifetime.
    let (p, policies) = thrash_parts();
    let env = || Environment::new().with("s", Signal::Constant(5));
    let core = Arc::new(MachineCore::build(
        &p,
        &[],
        policies,
        &env(),
        CostModel::default(),
    ));
    let thrash_once = |dev: DeviceState| {
        let mut m = Machine::from_core(
            Arc::clone(&core),
            dev,
            env(),
            Box::new(ScriptedPower::new(vec![4_500.0; 2_000], 100_000)),
        )
        .with_expiry_window(10_000);
        for _ in 0..8 {
            m.run_once(10_000_000);
        }
        (m.stats().clone(), m.into_device())
    };
    let (fresh, dev) = thrash_once(DeviceState::default());
    assert!(fresh.expiry_restarts >= 100, "the regression shape held");
    let (again, _) = thrash_once(dev);
    assert_eq!(fresh, again, "recycled thrash run diverged");
}
