//! Differential testing of the execution backends: the compiled engine
//! must be observationally indistinguishable from the interpreter —
//! identical [`Stats`] counters, identical committed observation
//! traces, identical [`RunOutcome`] sequences — on the six paper apps
//! and on randomly generated programs, across continuous, scripted, and
//! reseeded-harvester power traces.
//!
//! The random-program generator emits scope-correct `.oc` source from
//! the full statement grammar (locals, globals, arrays, sensors,
//! helpers with by-ref parameters, `repeat`/`while`/`if`, manual
//! `atomic` blocks, `fresh`/`consistent` annotations), so the sweep
//! reaches corners the hand-written apps never hit — empty loops,
//! division by zero, clamped array indices, annotation-free regions.

use ocelot_bench::genprog::SourceGen;
use ocelot_bench::harness::{build_for, calibrated_costs};
use ocelot_hw::energy::CostModel;
use ocelot_hw::power::{ContinuousPower, HarvestedPower, PowerSupply, ScriptedPower};
use ocelot_hw::{Capacitor, Harvester};
use ocelot_runtime::machine::{pathological_targets, Machine, RunOutcome};
use ocelot_runtime::model::ExecModel;
use ocelot_runtime::obs::Obs;
use ocelot_runtime::{ExecBackend, Stats};
use proptest::prelude::*;

const MAX_STEPS: u64 = 200_000;

/// Everything one backend produced for a cell.
#[derive(Debug, PartialEq)]
struct Observed {
    outcomes: Vec<RunOutcome>,
    stats: Stats,
    trace: Vec<Obs>,
}

#[allow(clippy::too_many_arguments)]
fn observe(
    program: &ocelot_ir::Program,
    regions: &[ocelot_core::RegionInfo],
    policies: &ocelot_core::PolicySet,
    env: ocelot_hw::sensors::Environment,
    costs: CostModel,
    supply: Box<dyn PowerSupply>,
    backend: ExecBackend,
    runs: u64,
    inject: bool,
) -> Observed {
    // `OCELOT_OPT` lets CI re-run the whole differential suite at a
    // pinned optimization level (0 and 2); unset, the default applies.
    let mut m = Machine::new(program, regions, policies.clone(), env, costs, supply)
        .with_backend(backend)
        .with_opt(ocelot_runtime::OptLevel::from_env());
    if inject {
        m = m.with_injector(pathological_targets(policies));
    }
    let outcomes = (0..runs).map(|_| m.run_once(MAX_STEPS)).collect();
    Observed {
        outcomes,
        stats: m.stats().clone(),
        trace: m.take_trace(),
    }
}

/// One supply configuration, reproducible per backend.
#[derive(Debug, Clone)]
enum Supply {
    Continuous,
    Scripted(Vec<f64>),
    /// A reseeded noisy harvester on a Capybara-class bank: both
    /// backends receive `Harvester::reseeded(seed)` of the same base,
    /// so they see one identical harvest trace.
    Reseeded(u64),
}

impl Supply {
    fn build(&self) -> Box<dyn PowerSupply> {
        match self {
            Supply::Continuous => Box::new(ContinuousPower),
            Supply::Scripted(budgets) => Box::new(ScriptedPower::new(budgets.clone(), 700)),
            Supply::Reseeded(seed) => {
                let base = Harvester::powercast_noisy(0xDEAD);
                Box::new(
                    HarvestedPower::new(Capacitor::new(26_000.0, 2_600.0), base.reseeded(*seed))
                        .with_boot_jitter(seed ^ 0x9E37, 0.4),
                )
            }
        }
    }
}

// ---------------------------------------------------------------------
// Paper apps
// ---------------------------------------------------------------------

#[test]
fn backends_agree_on_all_six_paper_apps() {
    for b in ocelot_apps::all() {
        for model in ExecModel::all() {
            let built = build_for(&b, model);
            for (supply, runs, inject) in [
                (Supply::Continuous, 2, false),
                (Supply::Continuous, 2, true),
                (Supply::Reseeded(7), 2, false),
            ] {
                let mk = |backend| {
                    observe(
                        &built.program,
                        &built.regions,
                        &built.policies,
                        b.environment(7),
                        calibrated_costs(&b),
                        supply.build(),
                        backend,
                        runs,
                        inject,
                    )
                };
                let interp = mk(ExecBackend::Interp);
                let compiled = mk(ExecBackend::Compiled);
                assert_eq!(
                    interp, compiled,
                    "{} {:?} diverged under {supply:?} (inject={inject})",
                    b.name, model
                );
                assert!(
                    interp.stats.instructions > 0,
                    "{}: the cell actually simulated",
                    b.name
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Generated programs
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The acceptance property: for random programs and random power
    /// traces, the two backends produce identical counters, traces, and
    /// outcome sequences — with and without pathological injection.
    #[test]
    fn backends_agree_on_generated_programs(
        seed in any::<u64>(),
        budget_count in 0usize..5,
        budget_scale in 1u64..80,
        inject in 0u32..2,
    ) {
        let src = SourceGen::generate(seed);
        let program = match ocelot_ir::compile(&src) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("generator bug: {e}\n{src}"))),
        };
        let regions = match ocelot_core::collect_regions(&program) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("generator bug: {e}\n{src}"))),
        };
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&program);
        let policies = ocelot_core::build_policies(&program, &taint);
        let inject = inject == 1 && !pathological_targets(&policies).is_empty();

        let budgets: Vec<f64> = (0..budget_count)
            .map(|i| (100 + (seed.rotate_left(i as u32 * 7) % 90) * budget_scale) as f64)
            .collect();
        let env = ocelot_hw::sensors::Environment::new()
            .with("s0", ocelot_hw::sensors::Signal::Noisy {
                base: Box::new(ocelot_hw::sensors::Signal::Constant(15)),
                amplitude: 6,
                seed,
            })
            .with("s1", ocelot_hw::sensors::Signal::Constant(4));

        for supply in [
            Supply::Continuous,
            Supply::Scripted(budgets.clone()),
            Supply::Reseeded(seed),
        ] {
            let mk = |backend| observe(
                &program, &regions, &policies,
                env.clone(), CostModel::default(), supply.build(),
                backend, 2, inject,
            );
            let interp = mk(ExecBackend::Interp);
            let compiled = mk(ExecBackend::Compiled);
            prop_assert_eq!(
                &interp, &compiled,
                "diverged under {:?} (inject={}) for program:\n{}",
                supply, inject, src
            );
        }
    }
}

/// The generator itself stays honest: everything it emits compiles and
/// yields runnable programs (a generator that silently failed to
/// compile would turn the differential property into a no-op).
#[test]
fn generated_sources_always_compile() {
    for seed in 0..200u64 {
        let src = SourceGen::generate(seed);
        let p = ocelot_ir::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        ocelot_core::collect_regions(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
    }
}

/// The generator really reaches deep stacks: some seeds emit `deep()`
/// calls, and at least one emits it twice (the dynamic-chain fallback
/// configuration).
#[test]
fn generator_emits_deep_and_repeated_deep_calls() {
    let mut any_deep = 0usize;
    let mut multi_deep = 0usize;
    for seed in 0..200u64 {
        let src = SourceGen::generate(seed);
        let n = src.matches("= deep();").count();
        any_deep += (n >= 1) as usize;
        multi_deep += (n >= 2) as usize;
    }
    assert!(any_deep >= 40, "deep-call weight is real: {any_deep}/200");
    assert!(
        multi_deep >= 10,
        "repeated deep calls (dynamic fallback) occur: {multi_deep}/200"
    );
}

// ---------------------------------------------------------------------
// Optimizing middle-end
// ---------------------------------------------------------------------

fn build_src(
    src: &str,
) -> (
    ocelot_ir::Program,
    Vec<ocelot_core::RegionInfo>,
    ocelot_core::PolicySet,
) {
    let program = ocelot_ir::compile(src).unwrap();
    let regions = ocelot_core::collect_regions(&program).unwrap();
    let taint = ocelot_analysis::taint::TaintAnalysis::run(&program);
    let policies = ocelot_core::build_policies(&program, &taint);
    (program, regions, policies)
}

/// Every optimization level of the compiled engine is observationally
/// identical to the interpreter oracle on the six paper apps: same
/// `Stats`, same committed trace, same outcome sequence. The levels may
/// only differ in *host* work (taint bookkeeping, check probes), never
/// in anything the simulation records.
#[test]
fn opt_levels_are_observationally_identical_on_paper_apps() {
    for b in ocelot_apps::all() {
        for model in ExecModel::all() {
            let built = build_for(&b, model);
            let mk = |backend, opt| {
                let mut m = Machine::new(
                    &built.program,
                    &built.regions,
                    built.policies.clone(),
                    b.environment(7),
                    calibrated_costs(&b),
                    Supply::Reseeded(7).build(),
                )
                .with_backend(backend)
                .with_opt(opt);
                let outcomes: Vec<RunOutcome> = (0..2).map(|_| m.run_once(MAX_STEPS)).collect();
                Observed {
                    outcomes,
                    stats: m.stats().clone(),
                    trace: m.take_trace(),
                }
            };
            let oracle = mk(ExecBackend::Interp, ocelot_runtime::OptLevel::O0);
            for opt in ocelot_runtime::OptLevel::all() {
                let compiled = mk(ExecBackend::Compiled, opt);
                assert_eq!(
                    oracle,
                    compiled,
                    "{} {:?} diverged at opt {}",
                    b.name,
                    model,
                    opt.name()
                );
            }
        }
    }
}

/// The tentpole's measurable claim: on input-driven apps whose checked
/// uses are dominated by must-collected chains, the optimizer at level
/// 2 elides the dynamic probes — strictly fewer `checks_probed` than
/// the interpreter oracle — while the committed observations stay
/// identical. Level 0 must probe exactly as often as the interpreter.
#[test]
fn check_elision_strictly_reduces_probes_on_input_apps() {
    // fusion and radiolog satisfy the ISSUE's "at least two input
    // apps" bar; activity and send_photo come along for free.
    for name in ["fusion", "radiolog", "activity", "send_photo"] {
        let b = ocelot_apps::by_name(name).unwrap();
        let built = build_for(&b, ExecModel::Ocelot);
        let mk = |backend, opt| {
            let mut m = Machine::new(
                &built.program,
                &built.regions,
                built.policies.clone(),
                b.environment(7),
                calibrated_costs(&b),
                // Continuous supply: elision requires a run whose
                // detector bits cannot be cleared mid-run.
                Box::new(ContinuousPower) as Box<dyn PowerSupply>,
            )
            .with_backend(backend)
            .with_opt(opt);
            let outcomes: Vec<RunOutcome> = (0..3).map(|_| m.run_once(MAX_STEPS)).collect();
            let probes = m.checks_probed();
            (
                Observed {
                    outcomes,
                    stats: m.stats().clone(),
                    trace: m.take_trace(),
                },
                probes,
            )
        };
        let (oracle, oracle_probes) = mk(ExecBackend::Interp, ocelot_runtime::OptLevel::O2);
        let (direct, direct_probes) = mk(ExecBackend::Compiled, ocelot_runtime::OptLevel::O0);
        let (optimized, optimized_probes) = mk(ExecBackend::Compiled, ocelot_runtime::OptLevel::O2);
        assert_eq!(oracle, direct, "{name}: unoptimized backend diverged");
        assert_eq!(oracle, optimized, "{name}: optimized backend diverged");
        assert!(oracle_probes > 0, "{name}: the app actually probes checks");
        assert_eq!(
            direct_probes, oracle_probes,
            "{name}: level 0 must probe exactly like the interpreter"
        );
        assert!(
            optimized_probes < oracle_probes,
            "{name}: level 2 must elide probes ({optimized_probes} vs {oracle_probes})"
        );
    }
}

/// The store-reclassification fix, differentially: a local that is in
/// scope but unbound on some path (its `let` sits on another branch)
/// used to fall back to a non-volatile write on assignment. SSA
/// liveness proves no read observes the unbound value, so both engines
/// now bind the volatile slot — byte-identical `Stats`/`Obs` across
/// backends and levels, and zero scalar writes reaching NV. A control
/// program whose join read *can* observe the unbound value must keep
/// the NV fallback.
#[test]
fn reclassified_unbound_local_stores_agree_and_never_reach_nv() {
    // `a = 2` runs while `a` is unbound whenever `g` is falsy, but
    // every read of `a` is dominated by a write: reclassifiable.
    let reclassifiable =
        "nv g = 0; fn main() { if g { let a = 1; out(log, a); } a = 2; out(log, a); }";
    // Here `a + 2` reads `a` while possibly unbound: the value is
    // observable, so the store must keep the non-volatile fallback.
    let observable = "nv g = 0; fn main() { if g { let a = 1; } a = a + 2; out(log, a); }";
    let run = |src: &str, backend, opt| {
        let (program, regions, policies) = build_src(src);
        let mut m = Machine::new(
            &program,
            &regions,
            policies,
            ocelot_hw::sensors::Environment::new(),
            CostModel::default(),
            Box::new(ContinuousPower) as Box<dyn PowerSupply>,
        )
        .with_backend(backend)
        .with_opt(opt);
        let outcomes: Vec<RunOutcome> = (0..3).map(|_| m.run_once(MAX_STEPS)).collect();
        let nv = m.nv_scalar_writes();
        (
            Observed {
                outcomes,
                stats: m.stats().clone(),
                trace: m.take_trace(),
            },
            nv,
        )
    };
    for opt in ocelot_runtime::OptLevel::all() {
        let (interp, nv_i) = run(reclassifiable, ExecBackend::Interp, opt);
        let (compiled, nv_c) = run(reclassifiable, ExecBackend::Compiled, opt);
        assert_eq!(
            interp,
            compiled,
            "reclassified program diverged at opt {}",
            opt.name()
        );
        assert_eq!(nv_i, 0, "interpreter: no unbound-local store leaks to NV");
        assert_eq!(nv_c, 0, "compiled: no unbound-local store leaks to NV");

        let (interp, nv_i) = run(observable, ExecBackend::Interp, opt);
        let (compiled, nv_c) = run(observable, ExecBackend::Compiled, opt);
        assert_eq!(
            interp,
            compiled,
            "control program diverged at opt {}",
            opt.name()
        );
        assert!(nv_i > 0, "control program's unbound store still reaches NV");
        assert_eq!(
            nv_i, nv_c,
            "both engines count the control's NV writes alike"
        );
    }
}

/// Hand-written nested-call app: collections at the bottom of a
/// three-deep fixed call chain (pre-resolved interned chain), through a
/// helper invoked from two sites (dynamic-chain fallback), and a
/// consistent set spanning both resolution paths — under continuous,
/// scripted, and reseeded-harvester power, with and without
/// pathological injection.
#[test]
fn nested_call_app_agrees_across_backends() {
    let src = r#"
        sensor s0; sensor s1;
        nv total = 0;
        fn leaf() { let v = in(s0); return v; }
        fn mid() { let v = leaf(); return v + 1; }
        fn deep() { let v = mid(); return v + 1; }
        fn shared() { let v = in(s1); return v; }
        fn main() {
            let a = deep();
            fresh(a);
            let b = shared();
            consistent(b, 2);
            let c = shared();
            consistent(c, 2);
            atomic {
                total = total + a + b + c;
            }
            out(log, total);
        }
    "#;
    let program = ocelot_ir::compile(src).unwrap();
    let regions = ocelot_core::collect_regions(&program).unwrap();
    let taint = ocelot_analysis::taint::TaintAnalysis::run(&program);
    let policies = ocelot_core::build_policies(&program, &taint);
    let env = ocelot_hw::sensors::Environment::new()
        .with("s0", ocelot_hw::sensors::Signal::Constant(7))
        .with("s1", ocelot_hw::sensors::Signal::Constant(2));
    for inject in [false, true] {
        for supply in [
            Supply::Continuous,
            Supply::Scripted(vec![4_800.0; 40]),
            Supply::Reseeded(11),
        ] {
            let mk = |backend| {
                observe(
                    &program,
                    &regions,
                    &policies,
                    env.clone(),
                    CostModel::default(),
                    supply.build(),
                    backend,
                    3,
                    inject,
                )
            };
            let interp = mk(ExecBackend::Interp);
            let compiled = mk(ExecBackend::Compiled);
            assert_eq!(
                interp, compiled,
                "nested-call app diverged under {supply:?} (inject={inject})"
            );
            assert!(interp.stats.instructions > 0);
        }
    }
}
