//! Regression tests for the `--replay` path: a truncated or corrupt
//! artifact, an unknown schema version, and a flag conflicting with the
//! artifact's recorded config must each produce a one-line diagnostic
//! naming the file and the mismatch — never a panic and never a silent
//! flag override.

use ocelot_bench::artifact::{Artifact, ArtifactError};
use ocelot_bench::cli::{replay_flag_conflicts, BenchArgs};
use ocelot_bench::json::Json;
use ocelot_runtime::ExecBackend;
use std::path::{Path, PathBuf};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ocelot-replay-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn args(flags: &[&str]) -> BenchArgs {
    BenchArgs::parse(flags.iter().map(|s| s.to_string())).unwrap()
}

#[test]
fn truncated_artifact_diagnostic_names_the_file() {
    let dir = scratch_dir("truncated");
    let path = Artifact::path_in(&dir, "table2a");
    // A valid envelope chopped mid-object.
    std::fs::write(&path, "{\"schema_version\": 1, \"driver\": \"tab").unwrap();
    let err = Artifact::load(&dir, "table2a").expect_err("truncated file must not load");
    let msg = err.to_string();
    assert!(
        msg.contains(&path.display().to_string()),
        "names the file: {msg}"
    );
    assert!(msg.lines().count() == 1, "one-line diagnostic: {msg:?}");
}

#[test]
fn corrupt_artifact_diagnostic_names_the_file() {
    let dir = scratch_dir("corrupt");
    let path = Artifact::path_in(&dir, "table2a");
    std::fs::write(&path, "not json at all\n").unwrap();
    let err = Artifact::load(&dir, "table2a").expect_err("corrupt file must not load");
    let msg = err.to_string();
    assert!(
        msg.contains(&path.display().to_string()),
        "names the file: {msg}"
    );
}

#[test]
fn unknown_schema_version_diagnostic_names_file_and_version() {
    let dir = scratch_dir("schema");
    let path = Artifact::path_in(&dir, "table2a");
    std::fs::write(
        &path,
        "{\"schema_version\": 99, \"driver\": \"table2a\", \"config\": {}, \"cells\": []}\n",
    )
    .unwrap();
    let err = Artifact::load(&dir, "table2a").expect_err("unknown version must not load");
    let msg = err.to_string();
    assert!(
        msg.contains(&path.display().to_string()),
        "names the file: {msg}"
    );
    assert!(msg.contains("99"), "names the offending version: {msg}");
    assert!(matches!(err, ArtifactError::Schema(_)));
}

fn artifact_with(config: Vec<(&str, Json)>) -> Artifact {
    Artifact::new(
        "table2a",
        config
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[test]
fn replay_backend_conflict_is_a_diagnostic_not_an_override() {
    let a = artifact_with(vec![("backend", Json::str("interp"))]);
    let path = Path::new("out/table2a.json");
    let parsed = args(&["--replay", "--backend", "compiled"]);
    assert_eq!(parsed.backend, ExecBackend::Compiled);
    let msg = replay_flag_conflicts(&parsed, &a, path).expect_err("conflict must error");
    assert!(msg.contains("out/table2a.json"), "names the file: {msg}");
    assert!(msg.contains("backend=interp"), "names the recording: {msg}");
    assert!(msg.contains("--backend compiled"), "names the flag: {msg}");
    assert!(msg.lines().count() == 1, "one-line diagnostic: {msg:?}");

    // A matching backend flag is redundant but consistent: allowed.
    let ok = args(&["--replay", "--backend", "interp"]);
    assert!(replay_flag_conflicts(&ok, &a, path).is_ok());
}

#[test]
fn replay_backend_flag_without_a_recording_is_rejected() {
    let a = artifact_with(vec![]);
    let parsed = args(&["--replay", "--backend", "compiled"]);
    let msg = replay_flag_conflicts(&parsed, &a, Path::new("x/table2a.json"))
        .expect_err("unrecorded key must not be silently ignored");
    assert!(msg.contains("x/table2a.json"), "{msg}");
    assert!(msg.contains("does not record a backend"), "{msg}");
}

#[test]
fn replay_rejects_opt_and_jobs_flags() {
    let a = artifact_with(vec![("backend", Json::str("interp"))]);
    let path = Path::new("out/table2a.json");
    for flags in [
        &["--replay", "--opt", "0"][..],
        &["--replay", "--jobs", "4"][..],
    ] {
        let parsed = args(flags);
        let msg = replay_flag_conflicts(&parsed, &a, path)
            .expect_err("simulation-shaping flags must not be silently ignored on replay");
        assert!(msg.contains("out/table2a.json"), "names the file: {msg}");
        assert!(msg.contains(flags[1]), "names the flag: {msg}");
    }
}

#[test]
fn replay_cross_checks_recorded_runs_and_seed() {
    let a = artifact_with(vec![("runs", Json::u64(25)), ("seed", Json::u64(42))]);
    let path = Path::new("out/table2a.json");
    // Matching values pass.
    let ok = args(&["--replay", "--runs", "25", "--seed", "42"]);
    assert!(replay_flag_conflicts(&ok, &a, path).is_ok());
    // Mismatches name both sides.
    let bad_runs = args(&["--replay", "--runs", "3"]);
    let msg = replay_flag_conflicts(&bad_runs, &a, path).unwrap_err();
    assert!(msg.contains("runs=25") && msg.contains("--runs 3"), "{msg}");
    let bad_seed = args(&["--replay", "--seed", "7"]);
    let msg = replay_flag_conflicts(&bad_seed, &a, path).unwrap_err();
    assert!(msg.contains("seed=42") && msg.contains("--seed 7"), "{msg}");
    // A flag the artifact does not record is rejected, not ignored.
    let b = artifact_with(vec![]);
    let msg = replay_flag_conflicts(&args(&["--replay", "--runs", "3"]), &b, path).unwrap_err();
    assert!(msg.contains("does not record"), "{msg}");
}

#[test]
fn flags_without_replay_are_untouched_by_the_cross_check() {
    // Defaults report nothing explicitly given.
    let d = args(&[]);
    assert!(!d.given.backend && !d.given.opt && !d.given.jobs && !d.given.runs && !d.given.seed);
    // Explicit flags are tracked.
    let e = args(&[
        "--jobs",
        "2",
        "--runs",
        "1",
        "--seed",
        "9",
        "--backend",
        "interp",
        "--opt",
        "1",
    ]);
    assert!(e.given.backend && e.given.opt && e.given.jobs && e.given.runs && e.given.seed);
}
