//! Telemetry-inertness suites: enabling the tracing and metrics pillars
//! must not change a single artifact byte, and the metrics pillar must
//! stay within the documented ≤5% throughput overhead budget.
//!
//! Telemetry state is process-global, so every test here serializes on
//! one mutex and restores the off-state before releasing it.

use ocelot_bench::drivers::{self, DriverOpts};
use ocelot_bench::fleet::{fleet_artifact, run_fleet, FleetOpts, FleetSpec};
use ocelot_bench::{json, telem};
use ocelot_runtime::model::ExecModel;
use ocelot_runtime::{ExecBackend, OptLevel};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// One-at-a-time guard for tests that flip the global telemetry mode.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Both pillars on, both pillars off.
fn telemetry(on: bool) {
    ocelot_telemetry::set_tracing(on);
    ocelot_telemetry::set_metrics(on);
}

fn small_fleet() -> FleetSpec {
    FleetSpec {
        bench: "tire".into(),
        model: ExecModel::Ocelot,
        scenarios: vec!["rf-lab".into(), "office-day".into()],
        devices: 12,
        seed0: 1,
        runs: 2,
        backend: ExecBackend::Compiled,
        opt: OptLevel::default(),
    }
}

#[test]
fn artifacts_are_byte_identical_with_telemetry_enabled() {
    let _guard = serial();
    let opts = DriverOpts {
        jobs: 2,
        runs: Some(1),
        seed: None,
        backend: ExecBackend::Interp,
        opt: OptLevel::default(),
    };
    let d = drivers::by_name("table2a").expect("driver exists");
    let spec = small_fleet();
    let fleet_opts = || FleetOpts {
        jobs: 2,
        share_core: true,
    };

    telemetry(false);
    let driver_off = (d.collect)(&opts).render().unwrap();
    let fleet_off = fleet_artifact(&spec, &run_fleet(&spec, fleet_opts()))
        .render()
        .unwrap();

    telemetry(true);
    let driver_on = (d.collect)(&opts).render().unwrap();
    let fleet_on = fleet_artifact(&spec, &run_fleet(&spec, fleet_opts()))
        .render()
        .unwrap();
    telemetry(false);
    ocelot_telemetry::drain_spans();
    ocelot_telemetry::metrics::reset_metrics();

    assert_eq!(driver_off, driver_on, "table2a artifact changed");
    assert_eq!(fleet_off, fleet_on, "fleet artifact changed");
}

#[test]
fn fleet_trace_round_trips_with_the_expected_span_names() {
    let _guard = serial();
    telemetry(false);
    ocelot_telemetry::drain_spans();
    ocelot_telemetry::set_tracing(true);
    let spec = small_fleet();
    run_fleet(
        &spec,
        FleetOpts {
            jobs: 2,
            share_core: true,
        },
    );
    ocelot_telemetry::set_tracing(false);

    // Render exactly what `--trace-out` writes, then round-trip it
    // through the strict reader.
    let doc = telem::chrome_trace(&ocelot_telemetry::drain_spans());
    let text = doc.render().unwrap();
    let back = json::parse(&text).expect("strict reader accepts the trace");
    let names = telem::span_names(&back).expect("a trace_event document");
    for expected in [
        "parse",
        "analysis",
        "chains",
        "infer",
        "transform",
        "opt",
        "compile",
        "execute",
        "fleet.chunk",
        "fleet.reduce",
        "pool.task",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "no `{expected}` span in {names:?}"
        );
    }
}

/// The ≤5% overhead budget, held in-process: the same fleet sweep with
/// both pillars hot may not be more than 5% slower than telemetry-off.
/// Wall-clock comparisons are noisy, so both sides take the minimum of
/// three sweeps and the whole comparison retries before failing — a
/// genuine regression (a probe on a hot path that stopped being one
/// relaxed load) fails every attempt, a scheduler hiccup does not.
#[test]
fn metrics_overhead_stays_within_five_percent() {
    let _guard = serial();
    telemetry(false);
    let mut spec = small_fleet();
    let sweep = |spec: &FleetSpec| {
        run_fleet(
            spec,
            FleetOpts {
                jobs: 2,
                share_core: true,
            },
        )
    };
    // Calibrate the workload up until one sweep is long enough that
    // millisecond jitter cannot fake a 5% delta.
    loop {
        let t0 = Instant::now();
        sweep(&spec);
        if t0.elapsed().as_millis() >= 80 || spec.devices >= 3000 {
            break;
        }
        spec.devices *= 4;
    }
    let min_of = |n: usize, spec: &FleetSpec| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..n {
            let t0 = Instant::now();
            sweep(spec);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let mut last_pct = f64::INFINITY;
    for _ in 0..5 {
        telemetry(false);
        let off = min_of(3, &spec);
        telemetry(true);
        let on = min_of(3, &spec);
        telemetry(false);
        ocelot_telemetry::drain_spans();
        ocelot_telemetry::metrics::reset_metrics();
        last_pct = (on / off - 1.0) * 100.0;
        if last_pct <= 5.0 {
            return;
        }
    }
    panic!("telemetry overhead {last_pct:+.2}% exceeds the 5% budget on every attempt");
}
