//! Determinism regression tests for the parallel harness: the same
//! (benchmark, model, seed) cell list must produce **byte-identical**
//! persisted JSON whether it runs serially or sharded across the
//! work-stealing pool. Any shared mutable state leaking between pool
//! workers (a shared RNG, an accumulator keyed by completion order, a
//! cell reading its neighbour's supply) shows up here as a byte diff.
//!
//! CI runs this suite with the pool genuinely parallel (`--jobs 2` and
//! `--jobs 8` below both exceed one worker), so the stealing paths are
//! exercised on every push.

use ocelot_bench::artifact::Artifact;
use ocelot_bench::drivers::{self, DriverOpts};
use ocelot_bench::harness::{run_cells, CellSpec, Workload};
use ocelot_bench::json::Json;
use ocelot_runtime::model::ExecModel;
use ocelot_runtime::ExecBackend;

/// A small mixed-workload cell list touching every workload kind.
fn mixed_cells() -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for bench in ["greenhouse", "photo", "tire"] {
        for model in ExecModel::all() {
            specs.push(CellSpec::new(
                bench,
                model,
                9,
                Workload::Continuous { runs: 2 },
            ));
        }
        specs.push(CellSpec::new(
            bench,
            ExecModel::Ocelot,
            9,
            Workload::Intermittent { runs: 2 },
        ));
        specs.push(CellSpec::new(
            bench,
            ExecModel::Jit,
            9,
            Workload::Pathological { runs: 2 },
        ));
        specs.push(CellSpec::new(
            bench,
            ExecModel::Jit,
            9,
            Workload::Duration { sim_us: 2_000_000 },
        ));
    }
    specs
}

#[test]
fn cell_sweeps_are_identical_at_every_worker_count() {
    let specs = mixed_cells();
    let serial = run_cells(&specs, 1);
    for jobs in [2, 8] {
        let parallel = run_cells(&specs, jobs);
        assert_eq!(serial, parallel, "--jobs {jobs} changed the stats");
    }
}

/// The acceptance check: a full driver `collect` → persisted JSON path,
/// serial vs `--jobs 8`, compared as bytes.
#[test]
fn persisted_artifacts_are_byte_identical_across_jobs() {
    // A driver with a uniform cell sweep (table2a) and one with custom
    // per-bench jobs (tics_expiry, small budget) cover both pool entry
    // points; tiny scales keep the test fast.
    for (name, runs) in [("table2a", 2), ("tics_expiry", 1)] {
        let d = drivers::by_name(name).expect("driver exists");
        let mut texts = Vec::new();
        for jobs in [1, 2, 8] {
            let opts = DriverOpts {
                jobs,
                runs: Some(runs),
                seed: None,
                backend: ExecBackend::Interp,
                opt: ocelot_runtime::OptLevel::default(),
            };
            let artifact = (d.collect)(&opts);
            texts.push(artifact.render().expect("serializes"));
        }
        assert_eq!(texts[0], texts[1], "{name}: --jobs 2 diverged from serial");
        assert_eq!(texts[0], texts[2], "{name}: --jobs 8 diverged from serial");
        // And the artifact round-trips through its own file format.
        let back = Artifact::from_text(&texts[0]).expect("parses");
        assert_eq!(back.render().unwrap(), texts[0], "{name}: unstable bytes");
    }
}

/// `--backend compiled` artifacts are byte-identical across `--jobs
/// 1/2/8` too, and differ from the interpreter's bytes *only* in the
/// recorded backend config — the compiled engine must not leak
/// nondeterminism into results even when cells race across workers.
#[test]
fn compiled_backend_artifacts_are_byte_identical_across_jobs() {
    let d = drivers::by_name("table2a").expect("driver exists");
    let collect = |jobs, backend| {
        let opts = DriverOpts {
            jobs,
            runs: Some(2),
            seed: None,
            backend,
            opt: ocelot_runtime::OptLevel::default(),
        };
        (d.collect)(&opts)
    };
    let mut texts = Vec::new();
    for jobs in [1, 2, 8] {
        texts.push(
            collect(jobs, ExecBackend::Compiled)
                .render()
                .expect("serializes"),
        );
    }
    assert_eq!(texts[0], texts[1], "--jobs 2 diverged from serial");
    assert_eq!(texts[0], texts[2], "--jobs 8 diverged from serial");

    let compiled = Artifact::from_text(&texts[0]).expect("parses");
    assert_eq!(
        compiled.config_get("backend").and_then(Json::as_str),
        Some("compiled"),
        "artifact records the backend that produced it"
    );
    // Same simulation results as the interpreter: only the provenance
    // entry differs.
    let interp = collect(2, ExecBackend::Interp);
    assert_eq!(
        interp.config_get("backend").and_then(Json::as_str),
        Some("interp")
    );
    assert_eq!(interp.cells, compiled.cells, "backends agree cell-for-cell");
}

/// The scenario sweep (app × scenario × seed cells, each building its
/// environment and supply from the scenario registry) must be
/// byte-identical at every worker count on *both* execution backends,
/// and the backends must agree cell-for-cell.
#[test]
fn scenario_sweep_is_byte_identical_across_jobs_and_backends() {
    let d = drivers::by_name("scenario_sweep").expect("driver exists");
    let collect = |jobs, backend| {
        let opts = DriverOpts {
            jobs,
            runs: Some(1),
            seed: None,
            backend,
            opt: ocelot_runtime::OptLevel::default(),
        };
        (d.collect)(&opts).render().expect("serializes")
    };
    for backend in [ExecBackend::Interp, ExecBackend::Compiled] {
        let serial = collect(1, backend);
        for jobs in [2, 8] {
            assert_eq!(
                serial,
                collect(jobs, backend),
                "{}: --jobs {jobs} diverged from serial",
                backend.name()
            );
        }
    }
    let interp = Artifact::from_text(&collect(2, ExecBackend::Interp)).unwrap();
    let compiled = Artifact::from_text(&collect(2, ExecBackend::Compiled)).unwrap();
    assert_eq!(
        interp.cells, compiled.cells,
        "backends agree cell-for-cell on every scenario"
    );
}

/// `--traces` collection: the traces artifact mirrors the result
/// artifact cell-for-cell, is byte-identical across worker counts, and
/// round-trips through its own strict reader.
#[test]
fn trace_artifacts_are_deterministic_and_replayable() {
    let d = drivers::by_name("scenario_sweep").expect("driver exists");
    let traced = d.collect_traced.expect("uniform sweep supports traces");
    let collect = |jobs| {
        let opts = DriverOpts {
            jobs,
            runs: Some(1),
            seed: None,
            backend: ExecBackend::Interp,
            opt: ocelot_runtime::OptLevel::default(),
        };
        traced(&opts)
    };
    let (a1, t1) = collect(1);
    let (a2, t2) = collect(8);
    assert_eq!(
        a1.render().unwrap(),
        a2.render().unwrap(),
        "result artifact stable across jobs"
    );
    assert_eq!(
        t1.render().unwrap(),
        t2.render().unwrap(),
        "traces artifact stable across jobs"
    );
    // The traced collection produced the same results as the plain one.
    let plain = (d.collect)(&DriverOpts {
        jobs: 2,
        runs: Some(1),
        seed: None,
        backend: ExecBackend::Interp,
        opt: ocelot_runtime::OptLevel::default(),
    });
    assert_eq!(plain.cells, a1.cells, "tracing must not perturb results");
    // Identity parity: cell i of the traces artifact describes cell i
    // of the result artifact.
    assert_eq!(t1.driver, "scenario_sweep_traces");
    assert_eq!(t1.cells.len(), a1.cells.len());
    for (res, tr) in a1.cells.iter().zip(&t1.cells) {
        for key in ["bench", "model", "scenario"] {
            assert_eq!(res.get(key), tr.get(key), "identity member `{key}`");
        }
        assert!(tr.get("trace").is_some());
    }
    // Replay path: reload from bytes, summarize, and get event parity
    // with the stats the result artifact records.
    let reloaded = Artifact::from_text(&t1.render().unwrap()).expect("parses");
    let summary = ocelot_bench::traces::render_traces(&reloaded).expect("renders");
    assert!(summary.contains("fusion"), "{summary}");
    let mut total_reboots = 0u64;
    for cell in &reloaded.cells {
        let trace = ocelot_bench::traces::trace_from_json(cell.get("trace").unwrap()).unwrap();
        total_reboots += trace
            .iter()
            .filter(|o| matches!(o, ocelot_runtime::obs::Obs::Reboot { .. }))
            .count() as u64;
    }
    let mut stats_reboots = 0u64;
    for cell in &a1.cells {
        let s = ocelot_bench::artifact::stats_from_json(cell.get("stats").unwrap()).unwrap();
        stats_reboots += s.reboots;
    }
    assert_eq!(
        total_reboots, stats_reboots,
        "trace reboot events agree with the stats counters"
    );
}

/// Re-rendering from a reloaded artifact must equal rendering the
/// freshly collected one — the `--replay` guarantee.
#[test]
fn replay_renders_the_same_table_as_collection() {
    let d = drivers::by_name("table2a").expect("driver exists");
    let opts = DriverOpts {
        jobs: 2,
        runs: Some(2),
        seed: None,
        backend: ExecBackend::Interp,
        opt: ocelot_runtime::OptLevel::default(),
    };
    let collected = (d.collect)(&opts);
    let direct = (d.render)(&collected).expect("renders");
    let reloaded = Artifact::from_text(&collected.render().unwrap()).expect("parses");
    let replayed = (d.render)(&reloaded).expect("renders from disk bytes");
    assert_eq!(direct, replayed);
}
