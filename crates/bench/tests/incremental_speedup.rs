//! The incremental re-verification acceptance criterion: after a
//! one-line single-function edit to the standard edit-trace workload,
//! the p50 incremental re-verify must be at least 10x faster than a
//! from-scratch verify of the same source, with byte-identical
//! verdicts. This is a wall-clock measurement, so the trace is kept
//! short; the `serve` driver records the full-length version as an
//! artifact.

use ocelot_bench::verify::{
    edited_source, full_verify, percentile, replay_trace, EditTrace, DEFAULT_TRACE,
};

#[test]
fn one_line_edit_reverifies_at_least_10x_faster_than_full() {
    let trace = EditTrace {
        funcs: DEFAULT_TRACE.funcs,
        edits: 2,
        seed: DEFAULT_TRACE.seed,
    };
    let measurements = replay_trace(&trace);
    assert_eq!(measurements.len(), trace.edits);

    let mut incr: Vec<u64> = measurements.iter().map(|m| m.incr_ns).collect();
    let mut full: Vec<u64> = measurements.iter().map(|m| m.full_ns).collect();
    incr.sort_unstable();
    full.sort_unstable();
    let p50_incr = percentile(&incr, 50.0).max(1);
    let p50_full = percentile(&full, 50.0);
    let speedup = p50_full as f64 / p50_incr as f64;
    assert!(
        speedup >= 10.0,
        "p50 incremental {p50_incr} ns vs full {p50_full} ns: {speedup:.1}x < 10x"
    );

    for m in &measurements {
        assert!(m.verdict.passes, "edit {} verdict failed", m.edit);
        // One-line single-function edit: only the edited worker and its
        // caller (main) are re-analyzed.
        assert!(
            m.stats.analyzed <= 2,
            "edit {} re-analyzed {} of {} functions",
            m.edit,
            m.stats.analyzed,
            m.stats.funcs
        );
    }

    // Byte-identity against a from-scratch verify of the same source
    // (replay_trace asserts structural equality per edit; this pins the
    // rendered JSON bytes the serve protocol ships to clients).
    let m = &measurements[0];
    let (_, from_scratch) = full_verify(&edited_source(&trace, m.edit)).expect("full verify");
    assert_eq!(
        m.verdict.to_json().render().unwrap(),
        from_scratch.to_json().render().unwrap(),
        "incremental verdict bytes differ from from-scratch verdict"
    );
}
