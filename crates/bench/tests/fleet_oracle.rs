//! Oracle-equivalence and determinism suite for the fleet engine.
//!
//! The per-cell harness ([`ocelot_bench::harness::run_cells`]) is the
//! oracle: each fleet device `i` is, by construction, the cell
//! [`FleetSpec::device_spec`] describes, so folding the oracle's
//! per-cell stats into per-scenario aggregates must equal the fleet
//! path **exactly** — same summed counters, same reboot and freshness
//! histograms — on both execution backends, at any worker count,
//! whether the read-only machine core is shared across workers or
//! rebuilt inside each one.

use ocelot_bench::fleet::{fleet_artifact, run_fleet, FleetAggregate, FleetOpts, FleetSpec};
use ocelot_bench::harness::run_cells;
use ocelot_runtime::model::ExecModel;
use ocelot_runtime::ExecBackend;
use proptest::prelude::*;

/// All registry scenario names, for strategy indexing.
fn scenario_names() -> Vec<String> {
    ocelot_scenario::all()
        .iter()
        .map(|s| s.name.to_string())
        .collect()
}

/// The oracle: run every device as an independent harness cell and fold
/// the per-cell stats into per-scenario aggregates the same way the
/// fleet path does.
fn oracle_fold(spec: &FleetSpec, jobs: usize) -> Vec<FleetAggregate> {
    let cells: Vec<_> = (0..spec.devices).map(|i| spec.device_spec(i)).collect();
    let stats = run_cells(&cells, jobs);
    let mut aggs: Vec<FleetAggregate> = spec
        .scenarios
        .iter()
        .map(|s| FleetAggregate::new(s))
        .collect();
    for (i, s) in stats.iter().enumerate() {
        aggs[i % spec.scenarios.len()].record(s);
    }
    aggs
}

fn spec_with(backend: ExecBackend, scenarios: Vec<String>, devices: u64, seed0: u64) -> FleetSpec {
    FleetSpec {
        bench: "tire".into(),
        model: ExecModel::Ocelot,
        scenarios,
        devices,
        seed0,
        runs: 1,
        backend,
        opt: ocelot_runtime::OptLevel::from_env(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For random small fleets, the fleet aggregates exactly equal the
    /// fold of per-cell harness results — on both backends — and the
    /// two backends agree with each other.
    #[test]
    fn fleet_aggregates_equal_the_per_cell_oracle(
        picks in proptest::collection::vec(0usize..9, 1..=3),
        devices in 1u64..=10,
        seed0 in 0u64..1_000,
        runs in 1u64..=2,
    ) {
        let names = scenario_names();
        let scenarios: Vec<String> = picks.iter().map(|&i| names[i].clone()).collect();
        let mut per_backend = Vec::new();
        for backend in [ExecBackend::Interp, ExecBackend::Compiled] {
            let mut spec = spec_with(backend, scenarios.clone(), devices, seed0);
            spec.runs = runs;
            let fleet = run_fleet(&spec, FleetOpts { jobs: 2, share_core: true });
            let oracle = oracle_fold(&spec, 2);
            prop_assert_eq!(&fleet, &oracle, "fleet != oracle on {:?}", backend);
            per_backend.push(fleet);
        }
        // Backend parity: the compiled engine's aggregates are the
        // interpreter's, bit for bit.
        prop_assert_eq!(&per_backend[0], &per_backend[1]);
    }
}

/// A fixed mid-size fleet across the whole registry for the
/// determinism checks: enough devices that every scenario gets several,
/// with chunking actually splitting the index range.
fn determinism_spec(backend: ExecBackend) -> FleetSpec {
    spec_with(backend, scenario_names(), 45, 7)
}

#[test]
fn fleet_artifacts_are_byte_identical_across_jobs() {
    let spec = determinism_spec(ExecBackend::Compiled);
    let mut texts = Vec::new();
    for jobs in [1usize, 2, 8] {
        let aggs = run_fleet(
            &spec,
            FleetOpts {
                jobs,
                share_core: true,
            },
        );
        texts.push(fleet_artifact(&spec, &aggs).render().unwrap());
    }
    assert_eq!(texts[0], texts[1], "--jobs 1 vs 2 changed the artifact");
    assert_eq!(texts[0], texts[2], "--jobs 1 vs 8 changed the artifact");
}

#[test]
fn shared_and_per_worker_cores_give_byte_identical_artifacts() {
    let spec = determinism_spec(ExecBackend::Compiled);
    let shared = run_fleet(
        &spec,
        FleetOpts {
            jobs: 4,
            share_core: true,
        },
    );
    let rebuilt = run_fleet(
        &spec,
        FleetOpts {
            jobs: 4,
            share_core: false,
        },
    );
    assert_eq!(
        fleet_artifact(&spec, &shared).render().unwrap(),
        fleet_artifact(&spec, &rebuilt).render().unwrap(),
        "sharing the read-only core across workers changed results"
    );
}

#[test]
fn backends_agree_on_a_full_registry_fleet() {
    let interp = run_fleet(
        &determinism_spec(ExecBackend::Interp),
        FleetOpts {
            jobs: 4,
            share_core: true,
        },
    );
    let compiled = run_fleet(
        &determinism_spec(ExecBackend::Compiled),
        FleetOpts {
            jobs: 4,
            share_core: true,
        },
    );
    // Aggregates match except for the recorded backend, which lives in
    // the artifact config, not the aggregates — so exact equality.
    assert_eq!(interp, compiled);
    // And the fleet did real work: devices distributed round-robin,
    // every scenario's histogram populated.
    assert_eq!(interp.len(), 9);
    let total: u64 = interp.iter().map(|a| a.devices).sum();
    assert_eq!(total, 45);
    for agg in &interp {
        assert_eq!(agg.reboots_hist.total(), agg.devices);
        assert_eq!(agg.fresh_hist.total(), agg.devices);
        assert!(
            agg.stats.on_cycles > 0,
            "{} simulated nothing",
            agg.scenario
        );
    }
}

#[test]
fn fleet_artifact_round_trips_through_the_schema() {
    let spec = determinism_spec(ExecBackend::Compiled);
    let aggs = run_fleet(
        &spec,
        FleetOpts {
            jobs: 2,
            share_core: true,
        },
    );
    let a = fleet_artifact(&spec, &aggs);
    let reloaded = ocelot_bench::artifact::Artifact::from_text(&a.render().unwrap()).unwrap();
    let back: Vec<FleetAggregate> = reloaded
        .cells
        .iter()
        .map(|c| FleetAggregate::from_cell(c).unwrap())
        .collect();
    assert_eq!(back, aggs);
}
