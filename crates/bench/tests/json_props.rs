//! Property tests for the persisted-artifact JSON layer: arbitrary
//! values and whole `Stats` records must survive serialize → parse →
//! equal, floats must stay NaN-free and type-stable, and strings must
//! escape cleanly whatever they contain.

use ocelot_bench::artifact::{stats_from_json, stats_to_json};
use ocelot_bench::json::{parse, Json};
use ocelot_runtime::stats::Stats;
use proptest::prelude::*;

/// Any finite `f64`, via raw bits (non-finite bit patterns fall back to
/// a fraction so every case stays serializable).
fn arb_finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            v
        } else {
            // Map NaN/Inf bit patterns onto an ordinary finite value
            // derived from the same bits.
            (bits % 1_000_003) as f64 / 97.0
        }
    })
}

/// Strings over printable characters plus escapes-relevant ones.
fn arb_string() -> impl Strategy<Value = String> {
    "\\PC{0,40}".prop_map(|mut s| {
        // Sprinkle the characters that exercise the escaper.
        s.push_str("\"\\\n\t\u{0001}é😀");
        s
    })
}

/// A `Stats` with every counter (including the breakdown) drawn from
/// the full `u64` range, built through the serialization surface so the
/// generator can never miss a field.
fn arb_stats() -> impl Strategy<Value = Stats> {
    proptest::collection::vec(any::<u64>(), 26..=26).prop_map(|vals| {
        let mut s = Stats::default();
        let mut it = vals.into_iter();
        let names: Vec<&'static str> = s.counters().iter().map(|(n, _)| *n).collect();
        for name in names {
            s.set_counter(name, it.next().unwrap());
        }
        let bnames: Vec<&'static str> = s.breakdown.counters().iter().map(|(n, _)| *n).collect();
        for name in bnames {
            s.breakdown.set_counter(name, it.next().unwrap());
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Full-range integers round-trip exactly (the artifact format
    /// carries u64 counters, which f64-based JSON readers would corrupt
    /// above 2^53).
    #[test]
    fn integers_round_trip(v in any::<u64>()) {
        let j = Json::u64(v);
        let parsed = parse(&j.render().unwrap()).unwrap();
        prop_assert_eq!(parsed.as_u64(), Some(v));
    }

    /// Finite floats round-trip to the same bits and never serialize as
    /// NaN/Infinity or bare integers.
    #[test]
    fn floats_round_trip_nan_free(v in arb_finite_f64()) {
        let text = Json::Float(v).render().unwrap();
        prop_assert!(!text.contains("NaN") && !text.contains("inf"), "{}", text);
        let parsed = parse(&text).unwrap();
        match parsed {
            Json::Float(w) => prop_assert_eq!(v.to_bits(), w.to_bits(), "{}", text),
            other => return Err(TestCaseError::fail(format!(
                "float parsed back as {other:?} from {text}"
            ))),
        }
    }

    /// Strings with quotes, backslashes, control characters, and
    /// non-ASCII round-trip exactly.
    #[test]
    fn strings_round_trip(s in arb_string()) {
        let j = Json::Str(s.clone());
        let parsed = parse(&j.render().unwrap()).unwrap();
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    /// Arrays of mixed scalars round-trip structurally.
    #[test]
    fn arrays_round_trip(ints in proptest::collection::vec(any::<u64>(), 0..12),
                         f in arb_finite_f64(),
                         s in arb_string()) {
        let mut items: Vec<Json> = ints.into_iter().map(Json::u64).collect();
        items.push(Json::Float(f));
        items.push(Json::Str(s));
        items.push(Json::Null);
        items.push(Json::Bool(true));
        let j = Json::Arr(items);
        prop_assert_eq!(parse(&j.render().unwrap()).unwrap(), j);
    }

    /// The headline property: arbitrary `Stats` values serialize to an
    /// artifact cell and parse back equal, across the full u64 counter
    /// range.
    #[test]
    fn stats_round_trip(s in arb_stats()) {
        let cell = stats_to_json(&s);
        let text = cell.render().unwrap();
        let back = stats_from_json(&parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, s);
    }

    /// Serialization is a pure function: same value, same bytes.
    #[test]
    fn rendering_is_deterministic(s in arb_stats(), f in arb_finite_f64()) {
        let v = Json::Obj(vec![
            ("stats".to_string(), stats_to_json(&s)),
            ("x".to_string(), Json::Float(f)),
        ]);
        prop_assert_eq!(v.render().unwrap(), v.render().unwrap());
    }
}
