//! The programmer-effort model of Tables 3 and 4.
//!
//! Table 3 gives each system's strategy as a lines-of-code formula over
//! program features; Table 4 instantiates the formulas on the six
//! benchmarks. The per-benchmark feature counts live with the apps
//! ([`ocelot_apps::Effort`]); this module implements the formulas.

use ocelot_apps::Effort;

/// LoC to use Ocelot: one annotation per input-generating function plus
/// one per constrained datum (`1*(num inputs) + 1*(data with
/// constraint)`).
pub fn ocelot_loc(e: &Effort) -> usize {
    e.input_fns + e.fresh_data + e.consistent_data
}

/// LoC to use JIT checkpointing alone: nothing to write, nothing
/// enforced.
pub fn jit_loc(_e: &Effort) -> usize {
    0
}

/// LoC to place atomic regions manually: annotate inputs plus two lines
/// (start/end) per region (`1*(num inputs) + 2*(num atomic regions)`).
pub fn atomics_loc(e: &Effort) -> usize {
    e.input_fns + 2 * e.manual_regions
}

/// LoC to use TICS: each fresh datum needs an expiry, a timestamp
/// alignment, and an expiration check (3 LoC) plus a ~5-line handler;
/// each consistent datum needs an expiry and an alignment (2 LoC); each
/// consistent set needs one expiration check plus one ~5-line handler.
pub fn tics_loc(e: &Effort) -> usize {
    const HANDLER_LOC: usize = 5;
    e.fresh_data * (3 + HANDLER_LOC) + e.consistent_data * 2 + e.consistent_sets * (1 + HANDLER_LOC)
}

/// LoC to use Samoyed: each atomic function costs a fixed 3 lines
/// (signature + call site) plus one per parameter; functions containing
/// loops also need a scaling rule (3 LoC) and a software fallback
/// (5 LoC).
pub fn samoyed_loc(e: &Effort) -> usize {
    let fns: usize = e.samoyed_fn_params.iter().map(|p| 3 + p).sum();
    fns + e.samoyed_loops * (3 + 5)
}

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffortRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Ocelot LoC changes.
    pub ocelot: usize,
    /// TICS LoC changes.
    pub tics: usize,
    /// Samoyed LoC changes.
    pub samoyed: usize,
}

/// Computes Table 4 for all benchmarks.
pub fn table4() -> Vec<EffortRow> {
    ocelot_apps::all()
        .into_iter()
        .map(|b| EffortRow {
            bench: b.name,
            ocelot: ocelot_loc(&b.effort),
            tics: tics_loc(&b.effort),
            samoyed: samoyed_loc(&b.effort),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 4, verbatim.
    const PAPER: &[(&str, usize, usize, usize)] = &[
        ("activity", 5, 20, 18),
        ("cem", 2, 8, 4),
        ("greenhouse", 7, 12, 6),
        ("photo", 2, 8, 12),
        ("send_photo", 4, 8, 4),
        ("tire", 9, 32, 24),
    ];

    #[test]
    fn table4_reproduces_the_paper() {
        let rows = table4();
        for (name, oce, tics, sam) in PAPER {
            let row = rows.iter().find(|r| r.bench == *name).unwrap();
            assert_eq!(row.ocelot, *oce, "{name}: Ocelot");
            assert_eq!(row.tics, *tics, "{name}: TICS");
            assert_eq!(row.samoyed, *sam, "{name}: Samoyed");
        }
    }

    #[test]
    fn ocelot_beats_tics_everywhere_and_samoyed_overall() {
        // In the paper's own Table 4, greenhouse is the one cell where
        // Samoyed (6) edges out Ocelot (7); Ocelot still wins overall.
        let rows = table4();
        for r in &rows {
            assert!(r.ocelot < r.tics, "{}: Ocelot < TICS", r.bench);
        }
        let total_ocelot: usize = rows.iter().map(|r| r.ocelot).sum();
        let total_samoyed: usize = rows.iter().map(|r| r.samoyed).sum();
        assert!(total_ocelot < total_samoyed);
    }

    #[test]
    fn jit_is_free_and_atomics_scale_with_regions() {
        for b in ocelot_apps::all() {
            assert_eq!(jit_loc(&b.effort), 0);
            assert!(atomics_loc(&b.effort) >= 2 * b.effort.manual_regions);
        }
    }
}
